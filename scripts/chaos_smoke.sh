#!/usr/bin/env bash
# Chaos smoke for the wlr-serve daemon: drive the runtime fault layer
# end to end — a daemon kill point that aborts mid-service, bank deaths
# injected from both WLR_CHAOS_PLAN and the live /chaos endpoint, two
# SIGKILLed lifetimes, and a final graceful persist→restore cycle that
# proves quarantine state survives a reboot. Three hard daemon kills and
# four injected bank deaths in total. Pure bash + /dev/tcp — no curl.
#
# Usage: scripts/chaos_smoke.sh [path-to-wlr-serve]
set -euo pipefail

BIN="${1:-target/release/wlr-serve}"
PORT="${WLR_SMOKE_PORT:-19465}"
WORK="$(mktemp -d)"
trap 'kill -9 "${PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Shared identity across every lifetime: the persisted image is only
# accepted back under the same geometry.
export WLR_SERVE_ADDR="127.0.0.1:$PORT"
export WLR_SERVE_BANKS=4
export WLR_SERVE_BLOCKS=4096
export WLR_SERVE_ENDURANCE=1000000000
export WLR_SERVE_SEED=11
export WLR_SERVE_STATE="$WORK/device.img"
export WLR_SERVE_PUBLISH_MS=50
export WLR_SERVE_ADMISSION_DEPTH=131072

scrape() { # scrape <path> <outfile>
  local i
  for i in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT"
        printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
        cat <&3 >"$2") 2>/dev/null; then
      return 0
    fi
    sleep 0.2
  done
  echo "FAIL: $1 never became reachable" >&2
  return 1
}

metric() { # metric <name> <scrapefile> -> value
  awk -v m="$1" '$1 == m { print $2 }' "$2"
}

await_metric_ge() { # await_metric_ge <name> <threshold> <outfile>
  local i v
  for i in $(seq 1 150); do
    scrape /metrics "$3"
    v="$(metric "$1" "$3")"
    if [ -n "$v" ] && awk -v v="$v" -v t="$2" 'BEGIN { exit !(v >= t) }'; then
      return 0
    fi
    sleep 0.2
  done
  echo "FAIL: $1 never reached $2 (last: ${v:-missing})" >&2
  return 1
}

echo "== phase 1: daemon kill point aborts mid-service, nothing persisted"
set +e
WLR_CHAOS_PLAN="daemon:kill@15000" WLR_ARRIVAL_RATE=50000 \
  WLR_SERVE_REQUESTS=2000000 "$BIN" >"$WORK/phase1.log" 2>&1
rc=$?
set -e
[ "$rc" -ne 0 ] || { echo "FAIL: kill point did not crash the daemon" >&2; exit 1; }
grep -q "chaos plan armed" "$WORK/phase1.log" || { echo "FAIL: plan not armed" >&2; cat "$WORK/phase1.log" >&2; exit 1; }
grep -q "chaos kill point reached" "$WORK/phase1.log" || { echo "FAIL: kill point never fired" >&2; cat "$WORK/phase1.log" >&2; exit 1; }
[ ! -s "$WORK/device.img" ] || { echo "FAIL: hard kill must not persist" >&2; exit 1; }
echo "ok: kill point aborted the daemon (rc=$rc), no image persisted"

echo "== phase 2: bank death from the boot plan, second from /chaos, SIGKILL"
WLR_CHAOS_PLAN="bank0:die@1000;bank2:reads@50+2;bank1:torn@switch:2" \
  WLR_ARRIVAL_RATE=20000 WLR_SERVE_REQUESTS=200000000 \
  "$BIN" >"$WORK/phase2.log" 2>&1 &
PID=$!
await_metric_ge wlr_pipeline_dead_banks 1 "$WORK/scrape2a.txt"
scrape '/chaos?plan=bank1:die@500' "$WORK/chaos2.txt"
grep -q '"accepted":1' "$WORK/chaos2.txt" || { echo "FAIL: /chaos rejected: $(tail -1 "$WORK/chaos2.txt")" >&2; exit 1; }
await_metric_ge wlr_pipeline_dead_banks 2 "$WORK/scrape2b.txt"
await_metric_ge wlr_pipeline_quarantines 2 "$WORK/scrape2b.txt"
scrape /healthz "$WORK/health2.txt"
grep -q '"status":"degraded"' "$WORK/health2.txt" || { echo "FAIL: healthz not degraded: $(cat "$WORK/health2.txt")" >&2; exit 1; }
scrape /snapshot "$WORK/snap2.txt"
grep -q '"quarantines":2' "$WORK/snap2.txt" || { echo "FAIL: snapshot: $(tail -1 "$WORK/snap2.txt")" >&2; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "ok: served degraded at N-2 (boot plan + live /chaos), then SIGKILL"

echo "== phase 3: fresh lifetime, SIGKILL while healthy"
WLR_ARRIVAL_RATE=20000 WLR_SERVE_REQUESTS=200000000 "$BIN" >"$WORK/phase3.log" 2>&1 &
PID=$!
await_metric_ge wlr_serve_requests_total 1 "$WORK/scrape3.txt"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
[ ! -s "$WORK/device.img" ] || { echo "FAIL: SIGKILL must not persist" >&2; exit 1; }
echo "ok: third hard kill"

echo "== phase 4: two bank deaths, graceful drain, quarantine survives restart"
WLR_CHAOS_PLAN="bank0:die@1000;bank3:die@1500" WLR_ARRIVAL_RATE=20000 \
  WLR_SERVE_REQUESTS=40000 "$BIN" >"$WORK/phase4.log" 2>&1
grep -q "quarantined 2" "$WORK/phase4.log" || { echo "FAIL: deaths not quarantined: $(grep drained "$WORK/phase4.log" || true)" >&2; exit 1; }
grep -q "persisted" "$WORK/phase4.log" || { echo "FAIL: drain did not persist" >&2; cat "$WORK/phase4.log" >&2; exit 1; }
[ -s "$WORK/device.img" ] || { echo "FAIL: no persisted image" >&2; exit 1; }
echo "ok: degraded drain persisted the quarantine image"

WLR_ARRIVAL_RATE=20000 WLR_SERVE_REQUESTS=40000 "$BIN" >"$WORK/phase5.log" 2>&1 &
PID=$!
scrape /healthz "$WORK/health5.txt"
scrape /metrics "$WORK/scrape5.txt"
wait "$PID"
grep -q "restored" "$WORK/phase5.log" || { echo "FAIL: restart did not restore" >&2; cat "$WORK/phase5.log" >&2; exit 1; }
grep -q '"status":"degraded"' "$WORK/health5.txt" || { echo "FAIL: restored healthz not degraded: $(cat "$WORK/health5.txt")" >&2; exit 1; }
dead="$(metric wlr_pipeline_dead_banks "$WORK/scrape5.txt")"
[ "${dead:-0}" = "2" ] || { echo "FAIL: restored dead banks = '${dead:-missing}' (expected 2)" >&2; exit 1; }
# The restore log reports how many banks came back quarantined; the
# drained line counts only *new* quarantine events (none this lifetime).
grep -q "2 quarantined" "$WORK/phase5.log" || { echo "FAIL: restored lifetime lost the quarantine" >&2; cat "$WORK/phase5.log" >&2; exit 1; }
echo "ok: restart restored the quarantine and kept serving degraded"

echo "chaos smoke: PASS"
