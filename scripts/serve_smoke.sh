#!/usr/bin/env bash
# End-to-end smoke for the wlr-serve daemon: boot, drive ~120k requests
# across two lifetimes, scrape the live endpoints, kill with SIGTERM,
# restart, and assert the recovery counters show up in the post-restart
# scrape. Pure bash + /dev/tcp — no curl dependency.
#
# Usage: scripts/serve_smoke.sh [path-to-wlr-serve]
set -euo pipefail

BIN="${1:-target/release/wlr-serve}"
PORT="${WLR_SMOKE_PORT:-19464}"
WORK="$(mktemp -d)"
trap 'kill "${PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Shared configuration: both lifetimes must present the same identity or
# the daemon refuses the persisted image.
export WLR_SERVE_ADDR="127.0.0.1:$PORT"
export WLR_SERVE_BANKS=2
export WLR_SERVE_BLOCKS=1024
export WLR_SERVE_ENDURANCE=150
export WLR_SERVE_SEED=7
export WLR_SERVE_STATE="$WORK/device.img"
export WLR_SERVE_PUBLISH_MS=50
export WLR_SERVE_ADMISSION_DEPTH=131072

scrape() { # scrape <path> <outfile>
  local i
  for i in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT"
        printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
        cat <&3 >"$2") 2>/dev/null; then
      return 0
    fi
    sleep 0.2
  done
  echo "FAIL: $1 never became reachable" >&2
  return 1
}

metric() { # metric <name> <scrapefile> -> value
  awk -v m="$1" '$1 == m { print $2 }' "$2"
}

await_metric() { # await_metric <name> <outfile> — scrape /metrics until <name> > 0
  local i v
  for i in $(seq 1 100); do
    scrape /metrics "$2"
    v="$(metric "$1" "$2")"
    if [ -n "$v" ] && awk -v v="$v" 'BEGIN { exit !(v > 0) }'; then
      return 0
    fi
    sleep 0.2
  done
  return 1
}

assert_pos() { # assert_pos <name> <scrapefile>
  local v
  v="$(metric "$1" "$2")"
  if [ -z "$v" ] || ! awk -v v="$v" 'BEGIN { exit !(v > 0) }'; then
    echo "FAIL: $1 = '${v:-missing}' (expected > 0) in $2" >&2
    exit 1
  fi
  echo "ok: $1 = $v"
}

echo "== phase 1: fresh boot, 60k paced requests, live scrape, natural drain"
WLR_ARRIVAL_RATE=20000 WLR_SERVE_REQUESTS=60000 \
  WLR_TRACE_DUMP="$WORK/trace" "$BIN" >"$WORK/phase1.log" 2>&1 &
PID=$!
# Poll until the service loop has actually serviced something — the
# listener binds before the first request is drained.
await_metric wlr_serve_requests_total "$WORK/scrape1.txt" || true
scrape /healthz "$WORK/health1.txt"
wait "$PID"
assert_pos wlr_serve_requests_total "$WORK/scrape1.txt"
assert_pos wlr_serve_generated_total "$WORK/scrape1.txt"
grep -q '"status":"ok"' "$WORK/health1.txt" || { echo "FAIL: healthz: $(cat "$WORK/health1.txt")" >&2; exit 1; }
[ -s "$WORK/device.img" ] || { echo "FAIL: no persisted image" >&2; exit 1; }
[ -s "$WORK/trace.bank0.jsonl" ] || { echo "FAIL: no trace dump" >&2; exit 1; }
grep -q "persisted" "$WORK/phase1.log" || { echo "FAIL: phase 1 did not persist" >&2; cat "$WORK/phase1.log" >&2; exit 1; }
echo "ok: image + trace dump persisted"
# Nominal load must never shed: the admission ring is sized for the
# arrival rate, so any shed write here is a regression.
shed="$(sed -n 's/.*drained;.* shed \([0-9]*\),.*/\1/p' "$WORK/phase1.log")"
if [ -z "$shed" ] || [ "$shed" != "0" ]; then
  echo "FAIL: nominal load shed ${shed:-?} writes: $(grep drained "$WORK/phase1.log" || true)" >&2
  exit 1
fi
echo "ok: nominal load shed nothing"

echo "== phase 2: restart, recovery in first scrape, SIGTERM mid-run"
WLR_ARRIVAL_RATE=10000 WLR_SERVE_REQUESTS=60000 "$BIN" >"$WORK/phase2.log" 2>&1 &
PID=$!
scrape /metrics "$WORK/scrape2.txt"
scrape /healthz "$WORK/health2.txt"
scrape /snapshot "$WORK/snap2.txt"
kill -TERM "$PID"
wait "$PID"
# The restore and its recovery scan happen before the listener binds, so
# the first successful scrape must already carry the recovery counters.
assert_pos wlr_serve_restores_total "$WORK/scrape2.txt"
assert_pos wlr_recovery_steps_total "$WORK/scrape2.txt"
assert_pos wlr_recovery_items_total "$WORK/scrape2.txt"
# Phase 1 wore blocks into failure, so recovery must have re-linked
# shadows. Restored links are re-inserted from persisted metadata (a
# RecoveryStep summary, not per-link LinkCreated events), so check the
# deterministic restore log rather than a timing-dependent counter.
links="$(sed -n 's/.*restored .*: [0-9]* blocks scanned, \([0-9]*\) links recovered.*/\1/p' "$WORK/phase2.log")"
if [ -z "$links" ] || [ "$links" -le 0 ]; then
  echo "FAIL: restore recovered no links: $(grep restored "$WORK/phase2.log" || true)" >&2
  exit 1
fi
echo "ok: restore recovered $links links"
grep -q '"recovered":true' "$WORK/health2.txt" || { echo "FAIL: healthz: $(cat "$WORK/health2.txt")" >&2; exit 1; }
grep -q '"banks":\[' "$WORK/snap2.txt" || { echo "FAIL: snapshot: $(tail -1 "$WORK/snap2.txt")" >&2; exit 1; }
grep -q "restored" "$WORK/phase2.log" || { echo "FAIL: phase 2 did not restore" >&2; cat "$WORK/phase2.log" >&2; exit 1; }
grep -q "persisted" "$WORK/phase2.log" || { echo "FAIL: SIGTERM did not persist" >&2; cat "$WORK/phase2.log" >&2; exit 1; }
echo "ok: recovery counters live post-restart; SIGTERM drained and persisted"

echo "serve smoke: PASS"
