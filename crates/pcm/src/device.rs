//! The PCM device: wear, failures, accesses.
//!
//! [`PcmDevice`] models the chip below the memory controller. It knows
//! nothing about physical addresses, wear-leveling, or failure hiding — it
//! exposes raw block reads/writes by device address (DA) and reports when a
//! write pushes a block past its (ECC-mediated) endurance.
//!
//! Two bookkeeping features exist purely for the experiments:
//!
//! * **Access accounting** ([`AccessStats`]): every read and write is
//!   counted, which is how the paper's "average access time measured in
//!   number of PCM accesses" (Table II) is produced.
//! * **Content tags**: optionally, every block stores a 64-bit tag standing
//!   in for its data. The integration tests use tags as an integrity
//!   oracle: after arbitrary migrations, failures and revivals, reading a
//!   PA must return the last tag written to that PA.

use crate::ecc::{Ecp, ErrorCorrection};
use crate::fault::{CrashPoint, FaultCounters, FaultInjector, FaultPlan, ReadFault, WriteFault};
use crate::lifetime::LifetimeModel;
use wlr_base::{Da, Geometry};

/// Result of a block write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write succeeded on a healthy block.
    Ok,
    /// The write pushed the block past its correctable endurance; the block
    /// is now dead and the write's data was not stored.
    NewFailure,
    /// The block was already dead; the access is counted but stores nothing.
    AlreadyDead,
    /// Power is lost (fault injection): the write was dropped entirely —
    /// no access counted, no wear, nothing stored. Only possible when a
    /// [`crate::fault::FaultPlan`] is configured.
    Lost,
}

/// Result of a block read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The block is healthy; data (tag) is valid.
    Ok,
    /// The block is dead; returned data is whatever the failure left behind.
    Dead,
    /// A transient (soft) error the block's ECC scheme could not absorb
    /// (fault injection). Unlike [`ReadOutcome::Dead`] the block is still
    /// alive and a retry may succeed.
    Transient,
}

/// Raw access counters (each unit is one PCM array access).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of block reads serviced.
    pub reads: u64,
    /// Number of block writes serviced (including failed ones — the array
    /// is still cycled).
    pub writes: u64,
}

impl AccessStats {
    /// Total array accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Builder for [`PcmDevice`]; see [`PcmDevice::builder`].
#[derive(Debug)]
pub struct PcmDeviceBuilder {
    geometry: Geometry,
    extra_blocks: u64,
    endurance_mean: f64,
    endurance_cov: f64,
    seed: u64,
    ecc: Option<Box<dyn ErrorCorrection>>,
    track_contents: bool,
    fault_plan: Option<FaultPlan>,
}

impl PcmDeviceBuilder {
    /// Adds `extra` device blocks beyond the software-visible space.
    /// Wear-leveling schemes use these for buffer lines (e.g. Start-Gap's
    /// gap line).
    pub fn extra_blocks(mut self, extra: u64) -> Self {
        self.extra_blocks = extra;
        self
    }

    /// Mean cell endurance in writes (paper: 10⁸; scaled default: 10⁴).
    pub fn endurance_mean(mut self, mean: f64) -> Self {
        self.endurance_mean = mean;
        self
    }

    /// Cell-lifetime coefficient of variation (paper: 0.2).
    pub fn endurance_cov(mut self, cov: f64) -> Self {
        self.endurance_cov = cov;
        self
    }

    /// Experiment seed; all cell lifetimes derive from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Error-correction scheme (default: ECP6).
    pub fn ecc(mut self, ecc: Box<dyn ErrorCorrection>) -> Self {
        self.ecc = Some(ecc);
        self
    }

    /// Enables per-block 64-bit content tags (integrity-oracle mode).
    /// Costs 8 bytes per block; off by default.
    pub fn track_contents(mut self, on: bool) -> Self {
        self.track_contents = on;
        self
    }

    /// Arms a fault-injection plan (power loss, silent failures,
    /// transient read errors). Without one the device never fails
    /// un-organically and the fault paths cost a single branch per access.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Constructs the device.
    pub fn build(self) -> PcmDevice {
        let total = self.geometry.num_blocks() + self.extra_blocks;
        let total_usize = usize::try_from(total).expect("device too large for host");
        let lifetime = LifetimeModel::new(
            self.endurance_mean,
            self.endurance_cov,
            self.geometry.block_bits() as u32,
            self.seed,
        );
        PcmDevice {
            geometry: self.geometry,
            total_blocks: total,
            lifetime,
            ecc: self.ecc.unwrap_or_else(|| Box::new(Ecp::ecp6())),
            blocks: vec![BlockState::default(); total_usize],
            contents: if self.track_contents {
                Some(vec![0; total_usize])
            } else {
                None
            },
            dead_count: 0,
            stats: AccessStats::default(),
            fault: self.fault_plan.map(FaultInjector::new),
        }
    }
}

/// Per-block mutable state, packed into one slot so the write hot path
/// (wear bump + threshold compare + death check) touches a single cache
/// line instead of three parallel arrays.
#[derive(Clone, Copy, Debug, Default)]
struct BlockState {
    /// Writes absorbed so far.
    wear: u32,
    /// Next cell-failure threshold; 0 = not yet materialized.
    threshold: u32,
    /// Cell failures suffered so far.
    failures: u8,
    /// Whether the block is permanently dead.
    dead: bool,
}

/// The simulated PCM chip.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct PcmDevice {
    geometry: Geometry,
    total_blocks: u64,
    lifetime: LifetimeModel,
    ecc: Box<dyn ErrorCorrection>,
    blocks: Vec<BlockState>,
    contents: Option<Vec<u64>>,
    dead_count: u64,
    stats: AccessStats,
    /// Present only when a fault plan is armed; `None` keeps the access
    /// hot paths fault-free beyond one discriminant check.
    fault: Option<FaultInjector>,
}

impl Clone for PcmDevice {
    /// Deep copy of the full device state — wear counters, failure
    /// thresholds, ECC resources, content image, armed faults. The block
    /// table is a flat vec of plain data, so this is a bulk memcpy; it is
    /// the device half of [`Simulation::snapshot`]-style forking.
    ///
    /// [`Simulation::snapshot`]: https://docs.rs/wlr-core
    fn clone(&self) -> Self {
        PcmDevice {
            geometry: self.geometry,
            total_blocks: self.total_blocks,
            lifetime: self.lifetime.clone(),
            ecc: self.ecc.clone_box(),
            blocks: self.blocks.clone(),
            contents: self.contents.clone(),
            dead_count: self.dead_count,
            stats: self.stats,
            fault: self.fault.clone(),
        }
    }
}

impl PcmDevice {
    /// Starts building a device over `geometry` (defaults: ECP6, endurance
    /// N(10⁴, CoV 0.2), seed 0, no extra blocks, no content tracking).
    pub fn builder(geometry: Geometry) -> PcmDeviceBuilder {
        PcmDeviceBuilder {
            geometry,
            extra_blocks: 0,
            endurance_mean: 1e4,
            endurance_cov: 0.2,
            seed: 0,
            ecc: None,
            track_contents: false,
            fault_plan: None,
        }
    }

    /// The software-visible geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Total device blocks, including extra (buffer) blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// The lifetime model in force.
    pub fn lifetime_model(&self) -> &LifetimeModel {
        &self.lifetime
    }

    /// Label of the configured ECC scheme.
    pub fn ecc_label(&self) -> String {
        self.ecc.label()
    }

    /// Remaining shared ECC pool entries, if the scheme has a pool.
    pub fn ecc_pool_remaining(&self) -> Option<u64> {
        self.ecc.pool_remaining()
    }

    #[inline]
    fn check(&self, da: Da) {
        assert!(
            da.index() < self.total_blocks,
            "{da} out of range (device has {} blocks)",
            self.total_blocks
        );
    }

    /// Reads block `da`. Counts one PCM access.
    ///
    /// # Panics
    ///
    /// Panics if `da` is outside the device.
    #[inline]
    pub fn read(&mut self, da: Da) -> ReadOutcome {
        self.check(da);
        self.stats.reads += 1;
        if self.fault.is_some() {
            return self.faulted_read(da);
        }
        if self.blocks[da.as_usize()].dead {
            ReadOutcome::Dead
        } else {
            ReadOutcome::Ok
        }
    }

    /// Read path with a fault plan armed: consult the injector, then
    /// route transient errors through the ECC scheme's headroom check.
    #[cold]
    fn faulted_read(&mut self, da: Da) -> ReadOutcome {
        let fault = self.fault.as_mut().expect("caller checked");
        let raised = fault.on_read();
        if self.blocks[da.as_usize()].dead {
            return ReadOutcome::Dead;
        }
        match raised {
            ReadFault::None => ReadOutcome::Ok,
            ReadFault::Transient => {
                // A soft error is one more bad cell to correct on this
                // read; the scheme absorbs it iff a real (permanent)
                // failure of the same rank would still be correctable.
                // No entry is consumed — the cell recovers.
                let nth = u32::from(self.blocks[da.as_usize()].failures) + 1;
                let corrected = self.ecc.would_correct(da, nth);
                let fault = self.fault.as_mut().expect("caller checked");
                fault.note_transient(corrected);
                if corrected {
                    ReadOutcome::Ok
                } else {
                    ReadOutcome::Transient
                }
            }
        }
    }

    /// Writes block `da`. Counts one PCM access, wears the block, and
    /// reports a new uncorrectable failure if one occurs.
    ///
    /// # Panics
    ///
    /// Panics if `da` is outside the device.
    #[inline]
    pub fn write(&mut self, da: Da) -> WriteOutcome {
        self.check(da);
        if self.fault.is_some() {
            if let Some(out) = self.faulted_write(da) {
                return out;
            }
        }
        self.stats.writes += 1;
        let i = da.as_usize();
        if self.blocks[i].dead {
            return WriteOutcome::AlreadyDead;
        }
        self.blocks[i].wear = self.blocks[i].wear.saturating_add(1);
        if self.blocks[i].threshold == 0 {
            self.blocks[i].threshold = clamp_u32(self.lifetime.threshold(da.index(), 1));
        }
        while self.blocks[i].wear >= self.blocks[i].threshold {
            // One more cell just failed.
            let nth = u32::from(self.blocks[i].failures) + 1;
            assert!(nth < 250, "implausible cell-failure count on {da}");
            self.blocks[i].failures = nth as u8;
            if !self.ecc.correct(da, nth) {
                self.blocks[i].dead = true;
                self.dead_count += 1;
                return WriteOutcome::NewFailure;
            }
            self.blocks[i].threshold = clamp_u32(self.lifetime.threshold(da.index(), nth + 1));
        }
        WriteOutcome::Ok
    }

    /// Steady-state fast write: services the write only when nothing rare
    /// can happen — no fault plan armed, the block alive with its wear
    /// threshold already drawn, and this write provably not reaching it.
    /// Returns `true` iff the write was serviced; the effect is then
    /// bit-identical to [`Self::write_tagged`] returning
    /// [`WriteOutcome::Ok`]. On `false` no state changes and the caller
    /// must take the full path.
    ///
    /// # Panics
    ///
    /// Panics if `da` is outside the device.
    #[inline]
    pub fn write_fast(&mut self, da: Da, tag: u64) -> bool {
        self.check(da);
        let b = &mut self.blocks[da.as_usize()];
        // `threshold == 0` (lazy init outstanding) declines here too,
        // since any `wear + 1 >= 0`.
        if self.fault.is_some() || b.dead || b.wear.saturating_add(1) >= b.threshold {
            return false;
        }
        self.stats.writes += 1;
        b.wear += 1;
        if let Some(c) = &mut self.contents {
            c[da.as_usize()] = tag;
        }
        true
    }

    /// Write path with a fault plan armed. `Some` short-circuits
    /// [`Self::write`]; `None` falls through to the normal path.
    #[cold]
    fn faulted_write(&mut self, da: Da) -> Option<WriteOutcome> {
        let fault = self.fault.as_mut().expect("caller checked");
        match fault.on_write(da) {
            WriteFault::None => None,
            // Power lost: the array never sees the write — no access
            // counted, no wear, nothing stored.
            WriteFault::Lost => Some(WriteOutcome::Lost),
            WriteFault::Silent => {
                // The block dies but the device reports success (the
                // paper's "failure is *sometimes* reported" caveat). The
                // access is serviced and counted; the data is gone, which
                // a later read/verify discovers via `is_dead`.
                self.stats.writes += 1;
                let i = da.as_usize();
                if !self.blocks[i].dead {
                    self.blocks[i].dead = true;
                    self.dead_count += 1;
                }
                Some(WriteOutcome::Ok)
            }
        }
    }

    /// Writes block `da` and, in content-tracking mode, stores `tag` as its
    /// data (only if the write succeeded — a failing write loses its data,
    /// which is exactly the hazard WL-Reviver's delayed-acquisition logic
    /// must handle). A silent injected failure reports `Ok` but stores
    /// nothing: the block is dead.
    pub fn write_tagged(&mut self, da: Da, tag: u64) -> WriteOutcome {
        let outcome = self.write(da);
        if outcome == WriteOutcome::Ok && !self.blocks[da.as_usize()].dead {
            if let Some(c) = &mut self.contents {
                c[da.as_usize()] = tag;
            }
        }
        outcome
    }

    /// The content tag of block `da` (0 if never written or content
    /// tracking is off). Does not count an access; pair with [`Self::read`].
    pub fn tag(&self, da: Da) -> u64 {
        self.check(da);
        self.contents.as_ref().map_or(0, |c| c[da.as_usize()])
    }

    /// Whether content tags are being tracked.
    pub fn tracks_contents(&self) -> bool {
        self.contents.is_some()
    }

    /// Whether block `da` is dead.
    #[inline]
    pub fn is_dead(&self, da: Da) -> bool {
        self.check(da);
        self.blocks[da.as_usize()].dead
    }

    /// Number of dead blocks.
    pub fn dead_blocks(&self) -> u64 {
        self.dead_count
    }

    /// Number of dead blocks with address below `bound` — used to report
    /// failure ratios over the software-visible space when the controller
    /// has appended private device blocks (buffer lines, backup regions).
    pub fn dead_blocks_under(&self, bound: u64) -> u64 {
        let end = usize::try_from(bound.min(self.total_blocks)).expect("fits");
        self.blocks[..end].iter().filter(|b| b.dead).count() as u64
    }

    /// Fraction of all device blocks that are dead.
    pub fn dead_fraction(&self) -> f64 {
        self.dead_count as f64 / self.total_blocks as f64
    }

    /// Wear (write count) of block `da`.
    pub fn wear(&self, da: Da) -> u64 {
        self.check(da);
        u64::from(self.blocks[da.as_usize()].wear)
    }

    /// The full wear vector, for leveling-quality analysis. Collected
    /// out of the packed per-block state, so the caller owns it.
    pub fn wear_snapshot(&self) -> Vec<u32> {
        self.blocks.iter().map(|b| b.wear).collect()
    }

    /// Cell failures suffered so far by block `da`.
    pub fn cell_failures(&self, da: Da) -> u32 {
        self.check(da);
        u32::from(self.blocks[da.as_usize()].failures)
    }

    /// Forces block `da` dead without wearing it or counting accesses.
    /// Used to set up fixed failure ratios (Table II).
    pub fn inject_dead(&mut self, da: Da) {
        self.check(da);
        let i = da.as_usize();
        if !self.blocks[i].dead {
            self.blocks[i].dead = true;
            self.dead_count += 1;
        }
    }

    /// Whether the device currently has power. Always `true` without a
    /// fault plan.
    #[inline]
    pub fn powered(&self) -> bool {
        self.fault.as_ref().is_none_or(FaultInjector::powered)
    }

    /// Whether an injected power loss is in effect (writes are being
    /// dropped).
    #[inline]
    pub fn power_lost(&self) -> bool {
        !self.powered()
    }

    /// Restores power after an injected loss (the reboot boundary);
    /// no-op without a fault plan or with power intact.
    pub fn restore_power(&mut self) {
        if let Some(f) = &mut self.fault {
            f.restore_power();
        }
    }

    /// Reports a named controller crash point to the fault plan, which
    /// may cut power here. No-op without a plan. Returns whether *this*
    /// report cut the power (was powered before, unpowered after), so
    /// the controller can surface the cut as an event.
    #[inline]
    pub fn crash_point(&mut self, point: CrashPoint) -> bool {
        let Some(f) = &mut self.fault else {
            return false;
        };
        let before = f.powered();
        f.on_crash_point(point);
        before && !f.powered()
    }

    /// Arms an additional fault plan on a *live* device. Indices in
    /// `plan` are relative to the accesses serviced so far (see
    /// [`FaultInjector::arm`]); a device built without any plan gains an
    /// injector here, permanently switching its access paths onto the
    /// fault-checked variants. No-op for an empty plan.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        if plan.is_empty() {
            return;
        }
        match &mut self.fault {
            Some(f) => f.arm(plan),
            // A fresh injector's access counts are zero, which matches
            // the relative interpretation exactly.
            None => self.fault = Some(FaultInjector::new(plan)),
        }
    }

    /// Fault counters, when a fault plan is armed.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.fault.as_ref().map(FaultInjector::counters)
    }

    /// Device addresses killed by silent write failures so far (empty
    /// without a fault plan).
    pub fn silent_failures(&self) -> &[Da] {
        self.fault.as_ref().map_or(&[], FaultInjector::silent_log)
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets access counters (not wear or failures) — used to scope
    /// measurement windows.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Rebuilds wear state on a *fresh* device from a persisted
    /// [`Self::wear_snapshot`] image, replaying each block's cell-failure
    /// thresholds exactly as [`Self::write`] would have crossed them.
    ///
    /// Because cell lifetimes are a pure function of (seed, block, nth
    /// failure), a block that absorbed `W` writes before the snapshot
    /// crosses the same thresholds here: `failures`, `dead`, and the next
    /// threshold come out bit-identical to the pre-snapshot state. ECC
    /// state is replayed through the same [`ErrorCorrection::correct`]
    /// calls; for stateless schemes (ECP) this is exact, while a shared
    /// pool (PAYG) ends with the same number of entries consumed but not
    /// necessarily charged in the original temporal order — callers
    /// restoring PAYG devices should treat per-block pool attribution as
    /// approximate.
    ///
    /// Blocks killed *without* organic wear (injected or silent-failure
    /// deaths) are not reproducible from wear alone; re-kill them
    /// afterwards via [`Self::inject_dead`]. Content tags and access
    /// stats are not part of the image.
    ///
    /// # Panics
    ///
    /// Panics if the device is not fresh (any wear or accesses), or if
    /// `wear` does not cover exactly [`Self::total_blocks`].
    pub fn restore_wear_image(&mut self, wear: &[u32]) {
        assert_eq!(
            wear.len(),
            self.blocks.len(),
            "wear image covers a different device"
        );
        assert!(
            self.stats.total() == 0 && self.blocks.iter().all(|b| b.wear == 0 && !b.dead),
            "restore_wear_image requires a fresh device"
        );
        for (i, &w) in wear.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let da = Da::new(i as u64);
            let b = &mut self.blocks[i];
            b.wear = w;
            // Mirror write()'s lazy-init + crossing loop against the
            // final wear value.
            b.threshold = clamp_u32(self.lifetime.threshold(da.index(), 1));
            while self.blocks[i].wear >= self.blocks[i].threshold {
                let nth = u32::from(self.blocks[i].failures) + 1;
                assert!(nth < 250, "implausible cell-failure count on {da}");
                self.blocks[i].failures = nth as u8;
                if !self.ecc.correct(da, nth) {
                    self.blocks[i].dead = true;
                    self.dead_count += 1;
                    break;
                }
                self.blocks[i].threshold = clamp_u32(self.lifetime.threshold(da.index(), nth + 1));
            }
        }
    }

    /// Iterator over all dead block addresses.
    pub fn dead_iter(&self) -> impl Iterator<Item = Da> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.dead)
            .map(|(i, _)| Da::new(i as u64))
    }
}

#[inline]
fn clamp_u32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecc::{NoCorrection, Payg};

    fn small_device(ecc: Box<dyn ErrorCorrection>) -> PcmDevice {
        let geo = Geometry::builder().num_blocks(64).build().unwrap();
        PcmDevice::builder(geo)
            .endurance_mean(200.0)
            .endurance_cov(0.2)
            .seed(1)
            .ecc(ecc)
            .build()
    }

    fn hammer_to_death(dev: &mut PcmDevice, da: Da) -> u64 {
        let mut writes = 0;
        loop {
            writes += 1;
            match dev.write(da) {
                WriteOutcome::NewFailure => return writes,
                WriteOutcome::AlreadyDead => panic!("block died without NewFailure"),
                WriteOutcome::Ok => {}
                WriteOutcome::Lost => panic!("no fault plan armed"),
            }
            assert!(writes < 10_000_000, "block never died");
        }
    }

    #[test]
    fn fresh_device_is_healthy() {
        let dev = small_device(Box::new(Ecp::ecp6()));
        assert_eq!(dev.dead_blocks(), 0);
        assert_eq!(dev.dead_fraction(), 0.0);
        assert_eq!(dev.stats(), AccessStats::default());
        assert_eq!(dev.ecc_label(), "ECP6");
    }

    #[test]
    fn death_matches_lifetime_model() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        let da = Da::new(7);
        let expect = dev.lifetime_model().death_threshold(da.index(), 6);
        let writes = hammer_to_death(&mut dev, da);
        assert_eq!(writes, expect);
        assert!(dev.is_dead(da));
        assert_eq!(dev.dead_blocks(), 1);
        assert_eq!(dev.cell_failures(da), 7);
    }

    #[test]
    fn no_correction_dies_at_first_cell() {
        let mut dev = small_device(Box::new(NoCorrection));
        let da = Da::new(3);
        let expect = dev.lifetime_model().threshold(da.index(), 1);
        assert_eq!(hammer_to_death(&mut dev, da), expect);
    }

    #[test]
    fn ecp6_outlives_ecp1_on_same_block() {
        let geo = Geometry::builder().num_blocks(64).build().unwrap();
        let mk = |ecc: Box<dyn ErrorCorrection>| {
            PcmDevice::builder(geo)
                .endurance_mean(200.0)
                .seed(7)
                .ecc(ecc)
                .build()
        };
        let da = Da::new(11);
        let mut d1 = mk(Box::new(Ecp::ecp1()));
        let mut d6 = mk(Box::new(Ecp::ecp6()));
        let w1 = hammer_to_death(&mut d1, da);
        let w6 = hammer_to_death(&mut d6, da);
        assert!(w6 > w1, "ECP6 ({w6}) must outlast ECP1 ({w1})");
    }

    #[test]
    fn writes_after_death_are_counted_but_inert() {
        let mut dev = small_device(Box::new(NoCorrection));
        let da = Da::new(0);
        hammer_to_death(&mut dev, da);
        let wear_at_death = dev.wear(da);
        assert_eq!(dev.write(da), WriteOutcome::AlreadyDead);
        assert_eq!(dev.wear(da), wear_at_death, "dead blocks do not wear");
        assert_eq!(dev.read(da), ReadOutcome::Dead);
    }

    #[test]
    fn access_stats_count_reads_and_writes() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        dev.read(Da::new(0));
        dev.read(Da::new(1));
        dev.write(Da::new(2));
        let s = dev.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total(), 3);
        dev.reset_stats();
        assert_eq!(dev.stats().total(), 0);
    }

    #[test]
    fn content_tags_follow_successful_writes() {
        let geo = Geometry::builder().num_blocks(64).build().unwrap();
        let mut dev = PcmDevice::builder(geo)
            .endurance_mean(1e6)
            .seed(3)
            .track_contents(true)
            .build();
        let da = Da::new(5);
        assert_eq!(dev.tag(da), 0);
        assert_eq!(dev.write_tagged(da, 0xDEAD), WriteOutcome::Ok);
        assert_eq!(dev.tag(da), 0xDEAD);
    }

    #[test]
    fn failed_write_loses_its_data() {
        let geo = Geometry::builder().num_blocks(64).build().unwrap();
        let mut dev = PcmDevice::builder(geo)
            .endurance_mean(100.0)
            .seed(3)
            .ecc(Box::new(NoCorrection))
            .track_contents(true)
            .build();
        let da = Da::new(2);
        let mut last_good = 0;
        let mut i = 0u64;
        loop {
            i += 1;
            match dev.write_tagged(da, i) {
                WriteOutcome::Ok => last_good = i,
                WriteOutcome::NewFailure => break,
                WriteOutcome::AlreadyDead | WriteOutcome::Lost => unreachable!(),
            }
        }
        assert_eq!(
            dev.tag(da),
            last_good,
            "the failing write must not appear stored"
        );
    }

    #[test]
    fn inject_dead_is_idempotent_and_stat_free() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        dev.inject_dead(Da::new(9));
        dev.inject_dead(Da::new(9));
        assert_eq!(dev.dead_blocks(), 1);
        assert!(dev.is_dead(Da::new(9)));
        assert_eq!(dev.stats().total(), 0);
    }

    #[test]
    fn dead_iter_reports_exactly_the_dead() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        dev.inject_dead(Da::new(1));
        dev.inject_dead(Da::new(40));
        let dead: Vec<Da> = dev.dead_iter().collect();
        assert_eq!(dead, vec![Da::new(1), Da::new(40)]);
    }

    #[test]
    fn extra_blocks_are_addressable() {
        let geo = Geometry::builder().num_blocks(64).build().unwrap();
        let mut dev = PcmDevice::builder(geo).extra_blocks(1).build();
        assert_eq!(dev.total_blocks(), 65);
        assert_eq!(dev.write(Da::new(64)), WriteOutcome::Ok);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        dev.write(Da::new(64));
    }

    #[test]
    fn payg_extends_lifetime_until_pool_dries() {
        let geo = Geometry::builder().num_blocks(64).build().unwrap();
        // Large pool: behaves like ECP6 for a single hammered block.
        let mut rich = PcmDevice::builder(geo)
            .endurance_mean(200.0)
            .seed(9)
            .ecc(Box::new(Payg::new(1_000, 6)))
            .build();
        // Empty pool: behaves like ECP1.
        let mut poor = PcmDevice::builder(geo)
            .endurance_mean(200.0)
            .seed(9)
            .ecc(Box::new(Payg::new(0, 6)))
            .build();
        let da = Da::new(13);
        let w_rich = hammer_to_death(&mut rich, da);
        let w_poor = hammer_to_death(&mut poor, da);
        assert!(
            w_rich > w_poor,
            "pool must extend life: {w_rich} vs {w_poor}"
        );
        // Failures 2..=6 draw from the pool (the first is local ECP1).
        assert_eq!(rich.ecc_pool_remaining(), Some(1_000 - 5));
    }

    mod properties {
        use super::*;
        use wlr_base::rng::Rng;

        /// Device behaviour is a pure function of (seed, op sequence).
        #[test]
        fn deterministic_under_identical_traffic() {
            let mut rng = Rng::stream(0xDE7E, 0);
            for _ in 0..16 {
                let seed = rng.next_u64();
                let geo = Geometry::builder().num_blocks(64).build().unwrap();
                let mk = || {
                    PcmDevice::builder(geo)
                        .endurance_mean(150.0)
                        .seed(seed)
                        .ecc(Box::new(Ecp::ecp1()))
                        .build()
                };
                let mut a = mk();
                let mut b = mk();
                for _ in 0..rng.gen_range(300) {
                    let da = Da::new(rng.gen_range(64));
                    if rng.gen_bool(0.5) {
                        assert_eq!(a.write(da), b.write(da));
                    } else {
                        assert_eq!(a.read(da), b.read(da));
                    }
                }
                assert_eq!(a.dead_blocks(), b.dead_blocks());
                assert_eq!(a.stats(), b.stats());
            }
        }

        /// Dead blocks stay dead; wear never decreases; dead count
        /// equals the dead iterator's length.
        #[test]
        fn monotone_decay() {
            let mut rng = Rng::stream(0xDE7E, 1);
            for _ in 0..16 {
                let seed = rng.next_u64();
                let geo = Geometry::builder().num_blocks(64).build().unwrap();
                let mut dev = PcmDevice::builder(geo)
                    .endurance_mean(100.0)
                    .seed(seed)
                    .ecc(Box::new(Ecp::new(2)))
                    .build();
                let mut prev_dead = 0u64;
                let mut prev_wear = vec![0u64; 64];
                for _ in 0..rng.gen_range(500) {
                    let da = Da::new(rng.gen_range(32));
                    let was_dead = dev.is_dead(da);
                    let out = dev.write(da);
                    if was_dead {
                        assert_eq!(out, WriteOutcome::AlreadyDead);
                    }
                    assert!(dev.dead_blocks() >= prev_dead);
                    prev_dead = dev.dead_blocks();
                    for i in 0..64u64 {
                        let w = dev.wear(Da::new(i));
                        assert!(w >= prev_wear[i as usize]);
                        prev_wear[i as usize] = w;
                    }
                }
                assert_eq!(dev.dead_iter().count() as u64, dev.dead_blocks());
            }
        }
    }

    mod faults {
        use super::*;
        use crate::fault::{CrashPoint, FaultPlan};

        fn faulted(plan: FaultPlan) -> PcmDevice {
            let geo = Geometry::builder().num_blocks(64).build().unwrap();
            PcmDevice::builder(geo)
                .endurance_mean(1e6)
                .seed(2)
                .track_contents(true)
                .fault_plan(plan)
                .build()
        }

        #[test]
        fn power_loss_freezes_the_device_until_restored() {
            let mut dev = faulted(FaultPlan::new().power_loss_at_write(1));
            assert_eq!(dev.write_tagged(Da::new(0), 10), WriteOutcome::Ok);
            let stats_before = dev.stats();
            let wear_before = dev.wear(Da::new(1));
            assert_eq!(dev.write_tagged(Da::new(1), 20), WriteOutcome::Lost);
            assert!(dev.power_lost());
            assert_eq!(dev.write_tagged(Da::new(2), 30), WriteOutcome::Lost);
            // Lost writes leave no trace: stats, wear, and contents frozen.
            assert_eq!(dev.stats(), stats_before);
            assert_eq!(dev.wear(Da::new(1)), wear_before);
            assert_eq!(dev.tag(Da::new(1)), 0);
            dev.restore_power();
            assert!(dev.powered());
            assert_eq!(dev.write_tagged(Da::new(1), 40), WriteOutcome::Ok);
            assert_eq!(dev.tag(Da::new(1)), 40);
        }

        #[test]
        fn silent_failure_reports_ok_but_kills_and_drops_data() {
            let mut dev = faulted(FaultPlan::new().silent_failure_at_write(1));
            assert_eq!(dev.write_tagged(Da::new(5), 1), WriteOutcome::Ok);
            assert_eq!(dev.tag(Da::new(5)), 1);
            // The lying write: reports Ok, stores nothing, block is dead.
            assert_eq!(dev.write_tagged(Da::new(5), 2), WriteOutcome::Ok);
            assert_eq!(dev.tag(Da::new(5)), 1, "silent failure must drop data");
            assert!(dev.is_dead(Da::new(5)));
            assert_eq!(dev.silent_failures(), &[Da::new(5)]);
            assert_eq!(dev.read(Da::new(5)), ReadOutcome::Dead);
            assert_eq!(dev.fault_counters().unwrap().silent_failures, 1);
        }

        #[test]
        fn crash_point_cuts_power_between_writes() {
            let mut dev = faulted(FaultPlan::new().power_loss_at_point(CrashPoint::MidSwitch, 0));
            assert_eq!(dev.write(Da::new(0)), WriteOutcome::Ok);
            dev.crash_point(CrashPoint::MidSwitch);
            assert!(dev.power_lost());
            assert_eq!(dev.write(Da::new(1)), WriteOutcome::Lost);
        }

        #[test]
        fn transient_read_corrected_while_ecc_has_headroom() {
            // ECP6 device, fresh block: a soft error is absorbed.
            let mut dev = faulted(FaultPlan::new().transient_read_at(0).transient_read_at(1));
            assert_eq!(dev.read(Da::new(3)), ReadOutcome::Ok);
            let c = dev.fault_counters().unwrap();
            assert_eq!(c.transients_corrected, 1);
            // Second transient lands on a block whose ECC is saturated.
            let geo = Geometry::builder().num_blocks(64).build().unwrap();
            let mut sat = PcmDevice::builder(geo)
                .endurance_mean(1e6)
                .seed(2)
                .ecc(Box::new(Ecp::new(0)))
                .fault_plan(FaultPlan::new().transient_read_at(0))
                .build();
            assert_eq!(sat.read(Da::new(3)), ReadOutcome::Transient);
            assert!(!sat.is_dead(Da::new(3)), "transient must not kill");
            assert_eq!(sat.fault_counters().unwrap().transients_uncorrectable, 1);
        }

        #[test]
        fn unarmed_device_reports_no_fault_state() {
            let mut dev = small_device(Box::new(Ecp::ecp6()));
            assert!(dev.powered());
            assert!(!dev.power_lost());
            assert_eq!(dev.fault_counters(), None);
            assert!(dev.silent_failures().is_empty());
            dev.crash_point(CrashPoint::MidSwitch); // no-op
            dev.restore_power(); // no-op
            assert_eq!(dev.write(Da::new(0)), WriteOutcome::Ok);
        }
    }

    #[test]
    fn restore_wear_image_replays_thresholds_exactly() {
        let mut rng = wlr_base::rng::Rng::stream(0xE57, 0);
        for _ in 0..8 {
            let seed = rng.next_u64();
            let geo = Geometry::builder().num_blocks(64).build().unwrap();
            let mk = || {
                PcmDevice::builder(geo)
                    .endurance_mean(120.0)
                    .seed(seed)
                    .ecc(Box::new(Ecp::new(2)))
                    .build()
            };
            let mut live = mk();
            for _ in 0..rng.gen_range(4_000) {
                live.write(Da::new(rng.gen_range(16)));
            }
            let mut restored = mk();
            restored.restore_wear_image(&live.wear_snapshot());
            assert_eq!(restored.wear_snapshot(), live.wear_snapshot());
            assert_eq!(restored.dead_blocks(), live.dead_blocks());
            for i in 0..64 {
                let da = Da::new(i);
                assert_eq!(restored.cell_failures(da), live.cell_failures(da));
                assert_eq!(restored.is_dead(da), live.is_dead(da));
            }
            // The next writes behave identically: thresholds came back
            // bit-identical, not just the visible counters.
            for _ in 0..500 {
                let da = Da::new(rng.gen_range(16));
                assert_eq!(live.write(da), restored.write(da));
            }
        }
    }

    #[test]
    #[should_panic(expected = "fresh device")]
    fn restore_rejects_worn_devices() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        dev.write(Da::new(0));
        let img = dev.wear_snapshot();
        dev.restore_wear_image(&img);
    }

    #[test]
    fn wear_snapshot_tracks_writes() {
        let mut dev = small_device(Box::new(Ecp::ecp6()));
        for _ in 0..5 {
            dev.write(Da::new(4));
        }
        assert_eq!(dev.wear(Da::new(4)), 5);
        assert_eq!(dev.wear_snapshot()[4], 5);
        assert_eq!(dev.wear(Da::new(5)), 0);
    }
}
