//! Seeded fault injection for the PCM device.
//!
//! A [`FaultPlan`] schedules failures the happy-path model cannot produce
//! organically, and a [`FaultInjector`] (owned by
//! [`crate::device::PcmDevice`] when a plan is configured) fires them
//! deterministically as the device services traffic:
//!
//! * **Power loss** at an arbitrary device-write index: the write in
//!   flight — and every later write until power is restored — is dropped
//!   ([`crate::device::WriteOutcome::Lost`]), freezing the persistent
//!   image at exactly the crash point. Controllers above re-enter via
//!   their recovery path after `restore_power`.
//! * **Power loss at a named crash point**: controllers report named
//!   multi-write operations ([`CrashPoint`]) so a plan can target e.g.
//!   "the 3rd virtual-shadow switch, between its two pointer writes" —
//!   the torn-metadata windows a write-index sweep only hits by luck.
//! * **Silent write failure**: the block dies but the device reports
//!   `Ok` — the paper's "failure is *sometimes* reported" caveat. The
//!   failure surfaces on a later touch, like an undiscovered failure.
//! * **Transient read error**: a soft error on a read. If the block's ECC
//!   scheme still has headroom the error is corrected in place (counted,
//!   no state change); otherwise the read reports
//!   [`crate::device::ReadOutcome::Transient`] — retryable, unlike `Dead`.
//!
//! All schedules are fixed up front (sorted, deduplicated) so a run with
//! a plan is exactly as deterministic as one without; the seeded helpers
//! derive index sets from a [`wlr_base::rng::Rng`] stream.

use wlr_base::rng::Rng;
use wlr_base::Da;

/// A named multi-write controller operation whose interior is a
/// crash-consistency hazard. Controllers report these to the device via
/// [`crate::device::PcmDevice::crash_point`]; occurrences are counted
/// per kind so a plan can target the n-th one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Between the two pointer writes of a virtual-shadow switch
    /// (Figures 2(d)/3(b)) — the torn-switch window.
    MidSwitch,
    /// After a migration's mapping advanced but before its buffered data
    /// landed on the target block.
    MidMigration,
    /// After the retirement bitmap was updated but before the page's
    /// spare PAs were put to use.
    MidRetire,
    /// Immediately after a failed block was linked, before its inverse
    /// pointer is persisted.
    MidLink,
}

impl CrashPoint {
    fn slot(self) -> usize {
        match self {
            CrashPoint::MidSwitch => 0,
            CrashPoint::MidMigration => 1,
            CrashPoint::MidRetire => 2,
            CrashPoint::MidLink => 3,
        }
    }
}

/// Fault-event counters, exposed through
/// [`crate::device::PcmDevice::fault_counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Power-loss events fired (write-index and crash-point triggers).
    pub power_losses: u64,
    /// Writes dropped while power was lost (including the triggering one).
    pub writes_lost: u64,
    /// Silent write failures fired.
    pub silent_failures: u64,
    /// Transient read errors corrected in place by the ECC scheme.
    pub transients_corrected: u64,
    /// Transient read errors the ECC scheme could no longer absorb.
    pub transients_uncorrectable: u64,
}

/// A deterministic schedule of injected faults.
///
/// Write/read indices are 0-based and count the device accesses of that
/// kind serviced *while powered*; the k-th scheduled write is itself
/// affected (a power loss at index k means write k does not commit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    power_loss_writes: Vec<u64>,
    silent_writes: Vec<u64>,
    transient_reads: Vec<u64>,
    crash_points: Vec<(CrashPoint, u64)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.power_loss_writes.is_empty()
            && self.silent_writes.is_empty()
            && self.transient_reads.is_empty()
            && self.crash_points.is_empty()
    }

    /// Schedules a power loss at device-write index `idx`: that write and
    /// all later ones are dropped until power is restored.
    pub fn power_loss_at_write(mut self, idx: u64) -> Self {
        self.power_loss_writes.push(idx);
        self
    }

    /// Schedules a power loss at the `occurrence`-th (0-based) report of
    /// the named crash point.
    pub fn power_loss_at_point(mut self, point: CrashPoint, occurrence: u64) -> Self {
        self.crash_points.push((point, occurrence));
        self
    }

    /// Schedules a silent failure: the write at device-write index `idx`
    /// kills its block but reports `Ok`.
    pub fn silent_failure_at_write(mut self, idx: u64) -> Self {
        self.silent_writes.push(idx);
        self
    }

    /// Schedules a transient (soft) read error at device-read index `idx`.
    pub fn transient_read_at(mut self, idx: u64) -> Self {
        self.transient_reads.push(idx);
        self
    }

    /// Schedules a burst of `count` consecutive transient read errors
    /// starting at device-read index `start` — the error-burst shape the
    /// chaos harness arms against live banks.
    pub fn transient_read_burst(mut self, start: u64, count: u64) -> Self {
        for i in 0..count {
            self.transient_reads.push(start + i);
        }
        self
    }

    /// Adds `count` seeded silent-failure write indices drawn uniformly
    /// from `[lo, hi)`.
    pub fn seeded_silent_failures(mut self, seed: u64, count: usize, lo: u64, hi: u64) -> Self {
        let mut rng = Rng::stream(seed, 0x51EE7);
        for _ in 0..count {
            self.silent_writes.push(lo + rng.gen_range(hi - lo));
        }
        self
    }

    /// Adds `count` seeded transient-read indices drawn uniformly from
    /// `[lo, hi)`.
    pub fn seeded_transient_reads(mut self, seed: u64, count: usize, lo: u64, hi: u64) -> Self {
        let mut rng = Rng::stream(seed, 0x7EA0);
        for _ in 0..count {
            self.transient_reads.push(lo + rng.gen_range(hi - lo));
        }
        self
    }
}

/// Which fault, if any, an injector applied to a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault; the write proceeds normally.
    None,
    /// Power is (now) lost; the write must be dropped.
    Lost,
    /// The write silently kills its block but must report success.
    Silent,
}

/// Which fault, if any, an injector applied to a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// No fault; the read proceeds normally.
    None,
    /// A transient (soft) error was raised; the device decides whether
    /// the block's ECC scheme absorbs it.
    Transient,
}

/// Runtime state of a [`FaultPlan`] being executed against a device.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Sorted, deduplicated schedules with advancing cursors.
    power_loss_writes: Vec<u64>,
    silent_writes: Vec<u64>,
    transient_reads: Vec<u64>,
    crash_points: Vec<(CrashPoint, u64)>,
    next_power: usize,
    next_silent: usize,
    next_transient: usize,
    /// Powered writes/reads serviced so far (the schedules' index space).
    writes_seen: u64,
    reads_seen: u64,
    /// Occurrence counters per [`CrashPoint`] kind.
    point_seen: [u64; 4],
    powered: bool,
    counters: FaultCounters,
    silent_log: Vec<Da>,
}

impl FaultInjector {
    /// Compiles `plan` into runnable form.
    pub fn new(plan: FaultPlan) -> Self {
        let sorted = |mut v: Vec<u64>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        let FaultPlan {
            power_loss_writes,
            silent_writes,
            transient_reads,
            mut crash_points,
        } = plan;
        let power_loss_writes = sorted(power_loss_writes);
        let silent_writes = sorted(silent_writes);
        let transient_reads = sorted(transient_reads);
        crash_points.sort_unstable_by_key(|&(p, occ)| (p.slot(), occ));
        crash_points.dedup();
        FaultInjector {
            power_loss_writes,
            silent_writes,
            transient_reads,
            crash_points,
            next_power: 0,
            next_silent: 0,
            next_transient: 0,
            writes_seen: 0,
            reads_seen: 0,
            point_seen: [0; 4],
            powered: true,
            counters: FaultCounters::default(),
            silent_log: Vec::new(),
        }
    }

    /// Arms an additional plan on a *live* injector. Incoming indices are
    /// interpreted relative to the current access counts — a plan with
    /// `power_loss_at_write(0)` cuts power on the very next powered
    /// write — so callers can script faults against a pipeline that has
    /// already serviced traffic. Crash-point occurrences are likewise
    /// shifted by the occurrences already seen. Already-consumed schedule
    /// entries are untouched; the un-consumed suffix is merged, re-sorted
    /// and deduplicated, preserving determinism from this point on.
    pub fn arm(&mut self, plan: FaultPlan) {
        fn merge_tail(sched: &mut Vec<u64>, cursor: usize, add: Vec<u64>, base: u64) {
            if add.is_empty() {
                return;
            }
            let mut tail = sched.split_off(cursor);
            tail.extend(add.into_iter().map(|i| base.saturating_add(i)));
            tail.sort_unstable();
            tail.dedup();
            // Entries below the current access count can never match an
            // exact-index check again; drop them so they cannot jam the
            // cursor.
            tail.retain(|&i| i >= base);
            sched.append(&mut tail);
        }
        let FaultPlan {
            power_loss_writes,
            silent_writes,
            transient_reads,
            crash_points,
        } = plan;
        merge_tail(
            &mut self.power_loss_writes,
            self.next_power,
            power_loss_writes,
            self.writes_seen,
        );
        merge_tail(
            &mut self.silent_writes,
            self.next_silent,
            silent_writes,
            self.writes_seen,
        );
        merge_tail(
            &mut self.transient_reads,
            self.next_transient,
            transient_reads,
            self.reads_seen,
        );
        if !crash_points.is_empty() {
            self.crash_points.extend(
                crash_points
                    .into_iter()
                    .map(|(p, occ)| (p, self.point_seen[p.slot()].saturating_add(occ))),
            );
            self.crash_points
                .sort_unstable_by_key(|&(p, occ)| (p.slot(), occ));
            self.crash_points.dedup();
        }
    }

    /// Whether the device still has power.
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Restores power after a loss. Consumed schedule entries do not
    /// re-fire; later ones remain armed.
    pub fn restore_power(&mut self) {
        self.powered = true;
    }

    /// Fault counters accumulated so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Device addresses killed by silent write failures, in order.
    pub fn silent_log(&self) -> &[Da] {
        &self.silent_log
    }

    /// Consults the schedule for the write about to be serviced on `da`.
    pub fn on_write(&mut self, da: Da) -> WriteFault {
        if !self.powered {
            self.counters.writes_lost += 1;
            return WriteFault::Lost;
        }
        let idx = self.writes_seen;
        self.writes_seen += 1;
        if self.power_loss_writes.get(self.next_power) == Some(&idx) {
            self.next_power += 1;
            self.powered = false;
            self.counters.power_losses += 1;
            self.counters.writes_lost += 1;
            return WriteFault::Lost;
        }
        if self.silent_writes.get(self.next_silent) == Some(&idx) {
            self.next_silent += 1;
            self.counters.silent_failures += 1;
            self.silent_log.push(da);
            return WriteFault::Silent;
        }
        WriteFault::None
    }

    /// Consults the schedule for the read about to be serviced.
    pub fn on_read(&mut self) -> ReadFault {
        let idx = self.reads_seen;
        self.reads_seen += 1;
        if self.transient_reads.get(self.next_transient) == Some(&idx) {
            self.next_transient += 1;
            return ReadFault::Transient;
        }
        ReadFault::None
    }

    /// Registers one occurrence of `point`; cuts power if the plan
    /// targets this occurrence.
    pub fn on_crash_point(&mut self, point: CrashPoint) {
        if !self.powered {
            return;
        }
        let occ = self.point_seen[point.slot()];
        self.point_seen[point.slot()] += 1;
        if self.crash_points.contains(&(point, occ)) {
            self.powered = false;
            self.counters.power_losses += 1;
        }
    }

    /// Records the ECC verdict on a transient read error.
    pub fn note_transient(&mut self, corrected: bool) {
        if corrected {
            self.counters.transients_corrected += 1;
        } else {
            self.counters.transients_uncorrectable += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new());
        for _ in 0..100 {
            assert_eq!(inj.on_write(Da::new(0)), WriteFault::None);
            assert_eq!(inj.on_read(), ReadFault::None);
        }
        assert!(inj.powered());
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn power_loss_fires_at_exact_index_and_sticks() {
        let mut inj = FaultInjector::new(FaultPlan::new().power_loss_at_write(2));
        assert_eq!(inj.on_write(Da::new(0)), WriteFault::None);
        assert_eq!(inj.on_write(Da::new(1)), WriteFault::None);
        assert_eq!(inj.on_write(Da::new(2)), WriteFault::Lost);
        assert!(!inj.powered());
        assert_eq!(inj.on_write(Da::new(3)), WriteFault::Lost);
        assert_eq!(inj.counters().power_losses, 1);
        assert_eq!(inj.counters().writes_lost, 2);
        inj.restore_power();
        assert_eq!(inj.on_write(Da::new(4)), WriteFault::None);
    }

    #[test]
    fn silent_failure_fires_once_and_logs() {
        let mut inj = FaultInjector::new(FaultPlan::new().silent_failure_at_write(1));
        assert_eq!(inj.on_write(Da::new(9)), WriteFault::None);
        assert_eq!(inj.on_write(Da::new(5)), WriteFault::Silent);
        assert_eq!(inj.on_write(Da::new(5)), WriteFault::None);
        assert_eq!(inj.silent_log(), &[Da::new(5)]);
    }

    #[test]
    fn crash_point_targets_nth_occurrence() {
        let mut inj =
            FaultInjector::new(FaultPlan::new().power_loss_at_point(CrashPoint::MidSwitch, 1));
        inj.on_crash_point(CrashPoint::MidSwitch); // occurrence 0
        assert!(inj.powered());
        inj.on_crash_point(CrashPoint::MidMigration); // other kind
        assert!(inj.powered());
        inj.on_crash_point(CrashPoint::MidSwitch); // occurrence 1
        assert!(!inj.powered());
    }

    #[test]
    fn transient_read_fires_at_index() {
        let mut inj = FaultInjector::new(FaultPlan::new().transient_read_at(0));
        assert_eq!(inj.on_read(), ReadFault::Transient);
        assert_eq!(inj.on_read(), ReadFault::None);
    }

    #[test]
    fn arming_live_shifts_indices_to_the_present() {
        let mut inj = FaultInjector::new(FaultPlan::new());
        for _ in 0..10 {
            assert_eq!(inj.on_write(Da::new(0)), WriteFault::None);
        }
        for _ in 0..4 {
            assert_eq!(inj.on_read(), ReadFault::None);
        }
        inj.arm(
            FaultPlan::new()
                .power_loss_at_write(2)
                .transient_read_burst(0, 2),
        );
        // Reads: relative indices 0 and 1 fire immediately.
        assert_eq!(inj.on_read(), ReadFault::Transient);
        assert_eq!(inj.on_read(), ReadFault::Transient);
        assert_eq!(inj.on_read(), ReadFault::None);
        // Writes: relative index 2 = absolute 12.
        assert_eq!(inj.on_write(Da::new(0)), WriteFault::None); // 10
        assert_eq!(inj.on_write(Da::new(0)), WriteFault::None); // 11
        assert_eq!(inj.on_write(Da::new(0)), WriteFault::Lost); // 12
        inj.restore_power();
        assert_eq!(inj.on_write(Da::new(0)), WriteFault::None);
    }

    #[test]
    fn arming_preserves_pending_entries_and_shifts_crash_points() {
        let mut inj = FaultInjector::new(FaultPlan::new().silent_failure_at_write(5));
        inj.on_write(Da::new(0)); // absolute 0
        inj.on_crash_point(CrashPoint::MidSwitch); // occurrence 0
        inj.arm(
            FaultPlan::new()
                .silent_failure_at_write(1) // absolute 2
                .power_loss_at_point(CrashPoint::MidSwitch, 1), // occurrence 2
        );
        assert_eq!(inj.on_write(Da::new(1)), WriteFault::None); // 1
        assert_eq!(inj.on_write(Da::new(2)), WriteFault::Silent); // 2, armed
        assert_eq!(inj.on_write(Da::new(3)), WriteFault::None); // 3
        assert_eq!(inj.on_write(Da::new(4)), WriteFault::None); // 4
        assert_eq!(inj.on_write(Da::new(5)), WriteFault::Silent); // 5, original
        inj.on_crash_point(CrashPoint::MidSwitch); // occurrence 1
        assert!(inj.powered());
        inj.on_crash_point(CrashPoint::MidSwitch); // occurrence 2, armed
        assert!(!inj.powered());
    }

    #[test]
    fn transient_burst_covers_consecutive_reads() {
        let mut inj = FaultInjector::new(FaultPlan::new().transient_read_burst(1, 3));
        assert_eq!(inj.on_read(), ReadFault::None);
        for _ in 0..3 {
            assert_eq!(inj.on_read(), ReadFault::Transient);
        }
        assert_eq!(inj.on_read(), ReadFault::None);
    }

    #[test]
    fn seeded_helpers_are_deterministic() {
        let a = FaultPlan::new().seeded_silent_failures(7, 5, 100, 1_000);
        let b = FaultPlan::new().seeded_silent_failures(7, 5, 100, 1_000);
        assert_eq!(a, b);
        let c = FaultPlan::new().seeded_silent_failures(8, 5, 100, 1_000);
        assert_ne!(a, c);
    }
}
