//! Error-correction schemes deciding when cell failures kill a block.
//!
//! The paper's evaluation (§IV-B) uses two life-extending schemes below the
//! wear-leveler:
//!
//! * **ECP6** (Schechter et al., ISCA'10): six error-correcting pointers
//!   per 512-bit group; the group (here: block) survives its first six cell
//!   failures and dies on the seventh.
//! * **PAYG** (Qureshi, MICRO'11): ECP1 locally plus a *global* pool of
//!   correction entries sized well below worst case (≈19.5 metadata bits
//!   per group vs ECP6's 61). A block's second and later cell failures draw
//!   entries from the pool; once the pool runs dry, the next failure is
//!   uncorrectable. Because entries chain, a hot group can absorb far more
//!   than ECP6's six failures while the pool lasts — that is PAYG's whole
//!   advantage — bounded here by a structural per-block ceiling of 64
//!   (see DESIGN.md §3.5).
//!
//! Schemes implement [`ErrorCorrection`]; the device calls
//! [`ErrorCorrection::correct`] once per cell failure, in order, and kills
//! the block on the first `false`.

use core::fmt;
use wlr_base::Da;

/// A life-extending error-correction scheme.
///
/// The device reports each block's cell failures in order (`nth` = 1 for
/// the block's first failed cell). An implementation returns `true` if the
/// failure is corrected (the block stays alive) and `false` if it is
/// uncorrectable (the block is dead).
pub trait ErrorCorrection: fmt::Debug + Send {
    /// Attempts to correct the `nth` (1-based) cell failure of block `da`.
    fn correct(&mut self, da: Da, nth: u32) -> bool;

    /// Short scheme label used in experiment output (e.g. `"ECP6"`).
    fn label(&self) -> String;

    /// Remaining shared correction resources, if the scheme has any
    /// (`None` for purely local schemes like ECP).
    fn pool_remaining(&self) -> Option<u64> {
        None
    }

    /// Whether the scheme *would* absorb the `nth` (1-based) bad cell of
    /// block `da` without consuming any resource — used for transient
    /// (soft) read errors, which the hardware corrects in place when ECC
    /// headroom remains but which do not burn a permanent entry. The
    /// conservative default says no.
    fn would_correct(&self, da: Da, nth: u32) -> bool {
        let _ = (da, nth);
        false
    }

    /// Deep copy of the scheme's current state, for device snapshots.
    fn clone_box(&self) -> Box<dyn ErrorCorrection>;
}

/// Error-Correcting Pointers with a fixed number of entries per block.
///
/// ```
/// use wlr_base::Da;
/// use wlr_pcm::ecc::{Ecp, ErrorCorrection};
/// let mut ecp = Ecp::new(2);
/// let da = Da::new(0);
/// assert!(ecp.correct(da, 1));
/// assert!(ecp.correct(da, 2));
/// assert!(!ecp.correct(da, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ecp {
    entries: u32,
}

impl Ecp {
    /// An ECP scheme with `entries` correction entries per block.
    pub fn new(entries: u32) -> Self {
        Ecp { entries }
    }

    /// The paper's base configuration: ECP6 (61 metadata bits per 512-bit
    /// group).
    pub fn ecp6() -> Self {
        Ecp::new(6)
    }

    /// ECP1: a single correction entry, used as PAYG's local scheme.
    pub fn ecp1() -> Self {
        Ecp::new(1)
    }

    /// Number of correction entries per block.
    pub fn entries(&self) -> u32 {
        self.entries
    }
}

impl ErrorCorrection for Ecp {
    fn correct(&mut self, _da: Da, nth: u32) -> bool {
        nth <= self.entries
    }

    fn label(&self) -> String {
        format!("ECP{}", self.entries)
    }

    fn would_correct(&self, _da: Da, nth: u32) -> bool {
        nth <= self.entries
    }

    fn clone_box(&self) -> Box<dyn ErrorCorrection> {
        Box::new(self.clone())
    }
}

/// Pay-As-You-Go: local ECP1 plus a global pool of correction entries.
///
/// ```
/// use wlr_base::Da;
/// use wlr_pcm::ecc::{ErrorCorrection, Payg};
/// let mut payg = Payg::new(1, 6); // one pool entry, cap 6
/// let a = Da::new(0);
/// let b = Da::new(1);
/// assert!(payg.correct(a, 1));        // local ECP1
/// assert!(payg.correct(a, 2));        // takes the pool entry
/// assert_eq!(payg.pool_remaining(), Some(0));
/// assert!(payg.correct(b, 1));        // b's local entry still works
/// assert!(!payg.correct(b, 2));       // pool is dry
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payg {
    local_entries: u32,
    pool: u64,
    pool_capacity: u64,
    cap: u32,
}

impl Payg {
    /// A PAYG scheme with `pool` global entries and a per-block ceiling of
    /// `cap` corrected cells (local + global).
    pub fn new(pool: u64, cap: u32) -> Self {
        Payg {
            local_entries: 1,
            pool,
            pool_capacity: pool,
            cap,
        }
    }

    /// Pool sized as `ratio` entries per block, the paper's default budget
    /// (≈0.77 entries per group for 19.5 avg metadata bits — DESIGN.md
    /// §3.5). Unlike fixed ECP, PAYG lets a hot group chain many global
    /// entries; the per-block ceiling models the structural limit of the
    /// chained-entry format, not ECP6's six.
    pub fn with_ratio(num_blocks: u64, ratio: f64) -> Self {
        assert!(ratio >= 0.0, "pool ratio must be non-negative");
        Payg::new((num_blocks as f64 * ratio).floor() as u64, 64)
    }

    /// The paper's default: 0.77 pool entries per block.
    pub fn paper_default(num_blocks: u64) -> Self {
        Payg::with_ratio(num_blocks, 0.77)
    }

    /// Total pool capacity in entries.
    pub fn pool_capacity(&self) -> u64 {
        self.pool_capacity
    }
}

impl ErrorCorrection for Payg {
    fn correct(&mut self, _da: Da, nth: u32) -> bool {
        if nth > self.cap {
            return false;
        }
        if nth <= self.local_entries {
            return true;
        }
        if self.pool > 0 {
            self.pool -= 1;
            true
        } else {
            false
        }
    }

    fn label(&self) -> String {
        "PAYG".to_string()
    }

    fn pool_remaining(&self) -> Option<u64> {
        Some(self.pool)
    }

    fn would_correct(&self, _da: Da, nth: u32) -> bool {
        nth <= self.cap && (nth <= self.local_entries || self.pool > 0)
    }

    fn clone_box(&self) -> Box<dyn ErrorCorrection> {
        Box::new(self.clone())
    }
}

/// No correction at all: every cell failure kills its block. Useful as a
/// lower-bound baseline and in unit tests.
///
/// ```
/// use wlr_base::Da;
/// use wlr_pcm::ecc::{ErrorCorrection, NoCorrection};
/// assert!(!NoCorrection.correct(Da::new(0), 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoCorrection;

impl ErrorCorrection for NoCorrection {
    fn correct(&mut self, _da: Da, _nth: u32) -> bool {
        false
    }

    fn label(&self) -> String {
        "none".to_string()
    }

    fn clone_box(&self) -> Box<dyn ErrorCorrection> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecp_corrects_up_to_entries() {
        let mut e = Ecp::ecp6();
        let da = Da::new(9);
        for nth in 1..=6 {
            assert!(e.correct(da, nth), "ECP6 must correct failure {nth}");
        }
        assert!(!e.correct(da, 7));
        assert_eq!(e.label(), "ECP6");
        assert_eq!(e.pool_remaining(), None);
    }

    #[test]
    fn ecp_zero_entries_fails_immediately() {
        let mut e = Ecp::new(0);
        assert!(!e.correct(Da::new(0), 1));
    }

    #[test]
    fn payg_pool_is_shared_across_blocks() {
        let mut p = Payg::new(3, 6);
        // Three different blocks each burn one pool entry for their 2nd
        // failure; the fourth block is out of luck.
        for b in 0..3u64 {
            assert!(p.correct(Da::new(b), 1));
            assert!(p.correct(Da::new(b), 2), "block {b} should get an entry");
        }
        assert!(p.correct(Da::new(3), 1));
        assert!(!p.correct(Da::new(3), 2));
        assert_eq!(p.pool_remaining(), Some(0));
    }

    #[test]
    fn payg_respects_cap() {
        let mut p = Payg::new(1000, 3);
        let da = Da::new(0);
        assert!(p.correct(da, 1));
        assert!(p.correct(da, 2));
        assert!(p.correct(da, 3));
        assert!(!p.correct(da, 4), "cap must bound corrections");
        // The cap rejection must not burn a pool entry.
        assert_eq!(p.pool_remaining(), Some(998));
    }

    #[test]
    fn payg_ratio_sizing() {
        let p = Payg::with_ratio(1000, 0.77);
        assert_eq!(p.pool_capacity(), 770);
        let p = Payg::paper_default(65536);
        assert_eq!(p.pool_capacity(), (65536.0f64 * 0.77) as u64);
    }

    #[test]
    fn payg_label() {
        assert_eq!(Payg::new(1, 6).label(), "PAYG");
    }

    #[test]
    fn no_correction_always_fails() {
        let mut n = NoCorrection;
        assert!(!n.correct(Da::new(5), 1));
        assert_eq!(n.label(), "none");
    }

    #[test]
    fn trait_object_usable() {
        let mut schemes: Vec<Box<dyn ErrorCorrection>> = vec![
            Box::new(Ecp::ecp6()),
            Box::new(Payg::new(10, 6)),
            Box::new(NoCorrection),
        ];
        let results: Vec<bool> = schemes
            .iter_mut()
            .map(|s| s.correct(Da::new(1), 1))
            .collect();
        assert_eq!(results, vec![true, true, false]);
    }
}
