//! Phase-change-memory device model.
//!
//! This crate simulates the PCM chip the WL-Reviver paper evaluates on
//! (§IV-A): 64 B memory blocks, per-cell write endurance drawn from a
//! normal distribution (mean 10⁸, lifetime CoV 0.2 in the paper; scaled in
//! the default experiments), and pluggable error-correction schemes that
//! decide when accumulated cell failures kill a block:
//!
//! * [`ecc::Ecp`] — Error-Correcting Pointers with `k` entries per 512-bit
//!   group (the paper's base scheme is ECP6);
//! * [`ecc::Payg`] — Pay-As-You-Go: local ECP1 plus a global pool of
//!   correction entries allocated on demand.
//!
//! The central type is [`device::PcmDevice`]: it owns per-block wear
//! counters, lazily materializes each block's cell-failure thresholds from
//! order statistics ([`lifetime`]), routes cell failures through the ECC
//! scheme, and keeps access accounting used for the paper's "average access
//! time in number of PCM accesses" metric (Table II).
//!
//! The device is deliberately *dumb*: it performs no address remapping and
//! no failure hiding. Wear-leveling lives in `wlr-wl`, and failure revival
//! (the paper's contribution) lives in the `wl-reviver` crate, layered on
//! top of this model.
//!
//! # Example
//!
//! ```
//! use wlr_base::{Da, Geometry};
//! use wlr_pcm::device::{PcmDevice, WriteOutcome};
//! use wlr_pcm::ecc::Ecp;
//!
//! let geo = Geometry::builder().num_blocks(64).build()?;
//! let mut dev = PcmDevice::builder(geo)
//!     .endurance_mean(1_000.0)
//!     .seed(42)
//!     .ecc(Box::new(Ecp::ecp6()))
//!     .build();
//!
//! // Hammer one block until it dies.
//! let da = Da::new(3);
//! let mut writes = 0u64;
//! loop {
//!     writes += 1;
//!     if dev.write(da) == WriteOutcome::NewFailure {
//!         break;
//!     }
//! }
//! assert!(dev.is_dead(da));
//! assert!(writes > 100); // ECP6 tolerates the first six weak cells
//! # Ok::<(), wlr_base::geometry::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod ecc;
pub mod fault;
pub mod lifetime;

pub use device::{AccessStats, PcmDevice, PcmDeviceBuilder, ReadOutcome, WriteOutcome};
pub use ecc::{Ecp, ErrorCorrection, NoCorrection, Payg};
pub use fault::{CrashPoint, FaultCounters, FaultInjector, FaultPlan};
pub use lifetime::LifetimeModel;
