//! Per-block cell-lifetime model.
//!
//! Each block holds `cells` one-bit PCM cells (512 for the paper's 64 B
//! blocks). Every cell endures a number of writes drawn i.i.d. from
//! Normal(μ, CoV·μ), truncated below at one write (§IV-A: μ = 10⁸,
//! CoV = 0.2). A write to the block wears all of its cells equally, so the
//! block's *i*-th cell failure happens when the block's write count reaches
//! the *i*-th order statistic of the `cells` lifetimes.
//!
//! Rather than storing 512 lifetimes per block, [`LifetimeModel`]
//! regenerates the order statistics on demand from a per-block deterministic
//! stream (see `wlr_base::stats::order`); the device only persists the next
//! un-crossed threshold. ECP replacement cells are assumed to be no weaker
//! than the surviving original cells — the standard modeling simplification
//! in ECP-style evaluations, which leaves block death at the (k+1)-th order
//! statistic.

use wlr_base::rng::Rng;
use wlr_base::stats::OrderStatistics;

/// Distribution of cell endurance and the per-block threshold generator.
///
/// ```
/// use wlr_pcm::lifetime::LifetimeModel;
/// let model = LifetimeModel::new(10_000.0, 0.2, 512, 99);
/// let t1 = model.threshold(7, 1);
/// let t2 = model.threshold(7, 2);
/// assert!(0 < t1 && t1 < t2, "order statistics must increase");
/// // Deterministic per (seed, block):
/// assert_eq!(t1, LifetimeModel::new(10_000.0, 0.2, 512, 99).threshold(7, 1));
/// ```
#[derive(Debug, Clone)]
pub struct LifetimeModel {
    mean: f64,
    sd: f64,
    cells: u32,
    seed: u64,
}

impl LifetimeModel {
    /// Creates a model with endurance ~ Normal(`mean`, `cov`·`mean`) over
    /// `cells` cells per block, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive, `cov` is negative, or `cells` is 0.
    pub fn new(mean: f64, cov: f64, cells: u32, seed: u64) -> Self {
        assert!(mean > 0.0, "endurance mean must be positive");
        assert!(cov >= 0.0, "endurance CoV must be non-negative");
        assert!(cells > 0, "blocks must contain at least one cell");
        LifetimeModel {
            mean,
            sd: mean * cov,
            cells,
            seed,
        }
    }

    /// The paper's distribution parameters (μ = 10⁸, CoV 0.2, 512 cells).
    pub fn paper_scale(seed: u64) -> Self {
        LifetimeModel::new(1e8, 0.2, 512, seed)
    }

    /// Mean cell endurance in writes.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of cell endurance in writes.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Cells per block.
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// The write count at which block `block`'s `nth` cell fails
    /// (1-based). Regenerated deterministically from `(seed, block)`;
    /// successive `nth` values are non-decreasing.
    ///
    /// This is O(`nth`) — callers ask for small `nth` (at most the ECC
    /// correction cap plus one), and only when a threshold is crossed.
    ///
    /// # Panics
    ///
    /// Panics if `nth` is 0 or exceeds the cell count.
    pub fn threshold(&self, block: u64, nth: u32) -> u64 {
        assert!(nth >= 1, "cell-failure index is 1-based");
        assert!(nth <= self.cells, "a block has only {} cells", self.cells);
        let mut os = OrderStatistics::new(Rng::stream(self.seed, block), self.cells);
        let mut value = 1.0;
        for _ in 0..nth {
            value = os
                .next_normal(self.mean, self.sd, 1.0)
                .expect("nth is bounded by the cell count");
        }
        // Cell fails *at* this write count (ceil keeps thresholds >= 1).
        value.ceil() as u64
    }

    /// Convenience: the write count at which the block dies under an ECC
    /// scheme that corrects `correctable` cells (death at failure
    /// `correctable + 1`).
    pub fn death_threshold(&self, block: u64, correctable: u32) -> u64 {
        self.threshold(block, correctable + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_base::stats::Summary;

    #[test]
    fn thresholds_are_monotone_per_block() {
        let m = LifetimeModel::new(10_000.0, 0.2, 512, 5);
        for block in 0..20 {
            let mut prev = 0;
            for nth in 1..=8 {
                let t = m.threshold(block, nth);
                assert!(t >= prev, "block {block} nth {nth}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn blocks_have_distinct_lifetimes() {
        let m = LifetimeModel::new(10_000.0, 0.2, 512, 5);
        let a = m.threshold(1, 7);
        let b = m.threshold(2, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = LifetimeModel::new(10_000.0, 0.2, 512, 5).threshold(42, 3);
        let b = LifetimeModel::new(10_000.0, 0.2, 512, 5).threshold(42, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_lifetimes() {
        let a = LifetimeModel::new(10_000.0, 0.2, 512, 5).threshold(42, 3);
        let b = LifetimeModel::new(10_000.0, 0.2, 512, 6).threshold(42, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn first_failure_mean_matches_theory() {
        // E[min of n normals] ≈ μ − σ·(√(2·ln n) − (ln ln n + ln 4π)/(2√(2·ln n)) − γ/√(2·ln n))
        // ≈ μ − 3.08σ for n = 512 (extreme-value asymptotics).
        let m = LifetimeModel::new(10_000.0, 0.2, 512, 7);
        let mut s = Summary::new();
        for block in 0..4000 {
            s.push(m.threshold(block, 1) as f64);
        }
        let expect = 10_000.0 - 3.08 * 2_000.0;
        assert!(
            (s.mean() - expect).abs() < 150.0,
            "mean first-failure {} vs expected {expect}",
            s.mean()
        );
    }

    #[test]
    fn ecp6_death_is_much_later_than_first_failure() {
        let m = LifetimeModel::new(10_000.0, 0.2, 512, 9);
        let mut gain = Summary::new();
        for block in 0..1000 {
            let t1 = m.threshold(block, 1) as f64;
            let t7 = m.death_threshold(block, 6) as f64;
            gain.push(t7 - t1);
        }
        assert!(gain.mean() > 500.0, "ECP6 gain too small: {}", gain.mean());
    }

    #[test]
    fn zero_cov_collapses_to_mean() {
        let m = LifetimeModel::new(5_000.0, 0.0, 512, 11);
        for nth in 1..=4 {
            assert_eq!(m.threshold(3, nth), 5_000);
        }
    }

    #[test]
    fn floor_applies_to_pathological_distributions() {
        // Enormous CoV drives early order statistics far negative; they
        // must clamp to one write.
        let m = LifetimeModel::new(10.0, 100.0, 512, 13);
        assert!(m.threshold(0, 1) >= 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zeroth_threshold_panics() {
        LifetimeModel::new(1e4, 0.2, 512, 1).threshold(0, 0);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn threshold_beyond_cells_panics() {
        LifetimeModel::new(1e4, 0.2, 4, 1).threshold(0, 5);
    }
}
