//! `fleet` — Monte Carlo lifetime campaigns over forked futures.
//!
//! Every lifetime number the figure binaries report is a point estimate:
//! one seed, or a handful via `WLR_REPLICATES`. The paper's claim —
//! revive *any* wear-leveling scheme near its fault-free lifetime — is a
//! distributional claim, and this binary measures the distribution: per
//! scheme it warms **one** simulation deep into its wear life, takes a
//! [`Simulation::snapshot`], and forks thousands of divergent futures
//! (workload seeds × fault plans) without ever replaying the warmup.
//! Each future runs to the Figure 5 lifetime point (30% of visible
//! blocks dead) with the integrity oracle on, through any injected power
//! losses (crash → recover → continue).
//!
//! Output: `BENCH_fleet.json` with per-scheme lifetime CDFs (p5 / p50 /
//! p95 / p99), bare-vs-revived lifetime-retention quantiles, crash
//! survival rates, and the measured fan-out speedup versus replaying the
//! warmup per seed (a sampled control; the fork/replay agreement is also
//! asserted). The report follows the shared `wlr_bench::report` baseline
//! discipline: the first run records the baseline, later runs preserve
//! it, and a config change re-baselines.
//!
//! ```text
//! cargo run --release -p wlr-fleet
//! ```
//!
//! Knobs (see EXPERIMENTS.md):
//!
//! ```text
//! WLR_FLEET_SEEDS      futures per scheme [1000]
//! WLR_FLEET_WARMUP     warmup point as a fraction of the calibrated
//!                      lifetime [0.92]
//! WLR_FLEET_PLANS      fault-plan variants cycled across futures, 1-4:
//!                      none / power loss / silent failures / both [4]
//! WLR_FLEET_SCHEMES    comma list of registry stack names
//!                      (`--list-stacks` prints them)
//!                      [sg,reviver-sg,sr,reviver-sr,softwear,
//!                      softwear-wlr,adaptive-sg,adaptive-sg-wlr]
//! WLR_FLEET_BLOCKS     chip size in blocks [1024]
//! WLR_FLEET_ENDURANCE  mean cell endurance [1000]
//! WLR_FLEET_REPLAYS    warmup-replay control runs per scheme [3]
//! WLR_FLEET_ASSERT     1 = exit non-zero on empty CDFs or any oracle
//!                      violation (the CI smoke contract)
//! WLR_BENCH_OUT        report path [BENCH_fleet.json]
//! ```

use std::time::Instant;

use wl_reviver::registry::SchemeRegistry;
use wl_reviver::sim::{SchemeKind, Simulation, StopCondition, StopReason};
use wlr_base::pool::{run_pooled, PooledJob};
use wlr_base::stats::QuantileSet;
use wlr_bench::report::{
    baseline_field, bench_out_path, env_f64, env_u64, load_baseline_with_config, write_report,
};
use wlr_bench::{exp_seed, print_table, scaled_gap_interval};
use wlr_pcm::FaultPlan;
use wlr_trace::UniformWorkload;

/// Futures run to the Figure 5 lifetime point: 30% of the visible blocks
/// dead (or memory exhaustion, whichever comes first).
const STOP: StopCondition = StopCondition::DeadFraction(0.30);

/// Reported CDF probabilities and their JSON field names.
const CDF_QS: [(f64, &str); 4] = [(0.05, "p5"), (0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

/// Forks shipped to the worker pool per batch: snapshots fork on the
/// coordinating thread (the snapshot is not `Sync`), so batching bounds
/// the number of in-flight simulation images.
const BATCH: u64 = 64;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\nsee the doc comment at the top of crates/fleet/src/main.rs");
    std::process::exit(2)
}

/// `(kind, bare counterpart)` for a registry stack name; the bare
/// counterpart feeds the lifetime-retention block when both ran in the
/// campaign.
fn parse_scheme(name: &str) -> (SchemeKind, Option<&'static str>) {
    match SchemeRegistry::global().resolve(name) {
        Ok(spec) => (spec.kind, spec.bare),
        Err(e) => usage(&format!("WLR_FLEET_SCHEMES: {e}")),
    }
}

/// Campaign-wide knobs, all env-overridable.
struct Knobs {
    blocks: u64,
    endurance: f64,
    seeds: u64,
    warmup: f64,
    plans: u64,
    replays: u64,
}

impl Knobs {
    fn from_env() -> Knobs {
        let k = Knobs {
            blocks: env_u64("WLR_FLEET_BLOCKS", 1 << 10),
            endurance: env_f64("WLR_FLEET_ENDURANCE", 1_000.0),
            seeds: env_u64("WLR_FLEET_SEEDS", 1_000).max(1),
            warmup: env_f64("WLR_FLEET_WARMUP", 0.95),
            plans: env_u64("WLR_FLEET_PLANS", 4).clamp(1, 4),
            replays: env_u64("WLR_FLEET_REPLAYS", 3),
        };
        if !(0.0..1.0).contains(&k.warmup) {
            usage("WLR_FLEET_WARMUP must be in [0, 1)");
        }
        k
    }
}

fn sim_for(kind: SchemeKind, k: &Knobs) -> Simulation {
    let psi = scaled_gap_interval(k.blocks, k.endurance);
    Simulation::builder()
        .num_blocks(k.blocks)
        .endurance_mean(k.endurance)
        .gap_interval(psi)
        .sr_refresh_interval(psi)
        .scheme(kind)
        .seed(exp_seed())
        .verify_integrity(true)
        .build()
}

/// The fault plan for future `i`, cycling `variants` shapes from the
/// PR-8 chaos grammar; the bool marks plans that schedule a power loss.
fn plan_for(i: u64, variants: u64) -> (FaultPlan, bool) {
    let seed = exp_seed() ^ (0xF1EE7 + i);
    // Power-loss indices count *device* writes after arming. Late in a
    // bare scheme's life most app writes land on retired (unmapped)
    // pages and never reach the device, so indices much beyond ~10k can
    // fail to fire before exhaustion; 500..8_500 fires reliably across
    // all schemes while still spreading crashes over the future.
    let power_at = 500 + (i * 997) % 8_000;
    match i % variants {
        1 => (FaultPlan::new().power_loss_at_write(power_at), true),
        2 => (
            FaultPlan::new().seeded_silent_failures(seed, 3, 1_000, 50_000),
            false,
        ),
        3 => (
            FaultPlan::new()
                .seeded_silent_failures(seed, 2, 1_000, 50_000)
                .power_loss_at_write(power_at),
            true,
        ),
        _ => (FaultPlan::new(), false),
    }
}

/// One future's terminal facts.
struct FutureResult {
    lifetime: u64,
    violations: u64,
    crashed: bool,
}

/// Diverges a forked (or warmup-replayed) simulation with its own
/// workload stream and fault plan, and runs it to the lifetime point,
/// recovering through any injected power losses.
fn run_future(mut sim: Simulation, seed: u64, plan: FaultPlan) -> FutureResult {
    let len = sim.workload_len();
    sim.replace_workload(Box::new(UniformWorkload::new(len, seed)));
    sim.arm_faults(plan);
    let mut crashed = false;
    while sim.run(STOP).reason == StopReason::PowerLoss {
        crashed = true;
        sim.recover();
    }
    FutureResult {
        lifetime: sim.writes_issued(),
        violations: sim.integrity_errors(),
        crashed,
    }
}

/// One scheme's campaign results.
struct SchemeRow {
    name: String,
    bare: Option<&'static str>,
    lifetimes: QuantileSet,
    crash_futures: u64,
    crash_survived: u64,
    violations: u64,
    fork_secs: f64,
    replay_secs_each: f64,
    speedup: f64,
}

/// Runs one scheme's full campaign: calibrate, warm once, fan out
/// `seeds` forked futures, then time a sampled warmup-replay control.
fn campaign(name: &str, kind: SchemeKind, bare: Option<&'static str>, k: &Knobs) -> SchemeRow {
    let t0 = Instant::now();
    // Calibrate: one run to the lifetime point fixes the warmup target.
    let mut cal = sim_for(kind, k);
    cal.run(STOP);
    let lifetime = cal.writes_issued();
    drop(cal);
    let warm_writes = (lifetime as f64 * k.warmup) as u64;

    // Warm once and snapshot.
    let mut warm = sim_for(kind, k);
    warm.run(StopCondition::Writes(warm_writes));
    let snap = warm.snapshot();
    eprintln!(
        "{name}: calibrated lifetime {lifetime}, warmed to {warm_writes} \
         ({:.0}%), fanning out {} futures …",
        k.warmup * 100.0,
        k.seeds
    );

    // Fan out: fork on this thread, run the batch on the pool.
    let mut lifetimes = QuantileSet::new();
    let mut head = Vec::new(); // per-index lifetimes for the replay check
    let mut crash_futures = 0u64;
    let mut crash_survived = 0u64;
    let mut violations = 0u64;
    let mut done = 0u64;
    while done < k.seeds {
        let n = BATCH.min(k.seeds - done);
        let jobs: Vec<PooledJob<'static, FutureResult>> = (done..done + n)
            .map(|i| {
                let sim = Simulation::fork(&snap);
                let (plan, _) = plan_for(i, k.plans);
                let seed = exp_seed() + 1 + i;
                Box::new(move || run_future(sim, seed, plan)) as PooledJob<'static, FutureResult>
            })
            .collect();
        for r in run_pooled(jobs) {
            if (head.len() as u64) < k.replays {
                head.push(r.lifetime);
            }
            lifetimes.push(r.lifetime as f64);
            violations += r.violations;
            if r.crashed {
                crash_futures += 1;
                if r.violations == 0 {
                    crash_survived += 1;
                }
            }
        }
        done += n;
        eprintln!(
            "  {name}: {done}/{} futures, p50 so far {:.0}",
            k.seeds,
            lifetimes.quantile(0.5)
        );
    }
    let fork_secs = t0.elapsed().as_secs_f64();

    // Control: replay the warmup per seed for a small sample — the cost
    // the fork API removes — and assert the replay reproduces the forked
    // future bit-for-bit (same lifetime).
    let t1 = Instant::now();
    let replays = k.replays.min(k.seeds);
    for i in 0..replays {
        let mut sim = sim_for(kind, k);
        sim.run(StopCondition::Writes(warm_writes));
        let (plan, _) = plan_for(i, k.plans);
        let r = run_future(sim, exp_seed() + 1 + i, plan);
        assert_eq!(
            r.lifetime, head[i as usize],
            "{name}: warmup replay diverged from the forked future (seed {i})"
        );
    }
    let replay_secs_each = if replays > 0 {
        t1.elapsed().as_secs_f64() / replays as f64
    } else {
        0.0
    };
    let speedup = if fork_secs > 0.0 && replays > 0 {
        replay_secs_each * k.seeds as f64 / fork_secs
    } else {
        0.0
    };
    eprintln!(
        "{name}: fork campaign {fork_secs:.2} s, replay control {replay_secs_each:.2} s/future \
         → {speedup:.1}× speedup"
    );

    SchemeRow {
        name: name.to_string(),
        bare,
        lifetimes,
        crash_futures,
        crash_survived,
        violations,
        fork_secs,
        replay_secs_each,
        speedup,
    }
}

fn row_json(row: &SchemeRow, seeds: u64) -> String {
    let mut s = format!("{{\"futures\": {seeds}");
    for (q, field) in CDF_QS {
        s.push_str(&format!(", \"{field}\": {:.0}", row.lifetimes.quantile(q)));
    }
    let survival = if row.crash_futures > 0 {
        row.crash_survived as f64 / row.crash_futures as f64
    } else {
        1.0
    };
    s.push_str(&format!(
        ", \"mean\": {:.0}, \"min\": {:.0}, \"max\": {:.0}, \"crash_futures\": {}, \
         \"crash_survived\": {}, \"crash_survival\": {survival:.4}, \
         \"oracle_violations\": {}, \"speedup\": {:.2}}}",
        row.lifetimes.mean(),
        row.lifetimes.min(),
        row.lifetimes.max(),
        row.crash_futures,
        row.crash_survived,
        row.violations,
        row.speedup,
    ));
    s
}

fn main() {
    wlr_bench::report::handle_list_stacks();
    let k = Knobs::from_env();
    let scheme_list = std::env::var("WLR_FLEET_SCHEMES").unwrap_or_else(|_| {
        "sg,reviver-sg,sr,reviver-sr,softwear,softwear-wlr,adaptive-sg,adaptive-sg-wlr".to_string()
    });
    let schemes: Vec<(String, SchemeKind, Option<&'static str>)> = scheme_list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            let (kind, bare) = parse_scheme(name);
            (name.to_string(), kind, bare)
        })
        .collect();
    if schemes.is_empty() {
        usage("WLR_FLEET_SCHEMES names no schemes");
    }
    println!(
        "Monte Carlo lifetime fleet — {} scheme(s) × {} futures ({} fault-plan variant(s))\n",
        schemes.len(),
        k.seeds,
        k.plans
    );

    let rows: Vec<SchemeRow> = schemes
        .iter()
        .map(|(name, kind, bare)| campaign(name, *kind, *bare, &k))
        .collect();

    // ---- report ---------------------------------------------------------
    let config = format!(
        "{{\"blocks\": {}, \"endurance_mean\": {:.0}, \"warmup_frac\": {}, \"seeds\": {}, \
         \"plans\": {}, \"stop_dead_fraction\": 0.3, \"workload\": \"uniform\", \
         \"schemes\": \"{scheme_list}\", \"seed\": {}}}",
        k.blocks,
        k.endurance,
        k.warmup,
        k.seeds,
        k.plans,
        exp_seed(),
    );
    let current = {
        let mut s = String::from("{");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", row.name, row_json(row, k.seeds)));
        }
        s.push('}');
        s
    };
    // Bare-vs-revived retention: each revived scheme's lifetime quantiles
    // over its bare counterpart's (> 1 means revival extended life).
    let retention = {
        let mut s = String::from("{");
        let mut first = true;
        for row in &rows {
            let Some(bare) = row.bare else { continue };
            let Some(bare_row) = rows.iter().find(|r| r.name == bare) else {
                continue;
            };
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{}\": {{\"bare\": \"{bare}\"", row.name));
            for (q, field) in CDF_QS {
                s.push_str(&format!(
                    ", \"{field}\": {:.3}",
                    row.lifetimes.quantile(q) / bare_row.lifetimes.quantile(q)
                ));
            }
            s.push('}');
        }
        s.push('}');
        s
    };
    let total_fork: f64 = rows.iter().map(|r| r.fork_secs).sum();
    let total_replay_est: f64 = rows
        .iter()
        .map(|r| r.replay_secs_each * k.seeds as f64)
        .sum();
    let overall_speedup = if total_fork > 0.0 {
        total_replay_est / total_fork
    } else {
        0.0
    };
    let speedup_block = format!(
        "{{\"replay_sample_per_scheme\": {}, \"fork_total_secs\": {total_fork:.2}, \
         \"replay_est_total_secs\": {total_replay_est:.2}, \"speedup\": {overall_speedup:.2}}}",
        k.replays.min(k.seeds)
    );

    let out = bench_out_path("BENCH_fleet.json");
    let baseline = load_baseline_with_config(&out, &current, &config);
    let report = format!(
        "{{\n  \"config\": {config},\n  \"baseline\": {},\n  \"current\": {current},\n  \
         \"retention\": {retention},\n  \"speedup\": {speedup_block}\n}}\n",
        baseline.block
    );
    write_report(&out, &report, baseline.is_first);

    // ---- console summary ------------------------------------------------
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let p50 = row.lifetimes.quantile(0.5);
            let vs = baseline_field(&baseline.block, &row.name, "p50")
                .map(|b| format!("{:+.1}%", (p50 / b - 1.0) * 100.0))
                .unwrap_or_else(|| "-".into());
            vec![
                row.name.clone(),
                format!("{}", row.lifetimes.len()),
                format!("{:.0}", row.lifetimes.quantile(0.05)),
                format!("{p50:.0}"),
                format!("{:.0}", row.lifetimes.quantile(0.95)),
                format!("{:.0}", row.lifetimes.quantile(0.99)),
                format!(
                    "{}/{}",
                    row.crash_survived,
                    row.crash_futures.max(row.crash_survived)
                ),
                format!("{}", row.violations),
                format!("{:.1}×", row.speedup),
                vs,
            ]
        })
        .collect();
    print_table(
        "per-scheme lifetime CDFs (writes to 30% dead)",
        &[
            "scheme",
            "futures",
            "p5",
            "p50",
            "p95",
            "p99",
            "crash-surv",
            "oracle",
            "speedup",
            "vs base p50",
        ],
        &table,
    );
    println!("overall fan-out speedup vs replaying warmup per seed: {overall_speedup:.1}×");

    // ---- smoke contract -------------------------------------------------
    if env_u64("WLR_FLEET_ASSERT", 0) == 1 {
        let mut failed = false;
        for row in &rows {
            if row.lifetimes.is_empty() {
                eprintln!("ASSERT: {} produced an empty lifetime CDF", row.name);
                failed = true;
            }
            if row.violations > 0 {
                eprintln!(
                    "ASSERT: {} saw {} integrity-oracle violations",
                    row.name, row.violations
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("fleet-smoke assertions passed: non-empty CDFs, zero oracle violations");
    }
}
