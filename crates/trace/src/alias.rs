//! Walker/Vose alias method: O(1) sampling from a discrete distribution.
//!
//! The CoV-targeted generators sample one of up to 2²⁴ block weights per
//! simulated write; the alias method makes that a single random draw and
//! one table lookup regardless of the distribution's shape.

use wlr_base::rng::Rng;

/// A pre-processed discrete distribution supporting O(1) sampling.
///
/// ```
/// use wlr_base::rng::Rng;
/// use wlr_trace::alias::AliasTable;
///
/// let t = AliasTable::new(&[1.0, 0.0, 3.0]);
/// let mut rng = Rng::seed_from(1);
/// let mut counts = [0u64; 3];
/// for _ in 0..40_000 {
///     counts[t.sample(&mut rng) as usize] += 1;
/// }
/// assert_eq!(counts[1], 0);           // zero weight never drawn
/// assert!(counts[2] > counts[0] * 2); // 3:1 ratio approximately
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability per bucket, scaled to u64 for a branch-cheap
    /// integer comparison in the hot path.
    prob: Vec<u64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table limited to 2^32 buckets"
        );
        let mut total = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight {i} must be finite and non-negative (got {w})"
            );
            total += w;
        }
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        // Scaled weights: mean 1.0.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut prob = vec![0u64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            let si = s as usize;
            let li = l as usize;
            prob[si] = to_fixed(scaled[si]);
            alias[si] = l;
            scaled[li] = (scaled[li] + scaled[si]) - 1.0;
            if scaled[li] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for &l in &large {
            prob[l as usize] = u64::MAX;
        }
        for &s in &small {
            // Leftovers from floating-point drift: accept always.
            prob[s as usize] = u64::MAX;
        }
        AliasTable { prob, alias }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weights.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let i = rng.gen_range(self.prob.len() as u64) as usize;
        if rng.next_u64() <= self.prob[i] {
            i as u64
        } else {
            u64::from(self.alias[i])
        }
    }
}

#[inline]
fn to_fixed(p: f64) -> u64 {
    // Map [0,1] to the full u64 range.
    if p >= 1.0 {
        u64::MAX
    } else if p <= 0.0 {
        0
    } else {
        (p * u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: u64, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = Rng::seed_from(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 16], 160_000, 3);
        for (i, f) in freqs.iter().enumerate() {
            assert!(
                (f - 1.0 / 16.0).abs() < 0.005,
                "bucket {i} frequency {f} too far from 1/16"
            );
        }
    }

    #[test]
    fn skewed_weights_match_expectations() {
        let w = [8.0, 4.0, 2.0, 1.0, 1.0];
        let total: f64 = w.iter().sum();
        let freqs = empirical(&w, 200_000, 5);
        for (i, f) in freqs.iter().enumerate() {
            let expect = w[i] / total;
            assert!(
                (f - expect).abs() < 0.01,
                "bucket {i}: {f} vs expected {expect}"
            );
        }
    }

    #[test]
    fn zero_weights_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 1.0], 50_000, 7);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
    }

    #[test]
    fn single_bucket_always_wins() {
        let freqs = empirical(&[42.0], 1000, 9);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    fn extreme_skew_is_handled() {
        let mut w = vec![1.0; 1024];
        w[7] = 1e9;
        let freqs = empirical(&w, 100_000, 11);
        assert!(freqs[7] > 0.99, "dominant bucket frequency {}", freqs[7]);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0]);
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut a), t.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.1]);
    }
}
