//! The workload interface.

use core::fmt;
use wlr_base::AppAddr;

/// An infinite, deterministic stream of application-block write addresses.
///
/// Workloads are *write* streams because PCM endurance, and therefore the
/// whole evaluation, is driven by writes; reads are modeled at the
/// controller layer where they matter (Table II's access-time metric).
pub trait Workload: fmt::Debug + Send {
    /// Size of the application address space in blocks; all generated
    /// addresses are below this.
    fn len(&self) -> u64;

    /// Whether the address space is empty (never true for valid configs).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces the next block address to write.
    fn next_write(&mut self) -> AppAddr;

    /// Generator label for experiment output.
    fn label(&self) -> String;

    /// Deep copy of the generator's current stream position, for
    /// simulation snapshots. The default returns `None` (the workload
    /// cannot be snapshotted); all shipped generators override it. A
    /// returned copy must produce the identical address stream as the
    /// original from this point on.
    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        None
    }

    /// The exact coefficient of variation of the generator's stationary
    /// per-block write distribution, when known analytically (from its
    /// weight profile). `None` for adaptive/attack workloads.
    fn exact_cov_opt(&self) -> Option<f64> {
        None
    }

    /// Like [`Self::exact_cov_opt`] but panics when unknown.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no analytic CoV.
    fn exact_cov(&self) -> f64 {
        self.exact_cov_opt()
            .expect("workload has no analytic write CoV")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Fixed;

    impl Workload for Fixed {
        fn len(&self) -> u64 {
            1
        }
        fn next_write(&mut self) -> AppAddr {
            AppAddr::new(0)
        }
        fn label(&self) -> String {
            "fixed".into()
        }
    }

    #[test]
    fn default_cov_is_unknown() {
        assert_eq!(Fixed.exact_cov_opt(), None);
    }

    #[test]
    #[should_panic(expected = "no analytic")]
    fn exact_cov_panics_when_unknown() {
        Fixed.exact_cov();
    }
}
