//! Trace recording and replay.
//!
//! The paper drives its simulator from Pin-collected write traces. This
//! module provides the equivalent plumbing for this reproduction: any
//! [`Workload`] can be recorded to a compact binary trace file, and a
//! trace file (from here, or converted from a real Pin run) can be
//! replayed as a workload — so users with access to real traces can drop
//! them in without touching the simulator.
//!
//! # Format (`WLTR` version 1)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic   [u8;4] = "WLTR"
//! version u32    = 1
//! space   u64      address-space size in blocks
//! count   u64      number of write records
//! records count × delta-encoded LEB128 block addresses (see below)
//! ```
//!
//! Addresses are stored zig-zag delta-encoded against the previous
//! address and LEB128-compressed: consecutive or nearby addresses (the
//! common case for real program traces) cost one byte each.

use crate::generator::Workload;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use wlr_base::AppAddr;

const MAGIC: &[u8; 4] = b"WLTR";
const VERSION: u32 = 1;

/// Errors arising from trace-file I/O and validation.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `WLTR` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A record lies outside the declared address space.
    AddressOutOfRange {
        /// Offending address.
        address: u64,
        /// Declared address-space size.
        space: u64,
    },
    /// The file ended before `count` records were read.
    Truncated,
    /// A delta record's varint ran past 64 bits: the bytes are not a
    /// WLTR record stream (corruption, or a different format entirely).
    MalformedVarint,
    /// The trace declares an empty address space or no records.
    Empty,
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a WLTR trace file"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::AddressOutOfRange { address, space } => {
                write!(f, "trace address {address} outside space of {space} blocks")
            }
            TraceFileError::Truncated => write!(f, "trace file ended early"),
            TraceFileError::MalformedVarint => {
                write!(f, "malformed record: varint exceeds 64 bits")
            }
            TraceFileError::Empty => write!(f, "trace has no records or empty space"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        // An EOF mid-read is a short file, not an environment failure:
        // surface it as the typed `Truncated` so callers can distinguish
        // "bad trace" from "bad filesystem".
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFileError::Truncated
        } else {
            TraceFileError::Io(e)
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_leb128(out: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.write_all(&[byte])?;
            return Ok(());
        }
        out.write_all(&[byte | 0x80])?;
    }
}

fn read_leb128(inp: &mut impl Read) -> Result<u64, TraceFileError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        if inp.read(&mut byte)? == 0 {
            return Err(TraceFileError::Truncated);
        }
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(TraceFileError::MalformedVarint);
        }
    }
}

/// Streaming trace writer.
///
/// ```
/// use wlr_trace::file::{TraceReader, TraceWriter};
/// use wlr_base::AppAddr;
/// let dir = std::env::temp_dir().join("wltr-doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("t.wltr");
///
/// let mut w = TraceWriter::create(&path, 1024)?;
/// for a in [5u64, 6, 6, 900] {
///     w.record(AppAddr::new(a))?;
/// }
/// w.finish()?;
///
/// let mut r = TraceReader::open(&path)?;
/// assert_eq!(r.space(), 1024);
/// assert_eq!(r.remaining(), 4);
/// assert_eq!(r.next()?, Some(AppAddr::new(5)));
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    space: u64,
    count: u64,
    prev: i64,
    path: std::path::PathBuf,
}

impl TraceWriter {
    /// Creates (truncating) a trace file for an address space of `space`
    /// blocks.
    ///
    /// # Errors
    ///
    /// I/O errors from file creation.
    pub fn create(path: impl AsRef<Path>, space: u64) -> Result<Self, TraceFileError> {
        let path = path.as_ref().to_path_buf();
        let mut out = BufWriter::new(File::create(&path)?);
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&space.to_le_bytes())?;
        out.write_all(&0u64.to_le_bytes())?; // count backpatched in finish()
        Ok(TraceWriter {
            out,
            space,
            count: 0,
            prev: 0,
            path,
        })
    }

    /// Appends one write record.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::AddressOutOfRange`] or I/O failures.
    pub fn record(&mut self, addr: AppAddr) -> Result<(), TraceFileError> {
        if addr.index() >= self.space {
            return Err(TraceFileError::AddressOutOfRange {
                address: addr.index(),
                space: self.space,
            });
        }
        let delta = addr.index() as i64 - self.prev;
        self.prev = addr.index() as i64;
        write_leb128(&mut self.out, zigzag(delta))?;
        self.count += 1;
        Ok(())
    }

    /// Records `n` writes drawn from `workload`.
    ///
    /// # Errors
    ///
    /// As [`Self::record`].
    pub fn record_from(
        &mut self,
        workload: &mut dyn Workload,
        n: u64,
    ) -> Result<(), TraceFileError> {
        for _ in 0..n {
            self.record(workload.next_write())?;
        }
        Ok(())
    }

    /// Flushes, backpatches the record count, and closes the file.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn finish(mut self) -> Result<(), TraceFileError> {
        self.out.flush()?;
        drop(self.out);
        // Backpatch the count field at offset 16.
        use std::io::{Seek, SeekFrom};
        let mut f = std::fs::OpenOptions::new().write(true).open(&self.path)?;
        f.seek(SeekFrom::Start(16))?;
        f.write_all(&self.count.to_le_bytes())?;
        Ok(())
    }
}

/// Streaming trace reader.
#[derive(Debug)]
pub struct TraceReader {
    inp: BufReader<File>,
    space: u64,
    remaining: u64,
    prev: i64,
}

impl TraceReader {
    /// Opens and validates a trace file's header.
    ///
    /// # Errors
    ///
    /// Header-validation or I/O failures.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let mut inp = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        inp.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let mut buf4 = [0u8; 4];
        inp.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != VERSION {
            return Err(TraceFileError::BadVersion(version));
        }
        let mut buf8 = [0u8; 8];
        inp.read_exact(&mut buf8)?;
        let space = u64::from_le_bytes(buf8);
        inp.read_exact(&mut buf8)?;
        let count = u64::from_le_bytes(buf8);
        if space == 0 || count == 0 {
            return Err(TraceFileError::Empty);
        }
        Ok(TraceReader {
            inp,
            space,
            remaining: count,
            prev: 0,
        })
    }

    /// Declared address-space size in blocks.
    pub fn space(&self) -> u64 {
        self.space
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next record, or `None` at the end.
    ///
    /// # Errors
    ///
    /// Decoding or I/O failures; addresses outside the declared space.
    #[allow(clippy::should_implement_trait)] // fallible streaming next
    pub fn next(&mut self) -> Result<Option<AppAddr>, TraceFileError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let delta = unzigzag(read_leb128(&mut self.inp)?);
        let addr = self.prev.wrapping_add(delta);
        if addr < 0 || addr as u64 >= self.space {
            return Err(TraceFileError::AddressOutOfRange {
                address: addr as u64,
                space: self.space,
            });
        }
        self.prev = addr;
        self.remaining -= 1;
        Ok(Some(AppAddr::new(addr as u64)))
    }
}

/// A [`Workload`] replaying a recorded trace, looping back to the start
/// when exhausted (the paper "assumes each program runs multiple times to
/// produce the required wear-out effect", §IV-A).
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    space: u64,
    records: Vec<u64>,
    cursor: usize,
    laps: u64,
}

impl TraceWorkload {
    /// Loads an entire trace into memory for replay.
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`] from reading the file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let mut reader = TraceReader::open(path)?;
        let mut records = Vec::with_capacity(reader.remaining() as usize);
        while let Some(a) = reader.next()? {
            records.push(a.index());
        }
        Ok(TraceWorkload {
            space: reader.space(),
            records,
            cursor: 0,
            laps: 0,
        })
    }

    /// Builds a replay workload directly from addresses (tests, adapters).
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty or any address is out of range; use
    /// [`Self::try_from_records`] to get the typed error instead.
    pub fn from_records(space: u64, records: Vec<u64>) -> Self {
        match Self::try_from_records(space, records) {
            Ok(w) => w,
            Err(TraceFileError::Empty) => panic!("replay needs at least one record"),
            Err(e) => panic!("record outside the declared space: {e}"),
        }
    }

    /// Fallible variant of [`Self::from_records`]: validates the record
    /// set and returns the same typed errors the file reader produces.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Empty`] for no records or a zero-block space,
    /// [`TraceFileError::AddressOutOfRange`] for a stray address.
    pub fn try_from_records(space: u64, records: Vec<u64>) -> Result<Self, TraceFileError> {
        if space == 0 || records.is_empty() {
            return Err(TraceFileError::Empty);
        }
        if let Some(&address) = records.iter().find(|&&a| a >= space) {
            return Err(TraceFileError::AddressOutOfRange { address, space });
        }
        Ok(TraceWorkload {
            space,
            records,
            cursor: 0,
            laps: 0,
        })
    }

    /// Completed full passes over the trace.
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Number of records in one pass.
    pub fn records_per_lap(&self) -> usize {
        self.records.len()
    }
}

impl Workload for TraceWorkload {
    fn len(&self) -> u64 {
        self.space
    }

    fn next_write(&mut self) -> AppAddr {
        let a = self.records[self.cursor];
        self.cursor += 1;
        if self.cursor == self.records.len() {
            self.cursor = 0;
            self.laps += 1;
        }
        AppAddr::new(a)
    }

    fn label(&self) -> String {
        format!("trace({} records)", self.records.len())
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::ZipfWorkload;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("wltr-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_exact() {
        let path = tmp("round_trip.wltr");
        let addrs = [0u64, 1, 1, 1000, 2, 999, 0, 1023];
        let mut w = TraceWriter::create(&path, 1024).unwrap();
        for &a in &addrs {
            w.record(AppAddr::new(a)).unwrap();
        }
        w.finish().unwrap();

        let mut r = TraceReader::open(&path).unwrap();
        assert_eq!(r.space(), 1024);
        let mut got = Vec::new();
        while let Some(a) = r.next().unwrap() {
            got.push(a.index());
        }
        assert_eq!(got, addrs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recorded_workload_replays_identically() {
        let path = tmp("replay.wltr");
        let mut src = ZipfWorkload::new(512, 1.1, 9);
        let mut w = TraceWriter::create(&path, 512).unwrap();
        w.record_from(&mut src, 5_000).unwrap();
        w.finish().unwrap();

        // Re-generate the same stream and compare against replay.
        let mut src2 = ZipfWorkload::new(512, 1.1, 9);
        let mut replay = TraceWorkload::load(&path).unwrap();
        for i in 0..5_000 {
            assert_eq!(replay.next_write(), src2.next_write(), "record {i}");
        }
        assert_eq!(replay.laps(), 1, "exactly one full pass consumed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_loops_forever() {
        let mut w = TraceWorkload::from_records(16, vec![3, 5, 7]);
        let first_lap: Vec<u64> = (0..3).map(|_| w.next_write().index()).collect();
        let second_lap: Vec<u64> = (0..3).map(|_| w.next_write().index()).collect();
        assert_eq!(first_lap, second_lap);
        assert_eq!(w.laps(), 2);
        assert_eq!(w.records_per_lap(), 3);
    }

    #[test]
    fn compression_is_compact_for_local_traces() {
        let path = tmp("compact.wltr");
        let mut w = TraceWriter::create(&path, 1 << 20).unwrap();
        for i in 0..10_000u64 {
            w.record(AppAddr::new(1000 + i % 64)).unwrap();
        }
        w.finish().unwrap();
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(
            size < 24 + 2 * 10_000,
            "local trace should be ~1 byte/record, got {size} bytes"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_record() {
        let path = tmp("range.wltr");
        let mut w = TraceWriter::create(&path, 16).unwrap();
        let err = w.record(AppAddr::new(16)).unwrap_err();
        assert!(matches!(err, TraceFileError::AddressOutOfRange { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("magic.wltr");
        std::fs::write(&path, b"NOPE00000000000000000000").unwrap();
        assert!(matches!(
            TraceReader::open(&path),
            Err(TraceFileError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = tmp("trunc.wltr");
        let mut w = TraceWriter::create(&path, 64).unwrap();
        for i in 0..100u64 {
            w.record(AppAddr::new(i % 64)).unwrap();
        }
        w.finish().unwrap();
        // Chop the tail off.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        let mut result = Ok(None);
        for _ in 0..100 {
            result = r.next();
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(TraceFileError::Truncated)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_header_as_truncated_not_io() {
        // 10 bytes: magic + version survive, the space field is cut short.
        let path = tmp("short_header.wltr");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 2]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            TraceReader::open(&path),
            Err(TraceFileError::Truncated)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_overlong_varint_as_malformed() {
        // A valid header followed by a record of eleven continuation
        // bytes: a varint that can never terminate within 64 bits.
        let path = tmp("overlong.wltr");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&64u64.to_le_bytes()); // space
        bytes.extend_from_slice(&1u64.to_le_bytes()); // count
        bytes.extend_from_slice(&[0x80u8; 11]);
        std::fs::write(&path, &bytes).unwrap();
        let mut r = TraceReader::open(&path).unwrap();
        assert!(matches!(r.next(), Err(TraceFileError::MalformedVarint)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn try_from_records_returns_typed_errors() {
        assert!(matches!(
            TraceWorkload::try_from_records(4, vec![]),
            Err(TraceFileError::Empty)
        ));
        assert!(matches!(
            TraceWorkload::try_from_records(0, vec![0]),
            Err(TraceFileError::Empty)
        ));
        assert!(matches!(
            TraceWorkload::try_from_records(4, vec![1, 4]),
            Err(TraceFileError::AddressOutOfRange {
                address: 4,
                space: 4
            })
        ));
        let ok = TraceWorkload::try_from_records(4, vec![1, 3]).unwrap();
        assert_eq!(ok.records_per_lap(), 2);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX / 2, i64::MIN / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_records_panic() {
        TraceWorkload::from_records(4, vec![]);
    }
}
