//! The paper's Table I benchmark presets.
//!
//! Each variant reproduces one row of Table I: the benchmark's name, its
//! suite, and its per-block write CoV, which is the property the
//! evaluation keys on. Workloads are built page-clustered (64-block runs)
//! because program heat is page-granular — the reason Start-Gap carries an
//! address randomizer at all.

use crate::cov::{CovTargetedWorkload, SpatialMode};

/// One benchmark from Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// PARSEC option pricing, CoV 8.88.
    Blackscholes,
    /// PARSEC online stream clustering, CoV 11.30.
    Streamcluster,
    /// PARSEC swaption portfolio pricing, CoV 13.17.
    Swaptions,
    /// NPB Multi-Grid, CoV 40.87 — the paper's "highly non-uniform"
    /// representative.
    Mg,
    /// SPLASH-2 fast Fourier transform, CoV 13.87.
    Fft,
    /// SPLASH-2 ocean simulation, CoV 4.15 — the paper's "moderately
    /// non-uniform" representative.
    Ocean,
    /// SPLASH-2 integer radix sort, CoV 5.54.
    Radix,
    /// SPLASH-2 molecular dynamics, CoV 5.44.
    WaterSpatial,
}

impl Benchmark {
    /// All Table I rows, in the paper's order.
    pub fn table1() -> [Benchmark; 8] {
        [
            Benchmark::Blackscholes,
            Benchmark::Streamcluster,
            Benchmark::Swaptions,
            Benchmark::Mg,
            Benchmark::Fft,
            Benchmark::Ocean,
            Benchmark::Radix,
            Benchmark::WaterSpatial,
        ]
    }

    /// The benchmark's name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Mg => "mg",
            Benchmark::Fft => "fft",
            Benchmark::Ocean => "ocean",
            Benchmark::Radix => "radix",
            Benchmark::WaterSpatial => "water-spatial",
        }
    }

    /// The suite the benchmark comes from.
    pub fn suite(self) -> &'static str {
        match self {
            Benchmark::Blackscholes | Benchmark::Streamcluster | Benchmark::Swaptions => "PARSEC",
            Benchmark::Mg => "NPB",
            Benchmark::Fft | Benchmark::Ocean | Benchmark::Radix | Benchmark::WaterSpatial => {
                "SPLASH-2"
            }
        }
    }

    /// The paper's measured write CoV (Table I).
    pub fn write_cov(self) -> f64 {
        match self {
            Benchmark::Blackscholes => 8.88,
            Benchmark::Streamcluster => 11.30,
            Benchmark::Swaptions => 13.17,
            Benchmark::Mg => 40.87,
            Benchmark::Fft => 13.87,
            Benchmark::Ocean => 4.15,
            Benchmark::Radix => 5.54,
            Benchmark::WaterSpatial => 5.44,
        }
    }

    /// The paper's one-line description of the benchmark.
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "Option pricing",
            Benchmark::Streamcluster => "Online clustering of an input stream",
            Benchmark::Swaptions => "Pricing of a portfolio of swaptions",
            Benchmark::Mg => "Multi-Grid on communication",
            Benchmark::Fft => "fast fourier transform",
            Benchmark::Ocean => "large-scale ocean movements",
            Benchmark::Radix => "integer radix sort",
            Benchmark::WaterSpatial => "molecular dynamics N-body problem",
        }
    }

    /// Builds the benchmark's synthetic workload over `app_blocks` blocks.
    pub fn build(self, app_blocks: u64, seed: u64) -> CovTargetedWorkload {
        CovTargetedWorkload::with_label(
            app_blocks,
            self.write_cov(),
            SpatialMode::Clustered { run_blocks: 64 },
            seed,
            self.name().to_string(),
        )
    }
}

impl core::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Workload;

    #[test]
    fn table1_has_eight_rows() {
        assert_eq!(Benchmark::table1().len(), 8);
    }

    #[test]
    fn covs_match_the_paper() {
        let expect = [
            ("blackscholes", "PARSEC", 8.88),
            ("streamcluster", "PARSEC", 11.30),
            ("swaptions", "PARSEC", 13.17),
            ("mg", "NPB", 40.87),
            ("fft", "SPLASH-2", 13.87),
            ("ocean", "SPLASH-2", 4.15),
            ("radix", "SPLASH-2", 5.54),
            ("water-spatial", "SPLASH-2", 5.44),
        ];
        for (b, (name, suite, cov)) in Benchmark::table1().iter().zip(expect) {
            assert_eq!(b.name(), name);
            assert_eq!(b.suite(), suite);
            assert_eq!(b.write_cov(), cov);
        }
    }

    #[test]
    fn built_workloads_achieve_their_cov() {
        for b in Benchmark::table1() {
            let w = b.build(1 << 13, 1);
            let got = w.exact_cov();
            let want = b.write_cov();
            assert!(
                (got - want).abs() / want < 1e-3,
                "{b}: achieved {got} want {want}"
            );
            assert_eq!(w.label(), b.name());
        }
    }

    #[test]
    fn extremes_are_ocean_and_mg() {
        let covs: Vec<f64> = Benchmark::table1().iter().map(|b| b.write_cov()).collect();
        let min = covs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = covs.iter().cloned().fold(0.0, f64::max);
        assert_eq!(min, Benchmark::Ocean.write_cov());
        assert_eq!(max, Benchmark::Mg.write_cov());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Mg.to_string(), "mg");
    }
}
