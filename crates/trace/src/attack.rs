//! Malicious wear-out attack workloads.
//!
//! Start-Gap and Security Refresh were designed against adversaries that
//! "keep writing at the same set of addresses" (paper §II), and the paper
//! names the birthday-paradox attack (Seznec) when arguing WL-Reviver's
//! benefit persists under highly biased writes. These generators model
//! those adversaries.

use crate::generator::Workload;
use wlr_base::rng::Rng;
use wlr_base::AppAddr;

/// The simplest adversary: cycle over a fixed, small set of addresses at
/// full speed.
///
/// ```
/// use wlr_trace::{RepeatAttack, Workload};
/// let mut a = RepeatAttack::new(1024, 4, 1);
/// let first = a.next_write();
/// // With 4 targets the pattern repeats every 4 writes.
/// for _ in 0..3 { a.next_write(); }
/// assert_eq!(a.next_write(), first);
/// ```
#[derive(Debug, Clone)]
pub struct RepeatAttack {
    len: u64,
    targets: Vec<AppAddr>,
    cursor: usize,
}

impl RepeatAttack {
    /// Attacks `set_size` random (seeded) addresses in a `len`-block space.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `set_size` is 0 or exceeds `len`.
    pub fn new(len: u64, set_size: u64, seed: u64) -> Self {
        assert!(len > 0, "workload address space must be nonzero");
        assert!(
            set_size > 0 && set_size <= len,
            "attack set must be within the space"
        );
        let mut rng = Rng::stream(seed, 0xA77);
        let mut chosen = std::collections::HashSet::new();
        let mut targets = Vec::with_capacity(set_size as usize);
        while targets.len() < set_size as usize {
            let a = rng.gen_range(len);
            if chosen.insert(a) {
                targets.push(AppAddr::new(a));
            }
        }
        RepeatAttack {
            len,
            targets,
            cursor: 0,
        }
    }

    /// The attacked addresses.
    pub fn targets(&self) -> &[AppAddr] {
        &self.targets
    }
}

impl Workload for RepeatAttack {
    fn len(&self) -> u64 {
        self.len
    }

    fn next_write(&mut self) -> AppAddr {
        let a = self.targets[self.cursor];
        self.cursor = (self.cursor + 1) % self.targets.len();
        a
    }

    fn label(&self) -> String {
        format!("repeat-attack({})", self.targets.len())
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

/// Birthday-paradox attack (Seznec, CAL'10): instead of hammering one
/// address — which randomized wear leveling spreads — the adversary
/// hammers a modest random set for an epoch, then re-draws the set. Over
/// many epochs, by the birthday paradox, some *device* blocks absorb far
/// more than their share because distinct epochs' sets collide with the
/// slowly-moving mapping.
#[derive(Debug, Clone)]
pub struct BirthdayAttack {
    len: u64,
    set_size: u64,
    epoch_writes: u64,
    written_in_epoch: u64,
    targets: Vec<AppAddr>,
    cursor: usize,
    rng: Rng,
}

impl BirthdayAttack {
    /// Attacks sets of `set_size` addresses, re-drawn every `epoch_writes`
    /// writes.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `set_size` is 0 or exceeds `len`, or
    /// `epoch_writes == 0`.
    pub fn new(len: u64, set_size: u64, epoch_writes: u64, seed: u64) -> Self {
        assert!(len > 0, "workload address space must be nonzero");
        assert!(
            set_size > 0 && set_size <= len,
            "attack set must be within the space"
        );
        assert!(epoch_writes > 0, "epoch must be nonzero");
        let mut attack = BirthdayAttack {
            len,
            set_size,
            epoch_writes,
            written_in_epoch: 0,
            targets: Vec::new(),
            cursor: 0,
            rng: Rng::stream(seed, 0xB1D),
        };
        attack.redraw();
        attack
    }

    fn redraw(&mut self) {
        self.targets.clear();
        let mut chosen = std::collections::HashSet::new();
        while self.targets.len() < self.set_size as usize {
            let a = self.rng.gen_range(self.len);
            if chosen.insert(a) {
                self.targets.push(AppAddr::new(a));
            }
        }
        self.cursor = 0;
        self.written_in_epoch = 0;
    }

    /// The current epoch's target set.
    pub fn targets(&self) -> &[AppAddr] {
        &self.targets
    }
}

impl Workload for BirthdayAttack {
    fn len(&self) -> u64 {
        self.len
    }

    fn next_write(&mut self) -> AppAddr {
        if self.written_in_epoch >= self.epoch_writes {
            self.redraw();
        }
        let a = self.targets[self.cursor];
        self.cursor = (self.cursor + 1) % self.targets.len();
        self.written_in_epoch += 1;
        a
    }

    fn label(&self) -> String {
        format!("birthday-attack({}x{})", self.set_size, self.epoch_writes)
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_attack_cycles_fixed_set() {
        let mut a = RepeatAttack::new(100, 3, 1);
        let targets: Vec<AppAddr> = a.targets().to_vec();
        assert_eq!(targets.len(), 3);
        for round in 0..4 {
            for &t in &targets {
                assert_eq!(a.next_write(), t, "round {round}");
            }
        }
    }

    #[test]
    fn repeat_attack_single_address() {
        let mut a = RepeatAttack::new(100, 1, 2);
        let t = a.next_write();
        for _ in 0..10 {
            assert_eq!(a.next_write(), t);
        }
    }

    #[test]
    fn repeat_attack_targets_distinct() {
        let a = RepeatAttack::new(50, 50, 3);
        let mut set: Vec<u64> = a.targets().iter().map(|t| t.index()).collect();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn birthday_attack_redraws_each_epoch() {
        let mut a = BirthdayAttack::new(10_000, 8, 16, 5);
        let first: Vec<AppAddr> = a.targets().to_vec();
        for _ in 0..16 {
            a.next_write();
        }
        a.next_write(); // first write of the new epoch
        assert_ne!(a.targets(), first.as_slice(), "epoch should redraw");
    }

    #[test]
    fn birthday_attack_concentrates_within_epoch() {
        let mut a = BirthdayAttack::new(10_000, 4, 100, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(a.next_write());
        }
        assert_eq!(seen.len(), 4, "only the 4 targets within an epoch");
    }

    #[test]
    fn attack_labels() {
        assert_eq!(RepeatAttack::new(10, 2, 0).label(), "repeat-attack(2)");
        assert_eq!(
            BirthdayAttack::new(10, 2, 5, 0).label(),
            "birthday-attack(2x5)"
        );
    }

    #[test]
    fn attacks_have_no_analytic_cov() {
        assert_eq!(RepeatAttack::new(10, 2, 0).exact_cov_opt(), None);
        assert_eq!(BirthdayAttack::new(10, 2, 5, 0).exact_cov_opt(), None);
    }

    #[test]
    #[should_panic(expected = "within the space")]
    fn oversized_set_panics() {
        RepeatAttack::new(4, 5, 0);
    }
}
