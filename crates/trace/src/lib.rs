//! Synthetic memory-write workloads.
//!
//! The paper drives its trace-based simulation with write traces of eight
//! programs from PARSEC, NPB and SPLASH-2, collected with Pin and
//! characterized *entirely* by the coefficient of variation (CoV) of their
//! per-block write counts (Table I). Those traces are not distributable,
//! so this crate provides generators that reproduce the property the
//! evaluation actually depends on — the write-count distribution over
//! blocks, pinned to each benchmark's published CoV — plus the adversarial
//! patterns the wear-leveling literature considers (repeated-address and
//! birthday-paradox attacks). See `DESIGN.md` §3.1 for the substitution
//! argument.
//!
//! * [`generator::Workload`] — the trait: an infinite, deterministic
//!   stream of application block addresses to write.
//! * [`cov::CovTargetedWorkload`] — the main generator: a lognormal
//!   quantile weight profile calibrated by search to an exact target CoV,
//!   laid out with page-clustered spatial locality and sampled in O(1)
//!   through a Walker alias table.
//! * [`benchmarks`] — Table I presets (`blackscholes` 8.88 … `mg` 40.87).
//! * [`attack`] — repeated-address and birthday-paradox attackers.
//! * [`mix`] — uniform, Zipf and hot/cold-region reference generators.
//!
//! # Example
//!
//! ```
//! use wlr_trace::benchmarks::Benchmark;
//! use wlr_trace::generator::Workload;
//!
//! let mut w = Benchmark::Mg.build(1 << 12, 7);
//! let addr = w.next_write();
//! assert!(addr.index() < 1 << 12);
//! // The generator's weight profile hits the paper's CoV for mg.
//! let cov = w.exact_cov();
//! assert!((cov - 40.87).abs() < 0.05, "cov = {cov}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod attack;
pub mod benchmarks;
pub mod cov;
pub mod file;
pub mod generator;
pub mod mix;
pub mod shard;
pub mod stats;

pub use alias::AliasTable;
pub use attack::{BirthdayAttack, RepeatAttack};
pub use benchmarks::Benchmark;
pub use cov::{CovTargetedWorkload, SpatialMode};
pub use file::{TraceReader, TraceWorkload, TraceWriter};
pub use generator::Workload;
pub use mix::{HotRegionWorkload, UniformWorkload, ZipfWorkload};
pub use shard::{shard_records, shard_trace, shard_workloads, ShardError};
