//! Empirical workload measurement.
//!
//! The `table1` experiment binary validates that every synthetic
//! benchmark's *sampled* write stream reproduces its target CoV — not just
//! the analytic weight profile — using these helpers.

use crate::generator::Workload;
use wlr_base::stats::Summary;

/// Draws `samples` writes from `workload` and returns the CoV of the
/// resulting per-block write counts.
///
/// ```
/// use wlr_trace::{stats::measure_cov, UniformWorkload};
/// let cov = measure_cov(&mut UniformWorkload::new(64, 1), 64_000);
/// assert!(cov < 0.2, "uniform sampling CoV should be tiny: {cov}");
/// ```
pub fn measure_cov<W: Workload + ?Sized>(workload: &mut W, samples: u64) -> f64 {
    let counts = count_writes(workload, samples);
    let mut s = Summary::new();
    for &c in &counts {
        s.push(c as f64);
    }
    s.cov()
}

/// Draws `samples` writes and returns the per-block count vector.
pub fn count_writes<W: Workload + ?Sized>(workload: &mut W, samples: u64) -> Vec<u64> {
    let mut counts = vec![0u64; usize::try_from(workload.len()).expect("space too large")];
    for _ in 0..samples {
        counts[workload.next_write().as_usize()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::mix::UniformWorkload;

    #[test]
    fn count_totals_match_samples() {
        let counts = count_writes(&mut UniformWorkload::new(32, 1), 10_000);
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn measured_cov_tracks_benchmark_target() {
        // ocean (CoV 4.15) over a small space: sampled CoV approaches the
        // profile CoV as samples grow.
        let mut w = Benchmark::Ocean.build(2048, 3);
        let cov = measure_cov(&mut w, 3_000_000);
        assert!(
            (cov - 4.15).abs() < 0.3,
            "sampled CoV {cov} too far from 4.15"
        );
    }
}
