//! CoV-targeted workload generation.
//!
//! The paper characterizes each benchmark by the CoV of its per-block
//! write counts (Table I). [`CovTargetedWorkload`] reproduces an arbitrary
//! target CoV exactly:
//!
//! 1. Build a *lognormal quantile profile*: weight `wᵢ = exp(σ·zᵢ)` with
//!    `zᵢ = Φ⁻¹((i+½)/n)`. For n blocks this is the deterministic,
//!    noise-free discretization of a LogNormal(0, σ) weight distribution.
//! 2. The profile's CoV is continuous and strictly increasing in σ, so a
//!    bisection on σ pins the empirical CoV to the target within 10⁻⁴
//!    relative error. (The analytic relation CoV² = exp(σ²)−1 holds only
//!    for the untruncated distribution; the bisection absorbs the
//!    finite-n truncation that matters at CoV ≈ 40.)
//! 3. Lay the weights out over the address space with page-granular
//!    spatial clustering ([`SpatialMode::Clustered`]), mimicking programs
//!    whose hot blocks live in hot pages — the locality that address
//!    randomization exists to break — or scattered at random
//!    ([`SpatialMode::Scattered`]).
//! 4. Sample in O(1) via a Walker alias table.

use crate::alias::AliasTable;
use crate::generator::Workload;
use wlr_base::rng::Rng;
use wlr_base::stats::{coefficient_of_variation, normal_inv_cdf};
use wlr_base::AppAddr;

/// How the weight profile is laid out over the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialMode {
    /// Weights assigned to blocks in uniformly random order.
    Scattered,
    /// Weights sorted and grouped into runs of `run_blocks` consecutive
    /// blocks; run order shuffled. Hot blocks therefore cluster into hot
    /// runs (use the page size, 64 blocks, to model hot pages).
    Clustered {
        /// Length of each contiguous run in blocks.
        run_blocks: u64,
    },
}

/// A workload whose stationary per-block write distribution has an exact,
/// configurable coefficient of variation.
///
/// ```
/// use wlr_trace::cov::{CovTargetedWorkload, SpatialMode};
/// use wlr_trace::generator::Workload;
///
/// let mut w = CovTargetedWorkload::new(4096, 11.30, SpatialMode::Scattered, 3);
/// assert!((w.exact_cov() - 11.30).abs() < 0.02);
/// let a = w.next_write();
/// assert!(a.index() < 4096);
/// ```
#[derive(Debug, Clone)]
pub struct CovTargetedWorkload {
    len: u64,
    target_cov: f64,
    achieved_cov: f64,
    sigma: f64,
    table: AliasTable,
    weights: Vec<f64>,
    rng: Rng,
    label: String,
}

impl CovTargetedWorkload {
    /// Builds a generator over `len` blocks hitting `target_cov`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, `target_cov` is negative, or the target is
    /// unreachable for this address-space size (the profile's CoV is
    /// bounded by ≈√(n−1); e.g. a 16-block space cannot reach CoV 40).
    pub fn new(len: u64, target_cov: f64, spatial: SpatialMode, seed: u64) -> Self {
        Self::with_label(
            len,
            target_cov,
            spatial,
            seed,
            format!("cov{target_cov:.2}"),
        )
    }

    /// As [`Self::new`] with an explicit label (used by the Table I
    /// benchmark presets).
    pub fn with_label(
        len: u64,
        target_cov: f64,
        spatial: SpatialMode,
        seed: u64,
        label: String,
    ) -> Self {
        assert!(len > 0, "workload address space must be nonzero");
        assert!(target_cov >= 0.0, "target CoV must be non-negative");
        let max_cov = ((len as f64) - 1.0).sqrt();
        assert!(
            target_cov < max_cov * 0.99,
            "CoV {target_cov} unreachable over {len} blocks (max ≈ {max_cov:.1})"
        );

        let (sigma, profile, achieved) = calibrate_profile(len, target_cov);
        let weights = lay_out(profile, spatial, seed);
        let table = AliasTable::new(&weights);
        CovTargetedWorkload {
            len,
            target_cov,
            achieved_cov: achieved,
            sigma,
            table,
            weights,
            rng: Rng::stream(seed, 0xC0F),
            label,
        }
    }

    /// The requested CoV.
    pub fn target_cov(&self) -> f64 {
        self.target_cov
    }

    /// The calibrated lognormal σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The stationary write probability of each block (normalized
    /// weights), for analysis.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Workload for CovTargetedWorkload {
    fn len(&self) -> u64 {
        self.len
    }

    #[inline]
    fn next_write(&mut self) -> AppAddr {
        AppAddr::new(self.table.sample(&mut self.rng))
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn exact_cov_opt(&self) -> Option<f64> {
        Some(self.achieved_cov)
    }
}

/// Builds the sorted quantile profile for `len` blocks and bisects σ to
/// hit `target_cov`. Returns `(sigma, sorted_weights, achieved_cov)`.
fn calibrate_profile(len: u64, target_cov: f64) -> (f64, Vec<f64>, f64) {
    let n = usize::try_from(len).expect("address space too large for host");
    if target_cov == 0.0 {
        return (0.0, vec![1.0; n], 0.0);
    }
    // Quantile grid is fixed; only σ scales it.
    let z: Vec<f64> = (0..n)
        .map(|i| normal_inv_cdf((i as f64 + 0.5) / n as f64))
        .collect();
    let profile_cov = |sigma: f64| -> f64 {
        let w: Vec<f64> = z.iter().map(|&zi| (sigma * zi).exp()).collect();
        coefficient_of_variation(&w)
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while profile_cov(hi) < target_cov {
        hi *= 2.0;
        assert!(hi < 256.0, "σ search diverged for CoV {target_cov}");
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if profile_cov(mid) < target_cov {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let sigma = 0.5 * (lo + hi);
    let weights: Vec<f64> = z.iter().map(|&zi| (sigma * zi).exp()).collect();
    let achieved = coefficient_of_variation(&weights);
    (sigma, weights, achieved)
}

/// Distributes the ascending-sorted `profile` over the address space.
fn lay_out(profile: Vec<f64>, spatial: SpatialMode, seed: u64) -> Vec<f64> {
    let n = profile.len();
    match spatial {
        SpatialMode::Scattered => {
            let mut order: Vec<u64> = (0..n as u64).collect();
            Rng::stream(seed, 0x5CA7).shuffle(&mut order);
            let mut out = vec![0.0; n];
            for (w, &slot) in profile.into_iter().zip(order.iter()) {
                out[slot as usize] = w;
            }
            out
        }
        SpatialMode::Clustered { run_blocks } => {
            assert!(run_blocks > 0, "cluster run length must be nonzero");
            let run = run_blocks as usize;
            let num_runs = n.div_ceil(run);
            let mut run_order: Vec<u64> = (0..num_runs as u64).collect();
            Rng::stream(seed, 0xC105).shuffle(&mut run_order);
            let mut out = vec![0.0; n];
            let mut src = 0usize;
            for &r in &run_order {
                let base = r as usize * run;
                let end = (base + run).min(n);
                for slot in out.iter_mut().take(end).skip(base) {
                    *slot = profile[src];
                    src += 1;
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_base::stats::Summary;

    #[test]
    fn hits_every_table1_cov() {
        for target in [4.15, 5.44, 5.54, 8.88, 11.30, 13.17, 13.87, 40.87] {
            let w = CovTargetedWorkload::new(1 << 14, target, SpatialMode::Scattered, 1);
            let got = w.exact_cov();
            assert!(
                (got - target).abs() / target < 1e-3,
                "target {target}: achieved {got}"
            );
        }
    }

    #[test]
    fn zero_cov_is_uniform() {
        let w = CovTargetedWorkload::new(256, 0.0, SpatialMode::Scattered, 1);
        assert_eq!(w.exact_cov(), 0.0);
        assert!(w.weights().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn sampling_matches_weights() {
        let mut w = CovTargetedWorkload::new(64, 2.0, SpatialMode::Scattered, 5);
        let total: f64 = w.weights().iter().sum();
        let probs: Vec<f64> = w.weights().iter().map(|x| x / total).collect();
        let mut counts = vec![0u64; 64];
        let draws = 400_000;
        for _ in 0..draws {
            counts[w.next_write().as_usize()] += 1;
        }
        // Compare empirical frequency of the hottest block.
        let hot = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let f = counts[hot] as f64 / draws as f64;
        assert!(
            (f - probs[hot]).abs() / probs[hot] < 0.05,
            "hot block frequency {f} vs {p}",
            p = probs[hot]
        );
    }

    #[test]
    fn clustered_mode_concentrates_hot_pages() {
        let w = CovTargetedWorkload::new(4096, 10.0, SpatialMode::Clustered { run_blocks: 64 }, 7);
        // Per-page total weight should be much more dispersed than under
        // scattering: the hottest page should hold a large share.
        let page_weight =
            |weights: &[f64]| -> Vec<f64> { weights.chunks(64).map(|c| c.iter().sum()).collect() };
        let clustered_pages = page_weight(w.weights());
        let s = CovTargetedWorkload::new(4096, 10.0, SpatialMode::Scattered, 7);
        let scattered_pages = page_weight(s.weights());
        let max_c = clustered_pages.iter().cloned().fold(0.0, f64::max);
        let max_s = scattered_pages.iter().cloned().fold(0.0, f64::max);
        assert!(
            max_c > max_s * 3.0,
            "clustering should concentrate page heat: {max_c} vs {max_s}"
        );
    }

    #[test]
    fn deterministic_stream() {
        let mut a = CovTargetedWorkload::new(256, 5.0, SpatialMode::Scattered, 9);
        let mut b = CovTargetedWorkload::new(256, 5.0, SpatialMode::Scattered, 9);
        for _ in 0..64 {
            assert_eq!(a.next_write(), b.next_write());
        }
    }

    #[test]
    fn seeds_change_layout_not_cov() {
        let a = CovTargetedWorkload::new(1024, 8.0, SpatialMode::Scattered, 1);
        let b = CovTargetedWorkload::new(1024, 8.0, SpatialMode::Scattered, 2);
        assert!((a.exact_cov() - b.exact_cov()).abs() < 1e-9);
        assert_ne!(a.weights()[0], b.weights()[0]);
    }

    #[test]
    fn empirical_count_cov_approaches_target() {
        // The CoV of actual sampled counts converges to the weight CoV.
        let mut w = CovTargetedWorkload::new(512, 3.0, SpatialMode::Scattered, 11);
        let mut counts = vec![0u64; 512];
        for _ in 0..2_000_000 {
            counts[w.next_write().as_usize()] += 1;
        }
        let mut s = Summary::new();
        for &c in &counts {
            s.push(c as f64);
        }
        assert!(
            (s.cov() - 3.0).abs() < 0.15,
            "empirical count CoV {} vs target 3.0",
            s.cov()
        );
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn impossible_cov_panics() {
        CovTargetedWorkload::new(16, 40.0, SpatialMode::Scattered, 1);
    }

    #[test]
    fn addresses_stay_in_range() {
        let mut w = CovTargetedWorkload::new(100, 6.0, SpatialMode::Clustered { run_blocks: 7 }, 3);
        for _ in 0..10_000 {
            assert!(w.next_write().index() < 100);
        }
    }
}
