//! Reference workloads: uniform, Zipf, and hot/cold regions.
//!
//! These are not Table I benchmarks; they exist for unit tests, ablations,
//! and the examples (a Zipf stream is the conventional stand-in for cache
//! write-back traffic).

use crate::alias::AliasTable;
use crate::generator::Workload;
use wlr_base::rng::Rng;
use wlr_base::stats::coefficient_of_variation;
use wlr_base::AppAddr;

/// Uniform writes over the whole space (CoV 0): the best case for any
/// endurance scheme.
///
/// ```
/// use wlr_trace::{UniformWorkload, Workload};
/// let mut w = UniformWorkload::new(128, 3);
/// assert_eq!(w.exact_cov(), 0.0);
/// assert!(w.next_write().index() < 128);
/// ```
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    len: u64,
    rng: Rng,
}

impl UniformWorkload {
    /// Uniform workload over `len` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: u64, seed: u64) -> Self {
        assert!(len > 0, "workload address space must be nonzero");
        UniformWorkload {
            len,
            rng: Rng::stream(seed, 0x0717F),
        }
    }
}

impl Workload for UniformWorkload {
    fn len(&self) -> u64 {
        self.len
    }

    fn next_write(&mut self) -> AppAddr {
        AppAddr::new(self.rng.gen_range(self.len))
    }

    fn label(&self) -> String {
        "uniform".to_string()
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn exact_cov_opt(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// Zipf-distributed writes: block `i` (after a seeded shuffle) receives
/// weight `(i+1)^-s`.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    len: u64,
    exponent: f64,
    cov: f64,
    table: AliasTable,
    order: Vec<u64>,
    rng: Rng,
}

impl ZipfWorkload {
    /// Zipf workload with exponent `s` over `len` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `s` is negative or non-finite.
    pub fn new(len: u64, s: f64, seed: u64) -> Self {
        assert!(len > 0, "workload address space must be nonzero");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite, non-negative"
        );
        let n = usize::try_from(len).expect("space too large");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        let cov = coefficient_of_variation(&weights);
        let mut order: Vec<u64> = (0..len).collect();
        Rng::stream(seed, 0x21FF).shuffle(&mut order);
        ZipfWorkload {
            len,
            exponent: s,
            cov,
            table: AliasTable::new(&weights),
            order,
            rng: Rng::stream(seed, 0x21F0),
        }
    }

    /// The Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl Workload for ZipfWorkload {
    fn len(&self) -> u64 {
        self.len
    }

    fn next_write(&mut self) -> AppAddr {
        let rank = self.table.sample(&mut self.rng);
        AppAddr::new(self.order[rank as usize])
    }

    fn label(&self) -> String {
        format!("zipf(s={})", self.exponent)
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn exact_cov_opt(&self) -> Option<f64> {
        Some(self.cov)
    }
}

/// The classic hot/cold mixture: a `hot_fraction` of writes goes uniformly
/// to a contiguous region covering `hot_space` of the address space, the
/// rest uniformly everywhere.
#[derive(Debug, Clone)]
pub struct HotRegionWorkload {
    len: u64,
    hot_blocks: u64,
    hot_start: u64,
    hot_fraction: f64,
    rng: Rng,
}

impl HotRegionWorkload {
    /// E.g. `hot_fraction = 0.8`, `hot_space = 0.2` is the 80/20 rule.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the fractions are outside `(0, 1]`.
    pub fn new(len: u64, hot_fraction: f64, hot_space: f64, seed: u64) -> Self {
        assert!(len > 0, "workload address space must be nonzero");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction must be in [0,1]"
        );
        assert!(
            hot_space > 0.0 && hot_space <= 1.0,
            "hot space must be in (0,1]"
        );
        let hot_blocks = ((len as f64 * hot_space).ceil() as u64).clamp(1, len);
        let mut rng = Rng::stream(seed, 0x407);
        let hot_start = rng.gen_range(len - hot_blocks + 1);
        HotRegionWorkload {
            len,
            hot_blocks,
            hot_start,
            hot_fraction,
            rng,
        }
    }

    /// The contiguous hot range `[start, start + blocks)`.
    pub fn hot_range(&self) -> (u64, u64) {
        (self.hot_start, self.hot_start + self.hot_blocks)
    }
}

impl Workload for HotRegionWorkload {
    fn len(&self) -> u64 {
        self.len
    }

    fn next_write(&mut self) -> AppAddr {
        if self.rng.gen_bool(self.hot_fraction) {
            AppAddr::new(self.hot_start + self.rng.gen_range(self.hot_blocks))
        } else {
            AppAddr::new(self.rng.gen_range(self.len))
        }
    }

    fn label(&self) -> String {
        format!(
            "hot({:.0}%/{:.0}%)",
            self.hot_fraction * 100.0,
            self.hot_blocks as f64 / self.len as f64 * 100.0
        )
    }

    fn clone_box(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn exact_cov_opt(&self) -> Option<f64> {
        // Two-level distribution: analytic CoV.
        let n = self.len as f64;
        let h = self.hot_blocks as f64;
        let f = self.hot_fraction;
        let p_hot = f / h + (1.0 - f) / n;
        let p_cold = (1.0 - f) / n;
        let mean = 1.0 / n;
        let var = (h * (p_hot - mean).powi(2) + (n - h) * (p_cold - mean).powi(2)) / n;
        Some(var.sqrt() / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut w = UniformWorkload::new(32, 1);
        let mut seen = [false; 32];
        for _ in 0..2000 {
            seen[w.next_write().as_usize()] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform should touch every block");
    }

    #[test]
    fn zipf_orders_by_rank() {
        let mut w = ZipfWorkload::new(64, 1.2, 5);
        let mut counts = vec![0u64; 64];
        for _ in 0..100_000 {
            counts[w.next_write().as_usize()] += 1;
        }
        // The top block should dominate: rank-1 weight share for s=1.2
        // over 64 blocks is ≈ 1/H ≈ 0.27.
        let max = *counts.iter().max().unwrap();
        assert!(max > 20_000, "top block only got {max}");
        assert!(w.exact_cov() > 1.0);
        assert_eq!(w.exponent(), 1.2);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let w = ZipfWorkload::new(64, 0.0, 5);
        assert!(w.exact_cov().abs() < 1e-12);
    }

    #[test]
    fn hot_region_heats_its_range() {
        let mut w = HotRegionWorkload::new(1000, 0.9, 0.1, 7);
        let (lo, hi) = w.hot_range();
        let mut hot_hits = 0u64;
        let total = 50_000;
        for _ in 0..total {
            let a = w.next_write().index();
            assert!(a < 1000);
            if a >= lo && a < hi {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / total as f64;
        // 90% targeted + ~10% of background land inside.
        assert!((frac - 0.91).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn hot_region_analytic_cov_sane() {
        let w = HotRegionWorkload::new(1000, 0.8, 0.2, 7);
        let cov = w.exact_cov();
        // p_hot/p_cold = (0.8/200 + 0.2/1000)/(0.2/1000) = 21 → strong skew.
        assert!(cov > 1.0 && cov < 3.0, "cov {cov}");
    }

    #[test]
    fn labels() {
        assert_eq!(UniformWorkload::new(8, 0).label(), "uniform");
        assert_eq!(ZipfWorkload::new(8, 1.0, 0).label(), "zipf(s=1)");
        assert!(HotRegionWorkload::new(100, 0.8, 0.2, 0)
            .label()
            .starts_with("hot("));
    }
}
