//! Shard-aware trace replay for bank-interleaved memory controllers.
//!
//! A multi-bank front-end (the `wlr-mc` crate) splits one global address
//! space across `N` banks with an [`InterleaveMap`]. A recorded trace (or
//! any in-memory record stream) addresses the *global* space; each bank's
//! simulator only understands its *local* space. This module performs the
//! split: it routes every global record to its owning bank, translates it
//! to the bank-local address, and hands back either the raw per-bank
//! record vectors or ready-to-run [`TraceWorkload`] replays.
//!
//! The split is a pure function of the record stream and the interleave
//! map — independent of how banks later execute — which is what makes
//! parallel multi-bank runs bit-identical to their sequential reference.

use crate::file::{TraceFileError, TraceReader, TraceWorkload};
use std::path::Path;
use wlr_base::interleave::{InterleaveError, InterleaveMap};

/// Errors from sharding a global record stream across banks.
#[derive(Debug)]
pub enum ShardError {
    /// The interleave map rejected the address-space size.
    Interleave(InterleaveError),
    /// Reading or validating the underlying trace failed.
    Trace(TraceFileError),
    /// A record lies outside the declared global space.
    AddressOutOfRange {
        /// Offending global address.
        address: u64,
        /// Declared global address-space size.
        space: u64,
    },
    /// A bank received no records, so it cannot replay anything.
    EmptyBank {
        /// Bank index with an empty shard.
        bank: u64,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Interleave(e) => write!(f, "shard interleave error: {e}"),
            ShardError::Trace(e) => write!(f, "shard trace error: {e}"),
            ShardError::AddressOutOfRange { address, space } => {
                write!(f, "record {address} outside global space of {space} blocks")
            }
            ShardError::EmptyBank { bank } => {
                write!(f, "bank {bank} received no records")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Interleave(e) => Some(e),
            ShardError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InterleaveError> for ShardError {
    fn from(e: InterleaveError) -> Self {
        ShardError::Interleave(e)
    }
}

impl From<TraceFileError> for ShardError {
    fn from(e: TraceFileError) -> Self {
        ShardError::Trace(e)
    }
}

/// Routes each global record to its bank and translates it to the
/// bank-local address. Returns one record vector per bank, in bank
/// order; banks that own no records get an empty vector.
///
/// # Errors
///
/// [`ShardError::AddressOutOfRange`] for a record at or past `space`.
pub fn shard_records(
    space: u64,
    records: &[u64],
    map: &InterleaveMap,
) -> Result<Vec<Vec<u64>>, ShardError> {
    let mut shards = vec![Vec::new(); map.banks() as usize];
    for &address in records {
        if address >= space {
            return Err(ShardError::AddressOutOfRange { address, space });
        }
        let (bank, local) = map.split(address);
        shards[bank as usize].push(local);
    }
    Ok(shards)
}

/// Shards a global record stream into one looping [`TraceWorkload`] per
/// bank, each over the bank-local address space `map.local_space(space)`.
///
/// # Errors
///
/// [`ShardError::EmptyBank`] if any bank received no records (a replay
/// workload must have at least one record to loop over), plus the errors
/// of [`shard_records`] and of the interleave map's space validation.
pub fn shard_workloads(
    space: u64,
    records: &[u64],
    map: &InterleaveMap,
) -> Result<Vec<TraceWorkload>, ShardError> {
    let local_space = map.local_space(space)?;
    let shards = shard_records(space, records, map)?;
    let mut workloads = Vec::with_capacity(shards.len());
    for (bank, shard) in shards.into_iter().enumerate() {
        if shard.is_empty() {
            return Err(ShardError::EmptyBank { bank: bank as u64 });
        }
        workloads.push(TraceWorkload::try_from_records(local_space, shard)?);
    }
    Ok(workloads)
}

/// Loads a WLTR trace file and shards it across `map`'s banks.
///
/// The trace's declared space must match the interleave map's
/// divisibility requirement; records are routed exactly as
/// [`shard_workloads`] does for in-memory streams.
///
/// # Errors
///
/// File-level [`TraceFileError`]s plus the errors of
/// [`shard_workloads`].
pub fn shard_trace(
    path: impl AsRef<Path>,
    map: &InterleaveMap,
) -> Result<Vec<TraceWorkload>, ShardError> {
    let mut reader = TraceReader::open(path)?;
    let space = reader.space();
    let mut records = Vec::with_capacity(reader.remaining() as usize);
    while let Some(a) = reader.next()? {
        records.push(a.index());
    }
    shard_workloads(space, &records, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::TraceWriter;
    use crate::generator::Workload;
    use wlr_base::AppAddr;

    #[test]
    fn sharding_partitions_and_translates() {
        // 4 banks, stripe of 2 blocks, space 32: global g maps to bank
        // (g/2)%4, local (g/2/4)*2 + g%2.
        let map = InterleaveMap::new(4, 2).unwrap();
        let records: Vec<u64> = (0..32).collect();
        let shards = shard_records(32, &records, &map).unwrap();
        assert_eq!(shards.len(), 4);
        for (bank, shard) in shards.iter().enumerate() {
            let bank = bank as u64;
            assert_eq!(shard.len(), 8, "even split");
            for &local in shard {
                assert!(local < 8, "local addr within bank space");
                let global = map.join(bank, local);
                let (b2, l2) = map.split(global);
                assert_eq!((b2, l2), (bank, local));
            }
        }
        // Every record lands in exactly one shard.
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, records.len());
    }

    #[test]
    fn shard_order_preserved_within_bank() {
        let map = InterleaveMap::new(2, 1).unwrap();
        // Bank 0 owns even globals, bank 1 odd globals.
        let records = vec![0u64, 2, 4, 1, 6, 3];
        let shards = shard_records(8, &records, &map).unwrap();
        assert_eq!(shards[0], vec![0, 1, 2, 3]);
        assert_eq!(shards[1], vec![0, 1]);
    }

    #[test]
    fn out_of_range_record_is_typed() {
        let map = InterleaveMap::new(2, 1).unwrap();
        let err = shard_records(8, &[8], &map).unwrap_err();
        assert!(matches!(
            err,
            ShardError::AddressOutOfRange {
                address: 8,
                space: 8
            }
        ));
    }

    #[test]
    fn empty_bank_is_typed() {
        let map = InterleaveMap::new(2, 1).unwrap();
        // Only even globals: bank 1 starves.
        let err = shard_workloads(8, &[0, 2, 4], &map).unwrap_err();
        assert!(matches!(err, ShardError::EmptyBank { bank: 1 }));
    }

    #[test]
    fn shard_trace_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("wltr-shard-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.wltr");
        let mut w = TraceWriter::create(&path, 16).unwrap();
        for a in [0u64, 1, 2, 3, 8, 9, 15, 7] {
            w.record(AppAddr::new(a)).unwrap();
        }
        w.finish().unwrap();

        let map = InterleaveMap::new(2, 2).unwrap();
        let mut workloads = shard_trace(&path, &map).unwrap();
        assert_eq!(workloads.len(), 2);
        assert_eq!(workloads[0].len(), 8, "local space is half the global");
        // Bank 0 owns stripes {0,2,4,6} → globals 0,1,8,9 (as locals 0,1,4,5).
        let got: Vec<u64> = (0..workloads[0].records_per_lap())
            .map(|_| workloads[0].next_write().index())
            .collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
        std::fs::remove_file(&path).ok();
    }
}
