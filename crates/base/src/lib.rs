//! Foundation types for the WL-Reviver PCM simulation stack.
//!
//! This crate hosts everything the higher layers share and that must be
//! bit-for-bit deterministic across runs:
//!
//! * [`addr`] — newtypes for the three address spaces the paper
//!   distinguishes: application addresses, software-visible *physical
//!   addresses* (PA), and device addresses (DA), plus OS page identifiers.
//! * [`geometry`] — the chip/page/block geometry every component agrees on.
//! * [`rng`] — a small, seed-stable pseudo-random number generator
//!   (SplitMix64 for stream derivation, Xoshiro256** for bulk generation).
//!   We deliberately do not depend on external RNG crates: experiment
//!   reproducibility depends on the exact generator, and owning it keeps
//!   every figure regenerable forever.
//! * [`interleave`] — the bank-interleaved address split used by the
//!   multi-bank memory-controller front-end (`wlr-mc`): global block
//!   address ↔ `(bank, local address)`, at cache-line or page striping.
//! * [`pool`] — the shared work-stealing worker pool (scoped threads, so
//!   jobs may borrow; results in input order) used by the experiment
//!   harness and the front-end's parallel bank stepping.
//! * [`spsc`] — bounded lock-free single-producer/single-consumer rings,
//!   the transport between the front-end and its pinned per-bank drain
//!   workers.
//! * [`stats`] — the special functions the PCM lifetime model needs
//!   (inverse normal CDF, successive uniform order statistics) and summary
//!   statistics (mean/CoV/percentiles) used by the workload generators and
//!   the experiment harness.
//!
//! # Example
//!
//! ```
//! use wlr_base::geometry::Geometry;
//! use wlr_base::rng::Rng;
//!
//! let geo = Geometry::builder().num_blocks(1 << 16).build()?;
//! assert_eq!(geo.blocks_per_page(), 64);
//!
//! let mut rng = Rng::seed_from(42);
//! let x = rng.next_u64();
//! let y = Rng::seed_from(42).next_u64();
//! assert_eq!(x, y); // seed-stable
//! # Ok::<(), wlr_base::geometry::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod dense;
pub mod geometry;
pub mod interleave;
pub mod pool;
pub mod rng;
pub mod spsc;
pub mod stats;

pub use addr::{AppAddr, Da, Pa, PageId};
pub use geometry::Geometry;
pub use interleave::{Interleave, InterleaveMap};
pub use pool::{run_pooled, PooledJob};
pub use rng::Rng;
