//! The shared work-stealing worker pool.
//!
//! One pool implementation serves both consumers: the experiment harness
//! (whole curve runs as `'static` jobs) and the multi-bank memory
//! controller, whose drain phases lend the workers `&mut` borrows of the
//! banks — hence the lifetime parameter on [`PooledJob`]. Workers claim
//! jobs by atomic index, so a mix of long and short jobs keeps every
//! core busy instead of pinning one thread per job; results come back in
//! input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pooled unit of work producing a `T`. The lifetime bounds whatever
/// the job borrows; `'static` for fully-owned jobs.
pub type PooledJob<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Runs `jobs` on a pool of worker threads and returns the results in
/// input order.
///
/// The pool is capped at the machine's available parallelism (and at the
/// job count). Jobs may borrow state outside the call (the pool uses
/// scoped threads), which is how the memory-controller front-end steps
/// its banks in place.
pub fn run_pooled<'a, T: Send>(jobs: Vec<PooledJob<'a, T>>) -> Vec<T> {
    let n = jobs.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1);
    if threads == 1 {
        // Single worker: run inline and skip the scope/spawn round trip
        // (results are identical — one worker claims jobs in order).
        return jobs.into_iter().map(|job| job()).collect();
    }
    let queue: Vec<Mutex<Option<PooledJob<'a, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = queue[i]
                    .lock()
                    .expect("no panics hold the lock")
                    .take()
                    .expect("each job is claimed once");
                let out = job();
                *results[i].lock().expect("no panics hold the lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("threads joined")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_jobs_than_threads_all_run_in_order() {
        let jobs: Vec<PooledJob<u64>> = (0..64u64)
            .map(|i| Box::new(move || i * i) as PooledJob<u64>)
            .collect();
        let out = run_pooled(jobs);
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_borrow_mutably_from_the_caller() {
        // The pattern mc uses: each job owns a disjoint `&mut` into a
        // caller-held Vec and mutates it in place.
        let mut cells = vec![0u64; 16];
        let jobs: Vec<PooledJob<usize>> = cells
            .iter_mut()
            .enumerate()
            .map(|(i, c)| {
                Box::new(move || {
                    *c = i as u64 + 100;
                    i
                }) as PooledJob<usize>
            })
            .collect();
        let ids = run_pooled(jobs);
        assert_eq!(ids, (0..16).collect::<Vec<_>>());
        assert_eq!(cells, (100..116).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u8> = run_pooled(Vec::new());
        assert!(out.is_empty());
    }
}
