//! Dense, fixed-capacity index tables for the write hot path.
//!
//! Every failure-era table in the controllers — failed-block pointers,
//! inverse pointers, FREE-p/LLS links, the simulator's integrity oracle —
//! is keyed by a block index bounded by the device size, which is known
//! at construction. A `HashMap<u64, _>` pays hashing and probing on every
//! access to what is really an array index. [`DenseMap`] and [`DenseSet`]
//! replace those tables with a flat slot array plus a presence bitset:
//! O(1) unhashed lookups, and ascending-key iteration that is
//! deterministic across runs (a `HashMap`'s order is not).
//!
//! Memory is `capacity × size_of::<V>()` plus one bit per key, paid up
//! front — the right trade at the simulator's scaled geometries (a 2¹⁶
//! block device costs 512 KiB per `u64`-valued table).

use core::fmt;

const WORD_BITS: usize = 64;

/// A map from `u64` keys in `[0, capacity)` to values, backed by a flat
/// slot array and a presence bitset.
///
/// ```
/// use wlr_base::dense::DenseMap;
/// let mut m: DenseMap<u64> = DenseMap::with_capacity(128);
/// assert_eq!(m.insert(7, 700), None);
/// assert_eq!(m.insert(7, 701), Some(700));
/// assert_eq!(m.get(7), Some(&701));
/// assert_eq!(m.remove(7), Some(701));
/// assert!(m.is_empty());
/// ```
#[derive(Clone)]
pub struct DenseMap<V> {
    slots: Vec<V>,
    present: Vec<u64>,
    len: usize,
}

impl<V: Copy + Default> DenseMap<V> {
    /// An empty map accepting keys in `[0, capacity)`.
    pub fn with_capacity(capacity: u64) -> Self {
        let cap = usize::try_from(capacity).expect("capacity exceeds address space");
        DenseMap {
            slots: vec![V::default(); cap],
            present: vec![0u64; cap.div_ceil(WORD_BITS)],
            len: 0,
        }
    }

    /// Key capacity (exclusive upper bound on keys).
    pub fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bit(&self, k: u64) -> (usize, u64) {
        let k = k as usize;
        debug_assert!(k < self.slots.len(), "key {k} outside dense capacity");
        (k / WORD_BITS, 1u64 << (k % WORD_BITS))
    }

    /// Whether `k` is present.
    ///
    /// # Panics
    ///
    /// Panics (all accessors do) if `k >= capacity`.
    #[inline]
    pub fn contains_key(&self, k: u64) -> bool {
        let (w, m) = self.bit(k);
        self.present[w] & m != 0
    }

    /// The value at `k`, if present.
    #[inline]
    pub fn get(&self, k: u64) -> Option<&V> {
        if self.contains_key(k) {
            Some(&self.slots[k as usize])
        } else {
            None
        }
    }

    /// Inserts `v` at `k`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, k: u64, v: V) -> Option<V> {
        let (w, m) = self.bit(k);
        let old = if self.present[w] & m != 0 {
            Some(self.slots[k as usize])
        } else {
            self.present[w] |= m;
            self.len += 1;
            None
        };
        self.slots[k as usize] = v;
        old
    }

    /// Removes the entry at `k`, returning its value if it was present.
    #[inline]
    pub fn remove(&mut self, k: u64) -> Option<V> {
        let (w, m) = self.bit(k);
        if self.present[w] & m == 0 {
            return None;
        }
        self.present[w] &= !m;
        self.len -= 1;
        Some(self.slots[k as usize])
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        iter_bits(&self.present).map(move |k| (k, &self.slots[k as usize]))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        iter_bits(&self.present)
    }
}

impl<V: Copy + Default> std::ops::Index<u64> for DenseMap<V> {
    type Output = V;

    fn index(&self, k: u64) -> &V {
        self.get(k).expect("key not present in dense map")
    }
}

impl<V: Copy + Default + fmt::Debug> fmt::Debug for DenseMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A set of `u64` keys in `[0, capacity)`, backed by a bitset.
///
/// ```
/// use wlr_base::dense::DenseSet;
/// let mut s = DenseSet::with_capacity(64);
/// assert!(s.insert(9));
/// assert!(!s.insert(9));
/// assert!(s.contains(9));
/// assert!(s.remove(9));
/// assert!(s.is_empty());
/// ```
#[derive(Clone)]
pub struct DenseSet {
    present: Vec<u64>,
    capacity: u64,
    len: usize,
}

impl DenseSet {
    /// An empty set accepting keys in `[0, capacity)`.
    pub fn with_capacity(capacity: u64) -> Self {
        let cap = usize::try_from(capacity).expect("capacity exceeds address space");
        DenseSet {
            present: vec![0u64; cap.div_ceil(WORD_BITS)],
            capacity,
            len: 0,
        }
    }

    /// Key capacity (exclusive upper bound on keys).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bit(&self, k: u64) -> (usize, u64) {
        debug_assert!(k < self.capacity, "key {k} outside dense capacity");
        ((k as usize) / WORD_BITS, 1u64 << (k as usize % WORD_BITS))
    }

    /// Whether `k` is a member.
    ///
    /// # Panics
    ///
    /// Panics (all accessors do) if `k >= capacity`.
    #[inline]
    pub fn contains(&self, k: u64) -> bool {
        let (w, m) = self.bit(k);
        self.present[w] & m != 0
    }

    /// Adds `k`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, k: u64) -> bool {
        let (w, m) = self.bit(k);
        if self.present[w] & m != 0 {
            return false;
        }
        self.present[w] |= m;
        self.len += 1;
        true
    }

    /// Removes `k`; returns whether it was a member.
    #[inline]
    pub fn remove(&mut self, k: u64) -> bool {
        let (w, m) = self.bit(k);
        if self.present[w] & m == 0 {
            return false;
        }
        self.present[w] &= !m;
        self.len -= 1;
        true
    }

    /// Removes every member. One pass over the backing words, so for
    /// small capacities this beats removing members one by one.
    pub fn clear(&mut self) {
        self.present.fill(0);
        self.len = 0;
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        iter_bits(&self.present)
    }
}

impl fmt::Debug for DenseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending indices of the set bits in `words`.
fn iter_bits(words: &[u64]) -> impl Iterator<Item = u64> + '_ {
    words.iter().enumerate().flat_map(|(w, &bits)| {
        let base = (w * WORD_BITS) as u64;
        std::iter::successors(if bits == 0 { None } else { Some(bits) }, |&b| {
            let b = b & (b - 1);
            if b == 0 {
                None
            } else {
                Some(b)
            }
        })
        .map(move |b| base + b.trailing_zeros() as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn set_clear_empties_and_allows_reinsert() {
        let mut s = DenseSet::with_capacity(200);
        for k in [0, 63, 64, 199] {
            assert!(s.insert(k));
        }
        s.clear();
        assert!(s.is_empty());
        for k in [0, 63, 64, 199] {
            assert!(!s.contains(k));
            assert!(s.insert(k), "cleared key is insertable again");
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m: DenseMap<u64> = DenseMap::with_capacity(200);
        assert!(m.is_empty());
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.insert(199, 40), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(3), Some(&30));
        assert_eq!(m.get(4), None);
        assert!(m.contains_key(199));
        assert_eq!(m.insert(3, 31), Some(30));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(3), Some(31));
        assert_eq!(m.remove(3), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m[199], 40);
    }

    #[test]
    fn map_iterates_in_ascending_key_order() {
        let mut m: DenseMap<u64> = DenseMap::with_capacity(1 << 10);
        for k in [512, 3, 64, 65, 1023, 0] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![0, 3, 64, 65, 512, 1023]);
        let pairs: Vec<(u64, u64)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert!(pairs.iter().all(|&(k, v)| v == k * 10));
    }

    #[test]
    fn map_agrees_with_hashmap_under_random_ops() {
        let mut rng = Rng::stream(0xDE5E, 0);
        let cap = 512u64;
        let mut dense: DenseMap<u64> = DenseMap::with_capacity(cap);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(cap);
            match rng.gen_range(3) {
                0 => {
                    let v = rng.next_u64();
                    assert_eq!(dense.insert(k, v), model.insert(k, v));
                }
                1 => assert_eq!(dense.remove(k), model.remove(&k)),
                _ => assert_eq!(dense.get(k), model.get(&k)),
            }
            assert_eq!(dense.len(), model.len());
        }
        let mut expect: Vec<(u64, u64)> = model.into_iter().collect();
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, expect, "iteration must be the sorted entry set");
    }

    #[test]
    fn set_agrees_with_hashset_under_random_ops() {
        let mut rng = Rng::stream(0xDE5E, 1);
        let cap = 300u64;
        let mut dense = DenseSet::with_capacity(cap);
        let mut model: HashSet<u64> = HashSet::new();
        for _ in 0..10_000 {
            let k = rng.gen_range(cap);
            match rng.gen_range(3) {
                0 => assert_eq!(dense.insert(k), model.insert(k)),
                1 => assert_eq!(dense.remove(k), model.remove(&k)),
                _ => assert_eq!(dense.contains(k), model.contains(&k)),
            }
            assert_eq!(dense.len(), model.len());
        }
        let mut expect: Vec<u64> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(dense.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn boundary_keys_work() {
        let mut m: DenseMap<u8> = DenseMap::with_capacity(64);
        m.insert(0, 1);
        m.insert(63, 2);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![0, 63]);
        let mut s = DenseSet::with_capacity(65);
        s.insert(64);
        assert!(s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    #[should_panic(expected = "key not present")]
    fn index_of_absent_key_panics() {
        let m: DenseMap<u64> = DenseMap::with_capacity(8);
        let _ = m[3];
    }
}
