//! Bounded lock-free single-producer/single-consumer ring buffer.
//!
//! The multi-bank front-end (`wlr-mc`) pipes each bank's drained write
//! batches through one of these rings to the bank's pinned drain worker:
//! the producer (front-end) and consumer (worker) never contend on a
//! lock, and steady-state transfers allocate nothing.
//!
//! The implementation is deliberately `unsafe`-free: the slot array is
//! `AtomicU64` cells, so a slot publish is an ordinary atomic store and
//! the Acquire/Release pair on `tail`/`head` provides the cross-thread
//! ordering. Each side keeps a *cached* copy of the other side's index
//! and re-reads the shared atomic only when the cache says the ring
//! looks full (producer) or empty (consumer) — the common case costs one
//! uncontended atomic store plus one atomic slot access per element.
//!
//! Indices increase monotonically and are reduced modulo the (power-of-
//! two) capacity on slot access, so full (`tail − head == cap`) and
//! empty (`tail == head`) are unambiguous without a wasted slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared state behind one SPSC ring.
#[derive(Debug)]
struct Shared {
    /// Value cells; a cell is valid iff its index is in `[head, tail)`.
    slots: Box<[AtomicU64]>,
    /// Consumer position: the next index to pop. Only the consumer
    /// stores; the producer reads with Acquire to learn of freed slots.
    head: AtomicU64,
    /// Producer position: the next index to fill. Only the producer
    /// stores (Release, publishing the slot contents); the consumer
    /// reads with Acquire.
    tail: AtomicU64,
    /// Power-of-two capacity; slot index = position & (cap − 1).
    mask: u64,
}

/// The producing half of a ring; see [`ring`].
#[derive(Debug)]
pub struct Producer {
    shared: Arc<Shared>,
    /// Local copy of `tail` (only this side advances it).
    tail: u64,
    /// Last observed `head`; refreshed only when the ring looks full.
    head_cache: u64,
}

/// The consuming half of a ring; see [`ring`].
#[derive(Debug)]
pub struct Consumer {
    shared: Arc<Shared>,
    /// Local copy of `head` (only this side advances it).
    head: u64,
    /// Last observed `tail`; refreshed only when the ring looks empty.
    tail_cache: u64,
}

/// Creates a bounded SPSC ring holding at most `capacity` `u64` values.
/// The capacity is rounded up to a power of two.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring(capacity: usize) -> (Producer, Consumer) {
    assert!(capacity > 0, "ring capacity must be nonzero");
    let cap = capacity.next_power_of_two() as u64;
    let slots: Box<[AtomicU64]> = (0..cap).map(|_| AtomicU64::new(0)).collect();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicU64::new(0),
        tail: AtomicU64::new(0),
        mask: cap - 1,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl Producer {
    /// The ring's capacity in values.
    pub fn capacity(&self) -> usize {
        (self.shared.mask + 1) as usize
    }

    /// Pushes one value; returns `false` (leaving the ring unchanged)
    /// when the ring is full.
    #[inline]
    pub fn push(&mut self, value: u64) -> bool {
        if self.tail - self.head_cache > self.shared.mask {
            self.head_cache = self.shared.head.load(Ordering::Acquire);
            if self.tail - self.head_cache > self.shared.mask {
                return false;
            }
        }
        let slot = (self.tail & self.shared.mask) as usize;
        self.shared.slots[slot].store(value, Ordering::Relaxed);
        self.tail += 1;
        // Publish: the consumer's Acquire load of `tail` sees the slot.
        self.shared.tail.store(self.tail, Ordering::Release);
        true
    }

    /// Pushes as much of `values` as fits, front first; returns how many
    /// were pushed. One `tail` publish covers the whole run.
    pub fn push_slice(&mut self, values: &[u64]) -> usize {
        self.head_cache = self.shared.head.load(Ordering::Acquire);
        let free = (self.shared.mask + 1) - (self.tail - self.head_cache);
        let n = values.len().min(free as usize);
        for &v in &values[..n] {
            let slot = (self.tail & self.shared.mask) as usize;
            self.shared.slots[slot].store(v, Ordering::Relaxed);
            self.tail += 1;
        }
        if n > 0 {
            self.shared.tail.store(self.tail, Ordering::Release);
        }
        n
    }

    /// Values currently in the ring (from this side's view).
    pub fn len(&self) -> usize {
        (self.tail - self.shared.head.load(Ordering::Acquire)) as usize
    }

    /// Whether the ring currently holds nothing this side knows of.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Consumer {
    /// The ring's capacity in values.
    pub fn capacity(&self) -> usize {
        (self.shared.mask + 1) as usize
    }

    /// Pops the oldest value, or `None` when the ring is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        if self.head == self.tail_cache {
            self.tail_cache = self.shared.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = (self.head & self.shared.mask) as usize;
        let v = self.shared.slots[slot].load(Ordering::Relaxed);
        self.head += 1;
        // Release: the producer's Acquire load of `head` may now reuse
        // the slot.
        self.shared.head.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Appends every currently-visible value to `out`, in FIFO order,
    /// and returns how many were taken. One `head` publish covers the
    /// whole run; `out` is not cleared.
    pub fn pop_into(&mut self, out: &mut Vec<u64>) -> usize {
        self.tail_cache = self.shared.tail.load(Ordering::Acquire);
        let n = (self.tail_cache - self.head) as usize;
        out.reserve(n);
        for _ in 0..n {
            let slot = (self.head & self.shared.mask) as usize;
            out.push(self.shared.slots[slot].load(Ordering::Relaxed));
            self.head += 1;
        }
        if n > 0 {
            self.shared.head.store(self.head, Ordering::Release);
        }
        n
    }

    /// Values currently in the ring (from this side's view).
    pub fn len(&self) -> usize {
        (self.shared.tail.load(Ordering::Acquire) - self.head) as usize
    }

    /// Whether the ring is empty from this side's view.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trips_in_fifo_order() {
        let (mut p, mut c) = ring(8);
        for v in 0..8 {
            assert!(p.push(v));
        }
        assert!(!p.push(99), "ninth push on a full ring must fail");
        for v in 0..8 {
            assert_eq!(c.pop(), Some(v));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn capacity_one_alternates_full_and_empty() {
        let (mut p, mut c) = ring(1);
        assert_eq!(p.capacity(), 1);
        for v in [7u64, 0, 42] {
            assert!(p.push(v));
            assert!(!p.push(v ^ 1), "capacity-1 ring holds exactly one");
            assert_eq!(c.pop(), Some(v));
            assert_eq!(c.pop(), None);
        }
    }

    #[test]
    fn wraparound_preserves_order_across_many_laps() {
        let (mut p, mut c) = ring(4);
        let mut expect = 0u64;
        for v in 0..1_000u64 {
            assert!(p.push(v));
            if v % 3 == 0 {
                // Drain in uneven gulps so head/tail wrap out of phase.
                let mut got = Vec::new();
                c.pop_into(&mut got);
                for g in got {
                    assert_eq!(g, expect);
                    expect += 1;
                }
            }
        }
        while let Some(g) = c.pop() {
            assert_eq!(g, expect);
            expect += 1;
        }
        assert_eq!(expect, 1_000);
    }

    #[test]
    fn push_slice_fills_to_capacity_and_reports_partial() {
        let (mut p, mut c) = ring(4);
        assert_eq!(p.push_slice(&[1, 2, 3, 4, 5, 6]), 4);
        let mut out = Vec::new();
        assert_eq!(c.pop_into(&mut out), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(p.push_slice(&[7]), 1);
        out.clear();
        c.pop_into(&mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn zero_and_max_values_survive_the_sentinel_free_design() {
        let (mut p, mut c) = ring(2);
        assert!(p.push(0));
        assert!(p.push(u64::MAX));
        assert_eq!(c.pop(), Some(0));
        assert_eq!(c.pop(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = ring(0);
    }

    /// Two real threads, seeded schedule perturbation on both sides:
    /// every pushed value must come out exactly once, in order.
    #[test]
    fn two_thread_stress_preserves_fifo() {
        use crate::rng::Rng;
        const N: u64 = 200_000;
        let (mut p, mut c) = ring(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut rng = Rng::seed_from(1);
                let mut v = 0;
                while v < N {
                    if p.push(v) {
                        v += 1;
                    } else if rng.next_u64().is_multiple_of(64) {
                        std::thread::yield_now();
                    }
                }
            });
            s.spawn(move || {
                let mut rng = Rng::seed_from(2);
                let mut expect = 0;
                let mut batch = Vec::new();
                while expect < N {
                    if rng.next_u64().is_multiple_of(2) {
                        if let Some(v) = c.pop() {
                            assert_eq!(v, expect);
                            expect += 1;
                        }
                    } else {
                        batch.clear();
                        c.pop_into(&mut batch);
                        for &v in &batch {
                            assert_eq!(v, expect);
                            expect += 1;
                        }
                    }
                    if rng.next_u64().is_multiple_of(128) {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }
}
