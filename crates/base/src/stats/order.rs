//! Successive order statistics of i.i.d. uniform samples.
//!
//! A 512-cell PCM block protected by ECP-k dies when its (k+1)-th weakest
//! cell dies. Simulating 512 individual cell lifetimes for every one of up
//! to 2²⁴ blocks is wasteful; instead we sample the *order statistics*
//! directly (DESIGN.md §3.4).
//!
//! For `n` i.i.d. U(0,1) variables, the minimum satisfies
//! `U₍₁₎ = 1 − (1−V)^(1/n)` with `V ~ U(0,1)`, and conditional on `U₍ᵢ₎`
//! the next order statistic is
//! `U₍ᵢ₊₁₎ = U₍ᵢ₎ + (1 − U₍ᵢ₎) · (1 − (1−V)^(1/(n−i)))`
//! — the remaining `n−i` samples are uniform on `(U₍ᵢ₎, 1)`. Both forms
//! only need `Beta(1, m)` draws, which have the closed form above, so no
//! general Beta/Gamma sampling is required.
//!
//! Transforming through the inverse normal CDF yields the order statistics
//! of `n` i.i.d. Normal(μ, σ) lifetimes, exactly as if all `n` had been
//! drawn and sorted.

use crate::rng::Rng;
use crate::stats::normal::normal_inv_cdf;

/// Iterator over successive order statistics `U₍₁₎ < U₍₂₎ < …` of `n`
/// i.i.d. uniform samples, seeded deterministically.
///
/// ```
/// use wlr_base::rng::Rng;
/// use wlr_base::stats::OrderStatistics;
///
/// let mut os = OrderStatistics::new(Rng::seed_from(1), 512);
/// let u1 = os.next_uniform().unwrap();
/// let u2 = os.next_uniform().unwrap();
/// assert!(0.0 < u1 && u1 < u2 && u2 < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct OrderStatistics {
    rng: Rng,
    n: u32,
    emitted: u32,
    current: f64,
}

impl OrderStatistics {
    /// Starts the order-statistic stream for `n` i.i.d. uniforms.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(rng: Rng, n: u32) -> Self {
        assert!(n > 0, "order statistics require at least one sample");
        OrderStatistics {
            rng,
            n,
            emitted: 0,
            current: 0.0,
        }
    }

    /// Total number of underlying samples.
    pub fn population(&self) -> u32 {
        self.n
    }

    /// How many order statistics have been emitted so far.
    pub fn emitted(&self) -> u32 {
        self.emitted
    }

    /// Next uniform order statistic, or `None` once all `n` are exhausted.
    pub fn next_uniform(&mut self) -> Option<f64> {
        if self.emitted >= self.n {
            return None;
        }
        let remaining = (self.n - self.emitted) as f64;
        // Beta(1, remaining) draw: minimum of `remaining` uniforms.
        let v = self.rng.gen_open_f64();
        let min_frac = 1.0 - (1.0 - v).powf(1.0 / remaining);
        // Guard against powf rounding producing exactly 0 or pushing us to 1.
        self.current += (1.0 - self.current) * min_frac.clamp(f64::MIN_POSITIVE, 1.0);
        if self.current >= 1.0 {
            self.current = 1.0 - f64::EPSILON;
        }
        self.emitted += 1;
        Some(self.current)
    }

    /// Next order statistic of `n` i.i.d. Normal(μ, σ) samples, clamped to
    /// at least `floor` (cell endurance cannot be negative).
    pub fn next_normal(&mut self, mean: f64, sd: f64, floor: f64) -> Option<f64> {
        self.next_uniform()
            .map(|u| (mean + sd * normal_inv_cdf(u)).max(floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_n_values() {
        let mut os = OrderStatistics::new(Rng::seed_from(3), 5);
        let mut count = 0;
        while os.next_uniform().is_some() {
            count += 1;
        }
        assert_eq!(count, 5);
        assert_eq!(os.next_uniform(), None);
    }

    #[test]
    fn values_are_strictly_increasing_in_unit_interval() {
        let mut os = OrderStatistics::new(Rng::seed_from(7), 512);
        let mut prev = 0.0;
        for _ in 0..512 {
            let u = os.next_uniform().unwrap();
            assert!(u > prev, "order statistics must increase: {u} <= {prev}");
            assert!(u < 1.0);
            prev = u;
        }
    }

    #[test]
    fn minimum_matches_analytical_distribution() {
        // E[U₍₁₎] for n samples is 1/(n+1).
        let n = 512u32;
        let trials = 20_000;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut os = OrderStatistics::new(Rng::stream(11, t), n);
            sum += os.next_uniform().unwrap();
        }
        let mean = sum / trials as f64;
        let expect = 1.0 / (n as f64 + 1.0);
        assert!(
            (mean - expect).abs() < expect * 0.05,
            "E[min] = {mean}, want ≈ {expect}"
        );
    }

    #[test]
    fn kth_statistic_matches_beta_mean() {
        // E[U₍ₖ₎] = k/(n+1). Check k = 7 (ECP6 failure point) for n = 512.
        let n = 512u32;
        let k = 7;
        let trials = 20_000;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut os = OrderStatistics::new(Rng::stream(13, t), n);
            let mut u = 0.0;
            for _ in 0..k {
                u = os.next_uniform().unwrap();
            }
            sum += u;
        }
        let mean = sum / trials as f64;
        let expect = k as f64 / (n as f64 + 1.0);
        assert!(
            (mean - expect).abs() < expect * 0.05,
            "E[U_(7)] = {mean}, want ≈ {expect}"
        );
    }

    #[test]
    fn normal_transform_respects_floor() {
        let mut os = OrderStatistics::new(Rng::seed_from(17), 512);
        // Absurdly negative mean forces the clamp.
        let v = os.next_normal(-1e9, 1.0, 1.0).unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn normal_order_statistics_increase() {
        let mut os = OrderStatistics::new(Rng::seed_from(19), 64);
        let mut prev = f64::NEG_INFINITY;
        while let Some(v) = os.next_normal(1e4, 2e3, 1.0) {
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let seq = |seed| {
            let mut os = OrderStatistics::new(Rng::seed_from(seed), 32);
            (0..32)
                .map(|_| os.next_uniform().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(23), seq(23));
        assert_ne!(seq(23), seq(24));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_population_panics() {
        OrderStatistics::new(Rng::seed_from(1), 0);
    }

    #[test]
    fn matches_brute_force_distribution() {
        // Compare the 3rd order statistic of 16 uniforms against sorting 16
        // raw draws: Kolmogorov–Smirnov-style coarse check on the mean and
        // variance.
        let trials = 30_000;
        let (mut m_fast, mut m_brute) = (0.0, 0.0);
        for t in 0..trials {
            let mut os = OrderStatistics::new(Rng::stream(29, t), 16);
            let mut u = 0.0;
            for _ in 0..3 {
                u = os.next_uniform().unwrap();
            }
            m_fast += u;

            let mut rng = Rng::stream(31, t);
            let mut raw: Vec<f64> = (0..16).map(|_| rng.gen_f64()).collect();
            raw.sort_by(|a, b| a.partial_cmp(b).unwrap());
            m_brute += raw[2];
        }
        let (m_fast, m_brute) = (m_fast / trials as f64, m_brute / trials as f64);
        assert!(
            (m_fast - m_brute).abs() < 0.005,
            "fast {m_fast} vs brute {m_brute}"
        );
    }
}
