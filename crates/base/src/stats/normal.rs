//! Normal-distribution special functions.
//!
//! The cell-lifetime model (paper §IV-A: endurance ~ Normal with mean 10⁸
//! and CoV 0.2) needs the inverse CDF Φ⁻¹ to transform uniform order
//! statistics into lifetime order statistics. We use Peter Acklam's rational
//! approximation (relative error < 1.15 × 10⁻⁹ over the full domain), which
//! is the standard choice when a dependency-free Φ⁻¹ is required.

/// Inverse standard-normal CDF Φ⁻¹(p), Acklam's algorithm.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// use wlr_base::stats::normal_inv_cdf;
/// assert!(normal_inv_cdf(0.5).abs() < 1e-9);
/// assert!((normal_inv_cdf(0.975) - 1.959964).abs() < 1e-5);
/// ```
pub fn normal_inv_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_inv_cdf requires p in (0,1), got {p}"
    );

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard-normal CDF Φ(x), via the Abramowitz–Stegun 7.1.26 erf
/// approximation (absolute error < 1.5 × 10⁻⁷). Used for validation and
/// analytical expectations in tests, not on hot paths.
///
/// ```
/// use wlr_base::stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / core::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_matches_known_quantiles() {
        let cases = [
            (0.5, 0.0),
            (0.841344746, 1.0),
            (0.977249868, 2.0),
            (0.998650102, 3.0),
            (0.158655254, -1.0),
            (0.022750132, -2.0),
            (0.001349898, -3.0),
        ];
        for (p, z) in cases {
            let got = normal_inv_cdf(p);
            assert!((got - z).abs() < 1e-6, "Φ⁻¹({p}) = {got}, want {z}");
        }
    }

    #[test]
    fn inverse_tail_regions() {
        // Acklam's tail branch engages below p = 0.02425.
        assert!((normal_inv_cdf(1e-6) + 4.753424).abs() < 1e-4);
        assert!((normal_inv_cdf(1.0 - 1e-6) - 4.753424).abs() < 1e-4);
    }

    #[test]
    fn inverse_is_monotonic() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let z = normal_inv_cdf(p);
            assert!(z > prev, "not monotonic at p={p}");
            prev = z;
        }
    }

    #[test]
    fn cdf_and_inverse_are_inverses() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let back = normal_cdf(normal_inv_cdf(p));
            assert!((back - p).abs() < 1e-5, "round trip at {p}: {back}");
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn inverse_rejects_zero() {
        normal_inv_cdf(0.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn inverse_rejects_one() {
        normal_inv_cdf(1.0);
    }

    #[test]
    fn cdf_is_symmetric() {
        for x in [0.3, 1.1, 2.7] {
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-7);
        }
    }
}
