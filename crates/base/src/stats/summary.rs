//! Summary statistics: mean, variance, CoV, percentiles, histograms.
//!
//! The paper characterizes workloads by the *coefficient of variation* of
//! per-block write counts (Table I) and characterizes leveling quality by
//! how flat the wear distribution stays. These helpers are used by the
//! trace generators (to validate that a synthetic workload hits its target
//! CoV) and by the experiment harness (to report wear flatness).

/// Arithmetic mean of a sample; 0 for an empty slice.
///
/// ```
/// assert_eq!(wlr_base::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a sample; 0 for fewer than two elements.
///
/// ```
/// assert!((wlr_base::stats::variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Coefficient of variation (σ/μ); 0 when the mean is 0.
///
/// This is the statistic in the paper's Table I ("Write CoV"): larger CoV
/// means a less uniform write distribution and earlier PCM failures.
///
/// ```
/// let cov = wlr_base::stats::coefficient_of_variation(&[10.0, 10.0, 10.0]);
/// assert_eq!(cov, 0.0);
/// ```
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    variance(xs).sqrt() / m
}

/// Linear-interpolated percentile `q ∈ [0, 100]` of an unsorted sample.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 100]`.
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(wlr_base::stats::percentile(&xs, 50.0), 2.5);
/// ```
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile q out of range: {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One-pass summary (count / mean / variance via Welford / min / max).
///
/// ```
/// let mut s = wlr_base::stats::Summary::new();
/// for x in [1.0, 2.0, 3.0] { s.push(x); }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Coefficient of variation (0 when the mean is 0).
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating edge buckets,
/// used to report wear distributions.
///
/// ```
/// let mut h = wlr_base::stats::Histogram::new(0.0, 10.0, 5);
/// h.record(-1.0); // clamps into the first bucket
/// h.record(3.0);
/// h.record(99.0); // clamps into the last bucket
/// assert_eq!(h.counts(), &[1, 1, 0, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram of `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
        }
    }

    /// Records one observation, clamping out-of-range values to the edges.
    pub fn record(&mut self, x: f64) {
        let n = self.counts.len();
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lo, hi)` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bucket index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0, 6.0]) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cov_matches_hand_computation() {
        let xs = [10.0, 20.0, 30.0];
        let m = 20.0;
        let var: f64 = (100.0 + 0.0 + 100.0) / 3.0;
        assert!((coefficient_of_variation(&xs) - var.sqrt() / m).abs() < 1e-12);
    }

    #[test]
    fn cov_zero_mean_is_zero() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
        assert_eq!(percentile(&xs, 10.0), 1.4);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn summary_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean() - mean(&xs)).abs() < 1e-9);
        assert!((s.variance() - variance(&xs)).abs() < 1e-9);
        assert_eq!(s.min(), xs[0]);
        assert_eq!(s.max(), xs[99]);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.push(1.0);
        let b = Summary::new();
        let snapshot = a.clone();
        a.merge(&b);
        assert_eq!(a, snapshot);
        let mut c = Summary::new();
        c.merge(&snapshot);
        assert_eq!(c, snapshot);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.total(), 100);
        assert!(h.counts().iter().all(|&c| c == 10));
        assert_eq!(h.bucket_bounds(0), (0.0, 10.0));
        assert_eq!(h.bucket_bounds(9), (90.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    mod properties {
        use super::*;
        use crate::rng::Rng;

        fn random_vec(rng: &mut Rng, lo: f64, hi: f64, max_len: u64) -> Vec<f64> {
            let len = rng.gen_range(max_len);
            (0..len).map(|_| lo + rng.gen_f64() * (hi - lo)).collect()
        }

        /// Welford accumulation agrees with the batch formulas.
        #[test]
        fn summary_matches_batch_formulas() {
            let mut rng = Rng::stream(0x57A7, 0);
            for _ in 0..32 {
                let xs = random_vec(&mut rng, -1e6, 1e6, 200);
                let mut s = Summary::new();
                for &x in &xs {
                    s.push(x);
                }
                assert!((s.mean() - mean(&xs)).abs() <= 1e-6 * (1.0 + mean(&xs).abs()));
                assert!((s.variance() - variance(&xs)).abs() <= 1e-3 * (1.0 + variance(&xs)));
            }
        }

        /// Merging any split equals sequential accumulation.
        #[test]
        fn merge_equals_sequential() {
            let mut rng = Rng::stream(0x57A7, 1);
            for _ in 0..32 {
                let xs = random_vec(&mut rng, -1e4, 1e4, 100);
                let cut = (rng.gen_range(100) as usize).min(xs.len());
                let mut whole = Summary::new();
                for &x in &xs {
                    whole.push(x);
                }
                let (mut l, mut r) = (Summary::new(), Summary::new());
                for &x in &xs[..cut] {
                    l.push(x);
                }
                for &x in &xs[cut..] {
                    r.push(x);
                }
                l.merge(&r);
                assert_eq!(l.count(), whole.count());
                assert!((l.mean() - whole.mean()).abs() < 1e-6);
                assert!((l.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
            }
        }

        /// Percentiles are monotone in q and bounded by the extremes.
        #[test]
        fn percentile_monotone() {
            let mut rng = Rng::stream(0x57A7, 2);
            for _ in 0..32 {
                let mut xs = random_vec(&mut rng, -1e6, 1e6, 99);
                xs.push(rng.gen_f64()); // at least one element
                let mut prev = f64::NEG_INFINITY;
                for q in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
                    let p = percentile(&xs, q);
                    assert!(p >= prev);
                    prev = p;
                }
                let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(percentile(&xs, 0.0), lo);
                assert_eq!(percentile(&xs, 100.0), hi);
            }
        }

        /// Histograms never lose observations.
        #[test]
        fn histogram_conserves_counts() {
            let mut rng = Rng::stream(0x57A7, 3);
            for _ in 0..32 {
                let xs = random_vec(&mut rng, -100.0, 200.0, 300);
                let buckets = 1 + rng.gen_range(31) as usize;
                let mut h = Histogram::new(0.0, 100.0, buckets);
                for &x in &xs {
                    h.record(x);
                }
                assert_eq!(h.total(), xs.len() as u64);
            }
        }
    }
}
