//! Mergeable histograms shared by the simulation core and the multi-bank
//! front-end.
//!
//! Both crates need the same two aggregates — a per-block wear
//! distribution and a queue-latency distribution — and both need them to
//! merge by plain addition so per-bank images fold into fleet-wide ones.
//! They live here, beneath both crates, so there is exactly one
//! implementation (they were previously duplicated between
//! `wl_reviver::metrics` and `wlr_mc::stats`, which re-export these types
//! for backward compatibility).

/// A mergeable histogram of per-block wear, for folding per-bank wear
/// images into controller-level aggregates without shipping whole
/// snapshots around.
///
/// Counts land in power-of-two buckets (bucket `i` holds wear values
/// with bit-width `i`, i.e. `[2^(i-1), 2^i)`, bucket 0 holds zeros), so
/// two histograms merge by plain addition regardless of their wear
/// ranges. Mean, CoV and max are tracked exactly from running moments;
/// percentiles resolve to the upper bound of the containing bucket
/// (within 2× of the true value, which is what cross-bank imbalance
/// monitoring needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearHistogram {
    /// `buckets[i]` counts blocks whose wear has bit-width `i` (0..=32).
    buckets: [u64; 33],
    blocks: u64,
    sum: u64,
    /// Σ w², for the exact CoV. u128: 2³² blocks × (2³²)² still fits.
    sum_sq: u128,
    max: u32,
}

impl Default for WearHistogram {
    fn default() -> Self {
        WearHistogram {
            buckets: [0; 33],
            blocks: 0,
            sum: 0,
            sum_sq: 0,
            max: 0,
        }
    }
}

impl WearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from a wear snapshot (one write count per
    /// block, typically truncated to the software-visible prefix).
    pub fn from_wear(wear: &[u32]) -> Self {
        let mut h = Self::new();
        for &w in wear {
            h.push(w);
        }
        h
    }

    /// Records one block's wear count.
    pub fn push(&mut self, wear: u32) {
        self.buckets[(32 - wear.leading_zeros()) as usize] += 1;
        self.blocks += 1;
        self.sum += u64::from(wear);
        self.sum_sq += u128::from(wear) * u128::from(wear);
        self.max = self.max.max(wear);
    }

    /// Folds another histogram into this one. The result is identical to
    /// having pushed both histograms' blocks into one.
    pub fn merge(&mut self, other: &WearHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.blocks += other.blocks;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.max = self.max.max(other.max);
    }

    /// Number of blocks recorded.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Whether no blocks have been recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks == 0
    }

    /// Mean wear (exact). 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.sum as f64 / self.blocks as f64
        }
    }

    /// Maximum wear seen (exact).
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Ratio of the maximum wear to the mean (exact; 0 on flat-zero or
    /// empty histograms).
    pub fn max_over_mean(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            f64::from(self.max) / mean
        }
    }

    /// Coefficient of variation of per-block wear (exact, from running
    /// moments; 0 = perfectly flat).
    pub fn cov(&self) -> f64 {
        let mean = self.mean();
        if self.blocks == 0 || mean == 0.0 {
            return 0.0;
        }
        let n = self.blocks as f64;
        let var = (self.sum_sq as f64 / n - mean * mean).max(0.0);
        var.sqrt() / mean
    }

    /// The wear value at quantile `q` in `[0, 1]`, resolved to the upper
    /// bound of its power-of-two bucket (exact for 0; within 2× above).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or the histogram is empty.
    pub fn percentile(&self, q: f64) -> u32 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        assert!(self.blocks > 0, "percentile of an empty histogram");
        // Rank of the q-quantile block, 1-based, ceiling convention.
        let rank = ((q * self.blocks as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 {
                    0
                } else {
                    // Upper bound of bucket i is 2^i − 1, capped at the
                    // exact observed max for the top occupied bucket.
                    (((1u64 << i) - 1) as u32).min(self.max)
                };
            }
        }
        self.max
    }
}

/// Queue-latency ticks below which counts are exact; beyond, latencies
/// land in a single overflow bucket and percentiles report the observed
/// maximum.
const RESOLUTION: usize = 4096;

/// An exact-count latency histogram over queueing delays in ticks.
///
/// Latencies `0..4096` are counted exactly; larger ones share an
/// overflow bucket (with the true maximum tracked separately, so
/// [`Self::percentile`] stays meaningful). Histograms from different
/// banks or runs [`merge`](Self::merge) by plain addition.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; RESOLUTION],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency observation.
    pub fn push(&mut self, latency: u64) {
        match self.counts.get_mut(latency as usize) {
            Some(slot) => *slot += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Adds `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency in ticks.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram.
    pub fn mean(&self) -> f64 {
        assert!(self.total > 0, "mean of an empty latency histogram");
        self.sum as f64 / self.total as f64
    }

    /// Largest latency observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile latency (ceiling rank). Ranks falling in the
    /// overflow bucket report the observed maximum.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram or `q` outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!(self.total > 0, "percentile of an empty latency histogram");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (latency, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return latency as u64;
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

#[cfg(test)]
mod wear_tests {
    use super::*;

    #[test]
    fn moments_are_exact() {
        let h = WearHistogram::from_wear(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(h.blocks(), 8);
        assert_eq!(h.mean(), 3.5);
        assert_eq!(h.max(), 7);
        assert!((h.max_over_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_union() {
        let a_wear: Vec<u32> = (0..500).map(|i| i * 3 % 97).collect();
        let b_wear: Vec<u32> = (0..300).map(|i| 1000 + i).collect();
        let mut merged = WearHistogram::from_wear(&a_wear);
        merged.merge(&WearHistogram::from_wear(&b_wear));

        let mut union: Vec<u32> = a_wear;
        union.extend(&b_wear);
        let direct = WearHistogram::from_wear(&union);
        assert_eq!(merged, direct);
        assert!((merged.cov() - direct.cov()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_bound_the_true_quantile() {
        let wear: Vec<u32> = (1..=1024).collect();
        let h = WearHistogram::from_wear(&wear);
        for q in [0.5f64, 0.9, 0.99] {
            let true_q = wear[((q * 1024.0).ceil() as usize).max(1) - 1];
            let est = h.percentile(q);
            assert!(est >= true_q, "p{q}: {est} < true {true_q}");
            assert!(
                est < true_q.saturating_mul(2).max(2),
                "p{q}: {est} ≥ 2×{true_q}"
            );
        }
        assert_eq!(h.percentile(1.0), 1024);
    }

    #[test]
    fn flat_and_empty_cases() {
        let flat = WearHistogram::from_wear(&[9; 64]);
        assert_eq!(flat.cov(), 0.0);
        assert_eq!(flat.max_over_mean(), 1.0);
        assert_eq!(flat.percentile(0.5), 9); // capped at the observed max

        let zeros = WearHistogram::from_wear(&[0; 8]);
        assert_eq!(zeros.percentile(0.99), 0);
        assert_eq!(zeros.cov(), 0.0);

        let empty = WearHistogram::new();
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_percentile_panics() {
        WearHistogram::new().percentile(0.5);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn percentiles_follow_exact_counts() {
        let mut h = LatencyHistogram::new();
        for lat in 1..=100u64 {
            h.push(lat);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for lat in 0..50u64 {
            a.push(lat);
            whole.push(lat);
        }
        for lat in 50..200u64 {
            b.push(lat * 40); // push some into overflow
            whole.push(lat * 40);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn p999_follows_exact_counts() {
        let mut h = LatencyHistogram::new();
        for lat in 1..=1000u64 {
            h.push(lat);
        }
        assert_eq!(h.p999(), 999);
        h.push(1001);
        assert_eq!(h.p999(), 1000);
    }

    #[test]
    fn overflow_ranks_report_observed_max() {
        let mut h = LatencyHistogram::new();
        h.push(10);
        h.push(1_000_000);
        assert_eq!(h.p99(), 1_000_000);
        assert_eq!(h.p50(), 10);
    }

    #[test]
    #[should_panic(expected = "empty latency histogram")]
    fn empty_percentile_panics() {
        LatencyHistogram::new().percentile(0.5);
    }
}
