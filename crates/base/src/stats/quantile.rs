//! Mergeable exact quantiles and empirical CDFs over full sample sets.
//!
//! The Monte Carlo fleet fans a campaign out over worker threads, each of
//! which accumulates the lifetimes of its own forked futures; the reporter
//! then merges the per-worker sets and reads quantiles off the union.
//! Sample counts are thousands, not billions, so the accumulator keeps
//! every observation and answers *exactly* — no sketch error to reason
//! about when two CDF rows sit close together.
//!
//! # Tie rule
//!
//! [`QuantileSet::quantile`] uses the **nearest-rank** definition:
//! `quantile(q)` is the smallest sample `x` such that at least `⌈q·n⌉` of
//! the `n` samples are `≤ x`. In particular `q = 0` returns the minimum,
//! `q = 1` the maximum, and every returned value is an observed sample
//! (no interpolation), so a quantile of an integer-valued sample is an
//! integer. Duplicates count with multiplicity: over `[1, 2, 2, 3]`,
//! `quantile(0.5)` is `2` (rank `⌈0.5·4⌉ = 2`).

/// Exact, mergeable quantile/CDF accumulator (see module docs for the
/// nearest-rank tie rule).
///
/// ```
/// let mut q = wlr_base::stats::QuantileSet::new();
/// for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
///     q.push(x);
/// }
/// assert_eq!(q.quantile(0.0), 1.0);
/// assert_eq!(q.quantile(0.5), 3.0);
/// assert_eq!(q.quantile(1.0), 5.0);
/// assert_eq!(q.cdf_at(2.5), 0.4); // 2 of 5 samples ≤ 2.5
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSet {
    /// All observations, kept sorted between mutations.
    xs: Vec<f64>,
}

impl QuantileSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        QuantileSet { xs: Vec::new() }
    }

    /// Builds a set from a batch of observations.
    ///
    /// # Panics
    ///
    /// Panics if any observation is NaN.
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut q = QuantileSet::new();
        for &x in xs {
            q.push(x);
        }
        q
    }

    /// Accumulates one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN would poison the sort order and make
    /// every later quantile meaningless).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation pushed into QuantileSet");
        let at = self.xs.partition_point(|&y| y <= x);
        self.xs.insert(at, x);
    }

    /// Merges another set into this one. Merging the per-worker sets of a
    /// partitioned campaign yields exactly the set of the whole campaign,
    /// in any merge order.
    pub fn merge(&mut self, other: &QuantileSet) {
        // Classic sorted-merge; both sides are already ordered.
        let mut merged = Vec::with_capacity(self.xs.len() + other.xs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.xs.len() && j < other.xs.len() {
            if self.xs[i] <= other.xs[j] {
                merged.push(self.xs[i]);
                i += 1;
            } else {
                merged.push(other.xs[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.xs[i..]);
        merged.extend_from_slice(&other.xs[j..]);
        self.xs = merged;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The nearest-rank quantile for `q ∈ [0, 1]`: the smallest sample
    /// `x` with at least `⌈q·n⌉` samples `≤ x` (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.xs.is_empty(), "quantile of empty QuantileSet");
        assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
        let n = self.xs.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.xs[rank - 1]
    }

    /// The empirical CDF at `x`: the fraction of samples `≤ x`.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn cdf_at(&self, x: f64) -> f64 {
        assert!(!self.xs.is_empty(), "cdf_at of empty QuantileSet");
        self.xs.partition_point(|&y| y <= x) as f64 / self.xs.len() as f64
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn min(&self) -> f64 {
        self.quantile(0.0)
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn max(&self) -> f64 {
        self.quantile(1.0)
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.xs.is_empty() {
            0.0
        } else {
            self.xs.iter().sum::<f64>() / self.xs.len() as f64
        }
    }

    /// One `(q, quantile(q))` row per requested probability — the shape
    /// the fleet reporter writes into `BENCH_fleet.json` CDF rows.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or any `q` is outside `[0, 1]`.
    pub fn cdf_rows(&self, qs: &[f64]) -> Vec<(f64, f64)> {
        qs.iter().map(|&q| (q, self.quantile(q))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_tie_rule() {
        // Over [1, 2, 2, 3]: rank(0.5) = ⌈2⌉ = 2 → second sample = 2;
        // rank(0.51) = ⌈2.04⌉ = 3 → third sample = 2 (the duplicate);
        // rank(0.76) = ⌈3.04⌉ = 4 → 3.
        let q = QuantileSet::from_samples(&[3.0, 2.0, 1.0, 2.0]);
        assert_eq!(q.quantile(0.5), 2.0);
        assert_eq!(q.quantile(0.51), 2.0);
        assert_eq!(q.quantile(0.76), 3.0);
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 3.0);
    }

    #[test]
    fn quantiles_are_observed_samples() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        let q = QuantileSet::from_samples(&xs);
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert!(xs.contains(&q.quantile(p)), "q={p} not a sample");
        }
    }

    #[test]
    fn cdf_at_counts_fractions() {
        let q = QuantileSet::from_samples(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(q.cdf_at(0.5), 0.0);
        assert_eq!(q.cdf_at(1.0), 0.25);
        assert_eq!(q.cdf_at(2.0), 0.75);
        assert_eq!(q.cdf_at(99.0), 1.0);
    }

    #[test]
    fn merge_equals_union() {
        let xs: Vec<f64> = (0..97).map(|i| ((i * 7919) % 101) as f64).collect();
        let whole = QuantileSet::from_samples(&xs);
        let mut left = QuantileSet::from_samples(&xs[..40]);
        let right = QuantileSet::from_samples(&xs[40..]);
        left.merge(&right);
        assert_eq!(left, whole);
        for p in [0.0, 0.05, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(left.quantile(p), whole.quantile(p));
        }
    }

    #[test]
    fn merge_order_is_irrelevant() {
        let a = QuantileSet::from_samples(&[5.0, 1.0]);
        let b = QuantileSet::from_samples(&[3.0, 3.0, 2.0]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 5);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = QuantileSet::from_samples(&[1.0, 2.0]);
        let mut left = a.clone();
        left.merge(&QuantileSet::new());
        assert_eq!(left, a);
        let mut empty = QuantileSet::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn cdf_rows_shape() {
        let q = QuantileSet::from_samples(&[4.0, 8.0, 15.0, 16.0, 23.0, 42.0]);
        let rows = q.cdf_rows(&[0.05, 0.5, 0.95, 0.99]);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], (0.05, 4.0));
        assert_eq!(rows[1], (0.5, 15.0));
        assert_eq!(rows[3], (0.99, 42.0));
    }

    #[test]
    fn mean_and_extremes() {
        let q = QuantileSet::from_samples(&[2.0, 4.0, 9.0]);
        assert_eq!(q.min(), 2.0);
        assert_eq!(q.max(), 9.0);
        assert_eq!(q.mean(), 5.0);
        assert_eq!(QuantileSet::new().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn nan_push_panics() {
        QuantileSet::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "empty QuantileSet")]
    fn empty_quantile_panics() {
        QuantileSet::new().quantile(0.5);
    }

    /// Against the textbook definition computed the slow way: the
    /// nearest-rank quantile is the smallest x with cdf_at(x) ≥ q.
    #[test]
    fn quantile_agrees_with_cdf_inverse() {
        let xs: Vec<f64> = (0..250).map(|i| ((i * 31) % 83) as f64).collect();
        let q = QuantileSet::from_samples(&xs);
        for p in [0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let v = q.quantile(p);
            assert!(q.cdf_at(v) >= p);
            // No smaller sample reaches the rank.
            let smaller: Vec<f64> = xs.iter().cloned().filter(|&x| x < v).collect();
            if !smaller.is_empty() {
                let just_below = smaller.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                assert!(q.cdf_at(just_below) < p);
            }
        }
    }
}
