//! Lock-free metrics registry with Prometheus text exposition.
//!
//! The always-on service daemon (`wlr-serve`) scrapes live state out of
//! the pinned bank pipeline, and nothing on the pipeline's hot path may
//! take a lock to publish it. The registry therefore splits into two
//! halves:
//!
//! * **Handles** ([`Counter`], [`Gauge`], [`LogHistogram`]) are `Arc`'d
//!   atomics. Incrementing a counter or recording a histogram sample is
//!   a handful of `Relaxed` atomic adds — safe from pinned workers, the
//!   front-end thread, and the HTTP scrape thread concurrently, with no
//!   lock anywhere.
//! * **The registry** ([`MetricsRegistry`]) owns the name/help metadata
//!   and renders the whole family in [Prometheus text exposition
//!   format]. Registration and rendering are cold paths and use a
//!   `Mutex` internally; the handles never touch it.
//!
//! Counts use `Relaxed` ordering throughout: metrics are monotone
//! aggregates with no cross-variable invariants, so a scrape observing
//! a slightly stale interleaving is correct by construction (the same
//! lag-one philosophy as the pipeline's `BankSync`).
//!
//! [`LogHistogram`] buckets by value bit-width (bucket `i` counts values
//! of bit-width `i`, mirroring [`super::WearHistogram`]'s layout), so
//! per-bank snapshots [`merge`](HistogramSnapshot::merge) by plain
//! addition — associatively and commutatively, which is what makes
//! concurrent per-bank publication order-independent.
//!
//! [Prometheus text exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of bit-width buckets: values are `u64`, so widths 0..=64.
const LOG_BUCKETS: usize = 65;

/// A monotonically increasing counter handle (clone to share).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (clone to share).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (useful in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state behind a [`LogHistogram`] handle.
#[derive(Debug)]
struct LogHistShared {
    /// `buckets[i]` counts recorded values of bit-width `i`.
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log-bucketed histogram handle (clone to share).
///
/// Values land in power-of-two buckets by bit-width, exactly like
/// [`super::WearHistogram`], but behind atomics so pinned workers and
/// the scrape thread can record and read concurrently. Reading is via
/// [`snapshot`](Self::snapshot), which yields a plain, mergeable
/// [`HistogramSnapshot`].
#[derive(Debug, Clone)]
pub struct LogHistogram(Arc<LogHistShared>);

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram not attached to any registry.
    pub fn new() -> Self {
        LogHistogram(Arc::new(LogHistShared {
            buckets: [(); LOG_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        let s = &self.0;
        s.buckets[b].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state. Concurrent
    /// `record`s may straddle the copy (`count`/`sum` can lead or lag a
    /// bucket by a few in-flight samples), which percentile estimation
    /// over power-of-two buckets tolerates by design.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let s = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| s.buckets[i].load(Ordering::Relaxed)),
            count: s.count.load(Ordering::Relaxed),
            sum: s.sum.load(Ordering::Relaxed),
            max: s.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain (non-atomic) copy of a [`LogHistogram`], mergeable by
/// addition: `merge` is associative and commutative, so folding
/// per-bank snapshots together yields the same aggregate in any order
/// or grouping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts values of bit-width `i` (bucket 0 holds
    /// zeros; bucket `i` holds `[2^(i-1), 2^i)`).
    pub buckets: [u64; LOG_BUCKETS],
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; LOG_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `other` into `self` by plain addition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile, resolved to the upper bound of its
    /// power-of-two bucket (exact for 0, within 2× above; ceiling-rank
    /// convention). Returns 0 for an empty snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 {
                    0
                } else {
                    bucket_upper(i).min(self.max)
                };
            }
        }
        self.max
    }
}

/// Inclusive upper bound of bit-width bucket `i` (`2^i − 1`).
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// What kind of metric a registry entry is, for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// One registered metric: metadata plus the shared handle.
#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    kind: MetricKind,
    /// `{key="value"}` label pairs, rendered in registration order.
    labels: Vec<(String, String)>,
    value: EntryValue,
}

#[derive(Debug)]
enum EntryValue {
    Scalar(Arc<AtomicU64>),
    Hist(LogHistogram),
}

/// The metric family registry. See the module docs.
///
/// Clone-free sharing: wrap in an `Arc` and hand clones of the
/// *handles* to producers; the registry itself is only needed where
/// metrics are registered or rendered.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: EntryValue,
    ) {
        assert!(
            is_valid_metric_name(name),
            "invalid metric name `{name}` (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        self.entries.lock().expect("registry poisoned").push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Registers and returns a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter carrying label pairs (e.g. `("bank", "3")`).
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::new();
        self.register(
            name,
            help,
            MetricKind::Counter,
            labels,
            EntryValue::Scalar(Arc::clone(&c.0)),
        );
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge carrying label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let g = Gauge::new();
        self.register(
            name,
            help,
            MetricKind::Gauge,
            labels,
            EntryValue::Scalar(Arc::clone(&g.0)),
        );
        g
    }

    /// Registers and returns a log-bucketed histogram.
    pub fn histogram(&self, name: &str, help: &str) -> LogHistogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers a histogram carrying label pairs.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> LogHistogram {
        let h = LogHistogram::new();
        self.register(
            name,
            help,
            MetricKind::Histogram,
            labels,
            EntryValue::Hist(h.clone()),
        );
        h
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format (version 0.0.4): `# HELP` / `# TYPE` headers, one sample
    /// line per scalar, and cumulative `_bucket{le=...}` series plus
    /// `_sum`/`_count` per histogram.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        for e in entries.iter() {
            let kind = match e.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            writeln!(out, "# HELP {} {}", e.name, e.help).expect("string write");
            writeln!(out, "# TYPE {} {kind}", e.name).expect("string write");
            match &e.value {
                EntryValue::Scalar(v) => {
                    let labels = render_labels(&e.labels, None);
                    writeln!(out, "{}{labels} {}", e.name, v.load(Ordering::Relaxed))
                        .expect("string write");
                }
                EntryValue::Hist(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    // Render every bucket up to the highest occupied one
                    // (so cumulative counts are self-consistent), then
                    // the +Inf catch-all.
                    let top = snap
                        .buckets
                        .iter()
                        .rposition(|&c| c > 0)
                        .map_or(0, |i| i + 1)
                        .min(LOG_BUCKETS);
                    for (i, &c) in snap.buckets.iter().enumerate().take(top) {
                        cum += c;
                        let le = bucket_upper(i).to_string();
                        let labels = render_labels(&e.labels, Some(&le));
                        writeln!(out, "{}_bucket{labels} {cum}", e.name).expect("string write");
                    }
                    let labels = render_labels(&e.labels, Some("+Inf"));
                    writeln!(out, "{}_bucket{labels} {}", e.name, snap.count)
                        .expect("string write");
                    let labels = render_labels(&e.labels, None);
                    writeln!(out, "{}_sum{labels} {}", e.name, snap.sum).expect("string write");
                    writeln!(out, "{}_count{labels} {}", e.name, snap.count).expect("string write");
                }
            }
        }
        out
    }
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Renders `{k="v",...}` (with an optional trailing `le` pair), or
/// nothing when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(k);
        s.push_str("=\"");
        s.push_str(&escape_label(v));
        s.push('"');
    }
    if let Some(le) = le {
        if !first {
            s.push(',');
        }
        s.push_str("le=\"");
        s.push_str(le);
        s.push('"');
    }
    s.push('}');
    s
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One parsed sample line of a text-exposition scrape.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order (values unescaped).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition format back into samples —
/// comment and blank lines are skipped. The round-trip partner of
/// [`MetricsRegistry::render`], used by the scrape tests and the smoke
/// harness; it accepts the subset of the format `render` emits.
///
/// Returns `None` on any malformed sample line.
pub fn parse_exposition(text: &str) -> Option<Vec<Sample>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line.rsplit_once(' ')?;
        let value: f64 = value_part.parse().ok()?;
        let (name, labels) = match name_part.split_once('{') {
            None => (name_part.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}')?;
                let mut labels = Vec::new();
                if !body.is_empty() {
                    for pair in split_label_pairs(body)? {
                        let (k, v) = pair.split_once('=')?;
                        let v = v.strip_prefix('"')?.strip_suffix('"')?;
                        labels.push((k.to_string(), unescape_label(v)));
                    }
                }
                (name.to_string(), labels)
            }
        };
        out.push(Sample {
            name,
            labels,
            value,
        });
    }
    Some(out)
}

/// Splits `k1="v1",k2="v2"` at top-level commas (commas inside quoted
/// values are preserved).
fn split_label_pairs(body: &str) -> Option<Vec<&str>> {
    let mut pairs = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if in_quotes {
        return None;
    }
    pairs.push(&body[start..]);
    Some(pairs)
}

fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("wlr_test_total", "a counter");
        let g = reg.gauge("wlr_test_depth", "a gauge");
        c.inc();
        c.add(4);
        g.set(7);
        g.set(3);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 3);
        let text = reg.render();
        assert!(text.contains("# TYPE wlr_test_total counter"));
        assert!(text.contains("wlr_test_total 5"));
        assert!(text.contains("wlr_test_depth 3"));
    }

    #[test]
    fn histogram_percentiles_bound_true_quantiles() {
        let h = LogHistogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1024);
        assert_eq!(snap.max, 1024);
        for q in [0.5f64, 0.99, 0.999] {
            let true_q = ((q * 1024.0).ceil() as u64).max(1);
            let est = snap.percentile(q);
            assert!(est >= true_q, "p{q}: {est} < {true_q}");
            assert!(est < true_q.saturating_mul(2).max(2), "p{q}: {est} too big");
        }
    }

    #[test]
    fn snapshot_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 5, 1000]);
        let b = mk(&[2, 2, 900_000]);
        let c = mk(&[u64::MAX, 17]);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == (c ⊕ a) ⊕ b
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        let mut ca = c.clone();
        ca.merge(&a);
        ca.merge(&b);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, ca);
    }

    #[test]
    fn labeled_series_render_and_parse() {
        let reg = MetricsRegistry::new();
        let c0 = reg.counter_with("wlr_bank_writes_total", "per-bank writes", &[("bank", "0")]);
        let c1 = reg.counter_with("wlr_bank_writes_total", "per-bank writes", &[("bank", "1")]);
        c0.add(10);
        c1.add(20);
        let samples = parse_exposition(&reg.render()).expect("parses");
        let get = |bank: &str| {
            samples
                .iter()
                .find(|s| s.labels.iter().any(|(k, v)| k == "bank" && v == bank))
                .map(|s| s.value)
        };
        assert_eq!(get("0"), Some(10.0));
        assert_eq!(get("1"), Some(20.0));
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_round_trips() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wlr_test_ticks", "a histogram");
        for v in [0u64, 1, 1, 3, 9] {
            h.record(v);
        }
        let text = reg.render();
        let samples = parse_exposition(&text).expect("parses");
        let bucket = |le: &str| {
            samples
                .iter()
                .find(|s| {
                    s.name == "wlr_test_ticks_bucket"
                        && s.labels.iter().any(|(k, v)| k == "le" && v == le)
                })
                .map(|s| s.value)
        };
        // 0 → bucket 0 (le 0); 1,1 → bucket 1 (le 1); 3 → bucket 2 (le
        // 3); 9 → bucket 4 (le 15). Cumulative counts:
        assert_eq!(bucket("0"), Some(1.0));
        assert_eq!(bucket("1"), Some(3.0));
        assert_eq!(bucket("3"), Some(4.0));
        assert_eq!(bucket("15"), Some(5.0));
        assert_eq!(bucket("+Inf"), Some(5.0));
        let scalar = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
        assert_eq!(scalar("wlr_test_ticks_sum"), Some(14.0));
        assert_eq!(scalar("wlr_test_ticks_count"), Some(5.0));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LogHistogram::new();
        let c = Counter::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.snapshot().count, 40_000);
        assert_eq!(h.snapshot().max, 39_999);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_exposition("name_only").is_none());
        assert!(parse_exposition("bad{unclosed 3").is_none());
        assert!(parse_exposition("x{k=\"v} 1").is_none());
        assert!(parse_exposition("ok 1\n# comment\n\nok2{a=\"b\"} 2").is_some());
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::new().counter("9starts_with_digit", "nope");
    }
}
