//! Statistics substrate: special functions for the PCM lifetime model and
//! summary statistics for workloads and experiment reporting.

pub mod hist;
pub mod normal;
pub mod order;
pub mod quantile;
pub mod registry;
pub mod summary;

pub use hist::{LatencyHistogram, WearHistogram};
pub use normal::{normal_cdf, normal_inv_cdf};
pub use order::OrderStatistics;
pub use quantile::QuantileSet;
pub use registry::{
    parse_exposition, Counter, Gauge, HistogramSnapshot, LogHistogram, MetricsRegistry, Sample,
};
pub use summary::{coefficient_of_variation, mean, percentile, variance, Histogram, Summary};
