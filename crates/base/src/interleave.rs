//! Bank-interleaved address mapping for the multi-bank front-end.
//!
//! Real PCM DIMMs expose many banks/partitions; the memory controller
//! stripes the global physical address space across them so sequential
//! traffic exercises every bank. This module owns the arithmetic: a
//! global block address splits into a `(bank, local address)` pair and
//! joins back, with a configurable striping granularity — cache-line
//! (one 64 B block per stripe), OS-page, or any block count in between.
//!
//! The mapping is a bijection between the global space and the disjoint
//! union of `banks` equally-sized local spaces, so each bank can run an
//! unmodified single-domain `(wear-leveler, reviver, device)` stack over
//! its local space while the front-end speaks global addresses.

use crate::geometry::Geometry;
use core::fmt;

/// Striping granularity presets for [`InterleaveMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// One block (= one last-level-cache line) per stripe: consecutive
    /// blocks land on consecutive banks. Maximizes bank-level parallelism
    /// for sequential traffic.
    CacheLine,
    /// One OS page per stripe: a page's blocks stay in one bank, so page
    /// retirement never crosses banks.
    Page,
    /// An explicit stripe width in blocks (must be nonzero).
    Blocks(u64),
}

impl Interleave {
    /// The stripe width in blocks under `geo`.
    pub fn stripe_blocks(self, geo: &Geometry) -> u64 {
        match self {
            Interleave::CacheLine => 1,
            Interleave::Page => geo.blocks_per_page(),
            Interleave::Blocks(n) => n,
        }
    }

    /// Parses `"cacheline"`, `"page"`, or a block count (the
    /// `WLR_INTERLEAVE` environment knob).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cacheline" | "cache-line" | "line" => Some(Interleave::CacheLine),
            "page" => Some(Interleave::Page),
            n => n
                .parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .map(Interleave::Blocks),
        }
    }
}

impl fmt::Display for Interleave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interleave::CacheLine => write!(f, "cacheline"),
            Interleave::Page => write!(f, "page"),
            Interleave::Blocks(n) => write!(f, "{n}"),
        }
    }
}

/// Errors from validating an [`InterleaveMap`] against an address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterleaveError {
    /// Bank count or stripe width was zero.
    Zero(&'static str),
    /// The global space is not a whole number of `banks × stripe` rounds,
    /// so the banks would be unequal.
    SpaceNotDivisible {
        /// Global address-space size in blocks.
        space: u64,
        /// Blocks per full interleave round (`banks × stripe`).
        round: u64,
    },
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterleaveError::Zero(what) => write!(f, "interleave parameter `{what}` must be nonzero"),
            InterleaveError::SpaceNotDivisible { space, round } => write!(
                f,
                "address space of {space} blocks is not a multiple of the {round}-block interleave round"
            ),
        }
    }
}

impl std::error::Error for InterleaveError {}

/// The bank-interleaved split of a global block address space.
///
/// With `banks = N` and `stripe_blocks = g`, global address `a` maps to
/// bank `(a / g) mod N` at local address `(a / g / N) · g + a mod g`:
/// stripes rotate round-robin over the banks, and each bank sees its own
/// dense, zero-based local space.
///
/// ```
/// use wlr_base::interleave::InterleaveMap;
/// let map = InterleaveMap::new(4, 64).unwrap();
/// // Block 64 is the second stripe: bank 1, local block 0.
/// assert_eq!(map.split(64), (1, 0));
/// assert_eq!(map.join(1, 0), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleaveMap {
    banks: u64,
    stripe: u64,
    /// `(stripe shift, bank shift)` when both widths are powers of two,
    /// letting [`split`](Self::split) use shifts and masks instead of
    /// four divisions. Derived from `banks`/`stripe`, so the derived
    /// `PartialEq` stays consistent.
    pow2: Option<(u32, u32)>,
}

impl InterleaveMap {
    /// Creates a map of `banks` banks striped every `stripe_blocks` blocks.
    ///
    /// # Errors
    ///
    /// [`InterleaveError::Zero`] when either parameter is zero.
    pub fn new(banks: u64, stripe_blocks: u64) -> Result<Self, InterleaveError> {
        if banks == 0 {
            return Err(InterleaveError::Zero("banks"));
        }
        if stripe_blocks == 0 {
            return Err(InterleaveError::Zero("stripe_blocks"));
        }
        let pow2 = (banks.is_power_of_two() && stripe_blocks.is_power_of_two())
            .then(|| (stripe_blocks.trailing_zeros(), banks.trailing_zeros()));
        Ok(InterleaveMap {
            banks,
            stripe: stripe_blocks,
            pow2,
        })
    }

    /// Number of banks.
    #[inline]
    pub const fn banks(&self) -> u64 {
        self.banks
    }

    /// Stripe width in blocks.
    #[inline]
    pub const fn stripe_blocks(&self) -> u64 {
        self.stripe
    }

    /// Blocks consumed by one full rotation over all banks.
    #[inline]
    pub const fn round_blocks(&self) -> u64 {
        self.banks * self.stripe
    }

    /// Splits a global block address into `(bank, local address)`.
    #[inline]
    pub fn split(&self, global: u64) -> (u64, u64) {
        if let Some((gs, bs)) = self.pow2 {
            let stripe_idx = global >> gs;
            let offset = global & (self.stripe - 1);
            let bank = stripe_idx & (self.banks - 1);
            let local = ((stripe_idx >> bs) << gs) + offset;
            return (bank, local);
        }
        let stripe_idx = global / self.stripe;
        let offset = global % self.stripe;
        let bank = stripe_idx % self.banks;
        let local = (stripe_idx / self.banks) * self.stripe + offset;
        (bank, local)
    }

    /// Joins a `(bank, local address)` pair back into the global address.
    #[inline]
    pub fn join(&self, bank: u64, local: u64) -> u64 {
        let local_stripe = local / self.stripe;
        let offset = local % self.stripe;
        (local_stripe * self.banks + bank) * self.stripe + offset
    }

    /// Validates that `space` splits evenly and returns each bank's local
    /// space size.
    ///
    /// # Errors
    ///
    /// [`InterleaveError::SpaceNotDivisible`] when the banks would be
    /// unequal.
    pub fn local_space(&self, space: u64) -> Result<u64, InterleaveError> {
        let round = self.round_blocks();
        if space == 0 || !space.is_multiple_of(round) {
            return Err(InterleaveError::SpaceNotDivisible { space, round });
        }
        Ok(space / self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_is_a_bijection() {
        for (banks, stripe) in [(1, 1), (2, 1), (4, 64), (3, 7), (16, 64)] {
            let map = InterleaveMap::new(banks, stripe).unwrap();
            let space = map.round_blocks() * 5;
            let mut seen = vec![false; space as usize];
            for a in 0..space {
                let (b, l) = map.split(a);
                assert!(b < banks);
                assert!(l < space / banks, "local {l} out of range");
                assert_eq!(map.join(b, l), a, "join∘split must be identity");
                let flat = (b * (space / banks) + l) as usize;
                assert!(!seen[flat], "collision at global {a}");
                seen[flat] = true;
            }
            assert!(seen.iter().all(|&s| s), "split must be surjective");
        }
    }

    #[test]
    fn cache_line_striping_rotates_per_block() {
        let map = InterleaveMap::new(4, 1).unwrap();
        assert_eq!(map.split(0), (0, 0));
        assert_eq!(map.split(1), (1, 0));
        assert_eq!(map.split(2), (2, 0));
        assert_eq!(map.split(3), (3, 0));
        assert_eq!(map.split(4), (0, 1));
    }

    #[test]
    fn page_striping_keeps_pages_whole() {
        let geo = Geometry::builder().num_blocks(1 << 12).build().unwrap();
        let g = Interleave::Page.stripe_blocks(&geo);
        assert_eq!(g, 64);
        let map = InterleaveMap::new(2, g).unwrap();
        // All 64 blocks of any page land in the same bank.
        for page in 0..8u64 {
            let base = page * 64;
            let (bank, _) = map.split(base);
            for off in 0..64 {
                assert_eq!(
                    map.split(base + off).0,
                    bank,
                    "page {page} split across banks"
                );
            }
        }
    }

    #[test]
    fn local_space_validates_divisibility() {
        let map = InterleaveMap::new(4, 64).unwrap();
        assert_eq!(map.local_space(4096), Ok(1024));
        assert!(matches!(
            map.local_space(4000),
            Err(InterleaveError::SpaceNotDivisible { .. })
        ));
        assert!(matches!(
            map.local_space(0),
            Err(InterleaveError::SpaceNotDivisible { .. })
        ));
    }

    #[test]
    fn rejects_zero_parameters() {
        assert_eq!(
            InterleaveMap::new(0, 1),
            Err(InterleaveError::Zero("banks"))
        );
        assert_eq!(
            InterleaveMap::new(1, 0),
            Err(InterleaveError::Zero("stripe_blocks"))
        );
    }

    #[test]
    fn parse_accepts_presets_and_counts() {
        assert_eq!(Interleave::parse("cacheline"), Some(Interleave::CacheLine));
        assert_eq!(Interleave::parse("Page"), Some(Interleave::Page));
        assert_eq!(Interleave::parse("128"), Some(Interleave::Blocks(128)));
        assert_eq!(Interleave::parse("0"), None);
        assert_eq!(Interleave::parse("bogus"), None);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for i in [
            Interleave::CacheLine,
            Interleave::Page,
            Interleave::Blocks(32),
        ] {
            assert_eq!(Interleave::parse(&i.to_string()), Some(i));
        }
    }
}
