//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the simulation — cell lifetimes, workload
//! sampling, wear-leveling keys — derives from one experiment seed, so that
//! every figure in `EXPERIMENTS.md` is exactly reproducible. We implement
//! the generators ourselves (SplitMix64 and Xoshiro256**) instead of taking
//! a dependency because the external crates do not guarantee value-stable
//! output across versions, and a silent change would invalidate recorded
//! experiment outputs.
//!
//! * [`SplitMix64`] — a tiny state-expansion generator, used to seed
//!   Xoshiro streams and to derive independent sub-streams (one per PCM
//!   block, one per trace, ...) from `(seed, index)` pairs.
//! * [`Rng`] — Xoshiro256** 1.0 (Blackman & Vigna), the workhorse bulk
//!   generator: fast, 256-bit state, passes BigCrush.

/// SplitMix64 (Steele, Lea & Flood): expands a 64-bit seed into a stream of
/// well-mixed 64-bit values. Primarily used to initialize [`Rng`] state and
/// to hash `(seed, stream)` pairs into independent sub-seeds.
///
/// ```
/// use wlr_base::rng::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes a `(seed, stream)` pair into a sub-seed, statistically
    /// independent for distinct `stream` values. Used to give every PCM
    /// block its own lifetime-sampling stream without storing RNG state
    /// per block.
    #[inline]
    pub fn mix(seed: u64, stream: u64) -> u64 {
        let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        sm.next_u64()
    }
}

/// Xoshiro256** 1.0: the simulation's bulk generator.
///
/// ```
/// use wlr_base::rng::Rng;
/// let mut rng = Rng::seed_from(7);
/// let v = rng.gen_range(10);
/// assert!(v < 10);
/// let f = rng.gen_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator by expanding `seed` through SplitMix64, per the
    /// xoshiro authors' recommendation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Xoshiro's all-zero state is absorbing; SplitMix64 cannot emit four
        // consecutive zeros, but guard anyway for explicit state loads.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent generator for sub-stream `stream` of `seed`.
    /// Distinct streams are decorrelated through SplitMix64 mixing.
    pub fn stream(seed: u64, stream: u64) -> Self {
        Rng::seed_from(SplitMix64::mix(seed, stream))
    }

    /// Produces the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's unbiased multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`, suitable as input to
    /// inverse-CDF transforms that reject 0.
    #[inline]
    pub fn gen_open_f64(&mut self) -> f64 {
        loop {
            let v = self.gen_f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard-normal draw via the Box–Muller transform (used only in
    /// non-hot paths such as workload construction).
    pub fn gen_standard_normal(&mut self) -> f64 {
        let u1 = self.gen_open_f64();
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the public-domain C source.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_seed_stable() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from(123);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from(123);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = Rng::stream(1, 0);
        let mut b = Rng::stream(1, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = Rng::seed_from(5);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::seed_from(9);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn gen_range_zero_panics() {
        Rng::seed_from(1).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = Rng::seed_from(13);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = r.gen_standard_normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input intact");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = Rng::seed_from(19);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_300..2_700).contains(&hits), "hits {hits}");
    }
}
