//! Address newtypes for the simulation's three address spaces.
//!
//! The WL-Reviver paper distinguishes (§I-B):
//!
//! * **Application addresses** ([`AppAddr`]) — what the workload issues.
//!   The OS maps application pages onto physical pages; this level only
//!   exists so that page retirement can transparently relocate a hot page.
//! * **Physical addresses** ([`Pa`]) — what software (including the OS)
//!   uses to access the memory device. A PA names one wear-leveling block.
//! * **Device addresses** ([`Da`]) — the persistent identity of a memory
//!   block inside the PCM chip. The wear-leveling scheme maintains the
//!   PA→DA bijection.
//!
//! All three are indices of 64-byte blocks, not byte addresses; the
//! conversion to bytes is owned by [`crate::geometry::Geometry`]. Using
//! distinct newtypes makes it a type error to feed a PA where a DA is
//! expected — the exact confusion the paper's Figure 1 warns about.

use core::fmt;

/// An application-level block address (pre-OS-translation).
///
/// ```
/// use wlr_base::addr::AppAddr;
/// let a = AppAddr::new(7);
/// assert_eq!(a.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AppAddr(u64);

/// A software-visible physical block address (PA).
///
/// ```
/// use wlr_base::addr::Pa;
/// assert!(Pa::new(3) < Pa::new(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pa(u64);

/// A device block address (DA): the permanent identity of a PCM block.
///
/// ```
/// use wlr_base::addr::Da;
/// assert_eq!(format!("{}", Da::new(10)), "DA(10)");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Da(u64);

/// An OS page identifier in PA space (page = `blocks_per_page` consecutive PAs).
///
/// ```
/// use wlr_base::addr::PageId;
/// assert_eq!(PageId::new(2).index(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

macro_rules! impl_addr {
    ($ty:ident, $label:expr) => {
        impl $ty {
            /// Wraps a raw block index.
            #[inline]
            pub const fn new(index: u64) -> Self {
                Self(index)
            }

            /// Returns the raw block index.
            #[inline]
            pub const fn index(self) -> u64 {
                self.0
            }

            /// Returns the raw index as `usize` for table lookups.
            ///
            /// # Panics
            ///
            /// Panics if the index does not fit in `usize` (only possible on
            /// 32-bit hosts with >4G-block geometries, which the simulator
            /// does not support).
            #[inline]
            pub fn as_usize(self) -> usize {
                usize::try_from(self.0).expect("address exceeds usize")
            }

            /// Returns the address offset by `delta` blocks.
            #[inline]
            #[must_use]
            pub const fn offset(self, delta: u64) -> Self {
                Self(self.0 + delta)
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "({})"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "({})"), self.0)
            }
        }

        impl From<$ty> for u64 {
            fn from(a: $ty) -> u64 {
                a.0
            }
        }
    };
}

impl_addr!(AppAddr, "App");
impl_addr!(Pa, "PA");
impl_addr!(Da, "DA");
impl_addr!(PageId, "Page");

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn newtypes_round_trip() {
        assert_eq!(Pa::new(5).index(), 5);
        assert_eq!(Da::new(9).as_usize(), 9);
        assert_eq!(u64::from(AppAddr::new(11)), 11);
        assert_eq!(PageId::new(3).offset(4), PageId::new(7));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Da::new(1) < Da::new(2));
        assert!(Pa::new(10) > Pa::new(2));
    }

    #[test]
    fn debug_and_display_are_labelled() {
        assert_eq!(format!("{:?}", Pa::new(1)), "PA(1)");
        assert_eq!(format!("{}", Da::new(2)), "DA(2)");
        assert_eq!(format!("{}", AppAddr::new(3)), "App(3)");
        assert_eq!(format!("{:?}", PageId::new(4)), "Page(4)");
    }

    #[test]
    fn hashable_in_sets() {
        let mut s = HashSet::new();
        s.insert(Da::new(1));
        s.insert(Da::new(1));
        s.insert(Da::new(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Pa::default(), Pa::new(0));
        assert_eq!(Da::default(), Da::new(0));
    }
}
