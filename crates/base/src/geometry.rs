//! Chip / page / block geometry shared by every layer of the simulator.
//!
//! The paper's setup (§IV-A): 64 B memory blocks (the last-level-cache line
//! size and the wear-leveling unit), 4 KB OS pages, and a 1 GB chip. All of
//! those are configurable here; experiments default to a scaled-down chip
//! (see `DESIGN.md` §6) because lifetime results are reported normalized.

use crate::addr::{Da, Pa, PageId};
use core::fmt;

/// Errors produced when validating a [`Geometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A size parameter was zero.
    Zero(&'static str),
    /// `page_bytes` is not a multiple of `block_bytes`.
    PageNotMultipleOfBlock {
        /// Configured page size in bytes.
        page_bytes: u64,
        /// Configured block size in bytes.
        block_bytes: u64,
    },
    /// `num_blocks` is not a multiple of the blocks-per-page count.
    BlocksNotMultipleOfPage {
        /// Configured number of blocks.
        num_blocks: u64,
        /// Blocks per page implied by the sizes.
        blocks_per_page: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Zero(what) => write!(f, "geometry parameter `{what}` must be nonzero"),
            GeometryError::PageNotMultipleOfBlock {
                page_bytes,
                block_bytes,
            } => write!(
                f,
                "page size {page_bytes} B is not a multiple of block size {block_bytes} B"
            ),
            GeometryError::BlocksNotMultipleOfPage {
                num_blocks,
                blocks_per_page,
            } => write!(
                f,
                "block count {num_blocks} is not a multiple of blocks-per-page {blocks_per_page}"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Immutable description of the simulated memory's shape.
///
/// The *software-visible* space is `num_blocks` blocks (`num_pages` OS
/// pages). Wear-leveling schemes may use extra device blocks beyond
/// `num_blocks` (e.g. Start-Gap's gap line); those are owned by the device
/// model, not by `Geometry`.
///
/// ```
/// use wlr_base::geometry::Geometry;
/// let geo = Geometry::builder()
///     .block_bytes(64)
///     .page_bytes(4096)
///     .num_blocks(1 << 16)
///     .build()?;
/// assert_eq!(geo.num_pages(), 1024);
/// assert_eq!(geo.blocks_per_page(), 64);
/// # Ok::<(), wlr_base::geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    block_bytes: u64,
    page_bytes: u64,
    num_blocks: u64,
}

impl Geometry {
    /// Starts building a geometry; defaults to 64 B blocks, 4 KB pages and
    /// a 2^16-block (4 MB) chip.
    pub fn builder() -> GeometryBuilder {
        GeometryBuilder::default()
    }

    /// The paper's full-scale configuration: 1 GB chip, 64 B blocks, 4 KB
    /// pages (2^24 blocks).
    ///
    /// ```
    /// let geo = wlr_base::Geometry::paper_scale();
    /// assert_eq!(geo.num_blocks(), 1 << 24);
    /// ```
    pub fn paper_scale() -> Self {
        Geometry {
            block_bytes: 64,
            page_bytes: 4096,
            num_blocks: 1 << 24,
        }
    }

    /// Block size in bytes (the wear-leveling unit).
    #[inline]
    pub const fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// OS page size in bytes.
    #[inline]
    pub const fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of software-visible blocks.
    #[inline]
    pub const fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Number of blocks per OS page.
    #[inline]
    pub const fn blocks_per_page(&self) -> u64 {
        self.page_bytes / self.block_bytes
    }

    /// Number of OS pages.
    #[inline]
    pub const fn num_pages(&self) -> u64 {
        self.num_blocks / self.blocks_per_page()
    }

    /// Number of bits in one block (the ECP bit-group size when groups are
    /// block-sized, as in the paper's 512-bit groups for 64 B blocks).
    #[inline]
    pub const fn block_bits(&self) -> u64 {
        self.block_bytes * 8
    }

    /// Total chip capacity in bytes (software-visible portion).
    #[inline]
    pub const fn capacity_bytes(&self) -> u64 {
        self.num_blocks * self.block_bytes
    }

    /// The page containing physical address `pa`.
    ///
    /// ```
    /// # use wlr_base::{Geometry, Pa, PageId};
    /// let geo = Geometry::builder().num_blocks(128).build().unwrap();
    /// assert_eq!(geo.page_of(Pa::new(64)), PageId::new(1));
    /// ```
    #[inline]
    pub fn page_of(&self, pa: Pa) -> PageId {
        PageId::new(pa.index() / self.blocks_per_page())
    }

    /// The first PA of page `page`.
    #[inline]
    pub fn page_base(&self, page: PageId) -> Pa {
        Pa::new(page.index() * self.blocks_per_page())
    }

    /// Iterator over all PAs contained in `page`.
    ///
    /// ```
    /// # use wlr_base::{Geometry, PageId};
    /// let geo = Geometry::builder().num_blocks(128).build().unwrap();
    /// assert_eq!(geo.page_pas(PageId::new(1)).count(), 64);
    /// ```
    pub fn page_pas(&self, page: PageId) -> impl Iterator<Item = Pa> {
        let base = self.page_base(page).index();
        (base..base + self.blocks_per_page()).map(Pa::new)
    }

    /// Whether `pa` is within the software-visible space.
    #[inline]
    pub fn contains_pa(&self, pa: Pa) -> bool {
        pa.index() < self.num_blocks
    }

    /// Whether `da` addresses a software-visible-sized block index.
    /// (Device models may legitimately expose a handful more blocks.)
    #[inline]
    pub fn contains_da(&self, da: Da) -> bool {
        da.index() < self.num_blocks
    }
}

impl Default for Geometry {
    fn default() -> Self {
        GeometryBuilder::default()
            .build()
            .expect("default geometry is valid")
    }
}

/// Builder for [`Geometry`]; see [`Geometry::builder`].
#[derive(Debug, Clone)]
pub struct GeometryBuilder {
    block_bytes: u64,
    page_bytes: u64,
    num_blocks: u64,
}

impl Default for GeometryBuilder {
    fn default() -> Self {
        GeometryBuilder {
            block_bytes: 64,
            page_bytes: 4096,
            num_blocks: 1 << 16,
        }
    }
}

impl GeometryBuilder {
    /// Sets the block size in bytes.
    pub fn block_bytes(&mut self, bytes: u64) -> &mut Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the OS page size in bytes.
    pub fn page_bytes(&mut self, bytes: u64) -> &mut Self {
        self.page_bytes = bytes;
        self
    }

    /// Sets the number of software-visible blocks.
    pub fn num_blocks(&mut self, blocks: u64) -> &mut Self {
        self.num_blocks = blocks;
        self
    }

    /// Validates the configuration and produces a [`Geometry`].
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any size is zero, the page size is not
    /// a multiple of the block size, or the block count is not a whole
    /// number of pages.
    pub fn build(&self) -> Result<Geometry, GeometryError> {
        if self.block_bytes == 0 {
            return Err(GeometryError::Zero("block_bytes"));
        }
        if self.page_bytes == 0 {
            return Err(GeometryError::Zero("page_bytes"));
        }
        if self.num_blocks == 0 {
            return Err(GeometryError::Zero("num_blocks"));
        }
        if !self.page_bytes.is_multiple_of(self.block_bytes) {
            return Err(GeometryError::PageNotMultipleOfBlock {
                page_bytes: self.page_bytes,
                block_bytes: self.block_bytes,
            });
        }
        let blocks_per_page = self.page_bytes / self.block_bytes;
        if !self.num_blocks.is_multiple_of(blocks_per_page) {
            return Err(GeometryError::BlocksNotMultipleOfPage {
                num_blocks: self.num_blocks,
                blocks_per_page,
            });
        }
        Ok(Geometry {
            block_bytes: self.block_bytes,
            page_bytes: self.page_bytes,
            num_blocks: self.num_blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_design_doc() {
        let geo = Geometry::default();
        assert_eq!(geo.block_bytes(), 64);
        assert_eq!(geo.page_bytes(), 4096);
        assert_eq!(geo.num_blocks(), 1 << 16);
        assert_eq!(geo.blocks_per_page(), 64);
        assert_eq!(geo.num_pages(), 1024);
        assert_eq!(geo.block_bits(), 512);
        assert_eq!(geo.capacity_bytes(), 4 << 20);
    }

    #[test]
    fn paper_scale_is_one_gigabyte() {
        let geo = Geometry::paper_scale();
        assert_eq!(geo.capacity_bytes(), 1 << 30);
        assert_eq!(geo.num_pages(), 1 << 18);
    }

    #[test]
    fn page_arithmetic() {
        let geo = Geometry::builder().num_blocks(256).build().unwrap();
        assert_eq!(geo.page_of(Pa::new(0)), PageId::new(0));
        assert_eq!(geo.page_of(Pa::new(63)), PageId::new(0));
        assert_eq!(geo.page_of(Pa::new(64)), PageId::new(1));
        assert_eq!(geo.page_base(PageId::new(2)), Pa::new(128));
        let pas: Vec<_> = geo.page_pas(PageId::new(3)).collect();
        assert_eq!(pas.first(), Some(&Pa::new(192)));
        assert_eq!(pas.last(), Some(&Pa::new(255)));
        assert_eq!(pas.len(), 64);
    }

    #[test]
    fn containment() {
        let geo = Geometry::builder().num_blocks(128).build().unwrap();
        assert!(geo.contains_pa(Pa::new(127)));
        assert!(!geo.contains_pa(Pa::new(128)));
        assert!(geo.contains_da(Da::new(0)));
        assert!(!geo.contains_da(Da::new(1 << 40)));
    }

    #[test]
    fn rejects_zero_sizes() {
        assert_eq!(
            Geometry::builder().block_bytes(0).build(),
            Err(GeometryError::Zero("block_bytes"))
        );
        assert_eq!(
            Geometry::builder().page_bytes(0).build(),
            Err(GeometryError::Zero("page_bytes"))
        );
        assert_eq!(
            Geometry::builder().num_blocks(0).build(),
            Err(GeometryError::Zero("num_blocks"))
        );
    }

    #[test]
    fn rejects_misaligned_page() {
        let err = Geometry::builder()
            .block_bytes(48)
            .page_bytes(4096)
            .build()
            .unwrap_err();
        assert!(matches!(err, GeometryError::PageNotMultipleOfBlock { .. }));
        assert!(err.to_string().contains("not a multiple"));
    }

    #[test]
    fn rejects_partial_pages() {
        let err = Geometry::builder().num_blocks(100).build().unwrap_err();
        assert!(matches!(err, GeometryError::BlocksNotMultipleOfPage { .. }));
    }
}
