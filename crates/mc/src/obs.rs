//! Pipeline instrumentation: what the front-end publishes about itself.
//!
//! Two pieces:
//!
//! * [`PipeAccum`] — always-on, front-end-thread-local accumulators
//!   (batch sizes, flush ages). They are bumped a handful of plain adds
//!   per *flush*, not per write, so the submit hot path is untouched.
//! * [`PipelineSnapshot`] — a point-in-time view assembled by
//!   [`crate::McFrontend::pipeline_snapshot`]. Per-bank progress is read
//!   through the same `BankSync` consumed/alive publication the
//!   death-lag protocol already maintains (Acquire loads of the pinned
//!   workers' Release stores), so observing the pipeline costs the hot
//!   path nothing it was not already paying.
//!
//! The service daemon samples a snapshot periodically and republishes it
//! as registry gauges; batch binaries can grab one at end of run.

/// Power-of-two bucket count for batch sizes (bit-widths 0..=32).
pub const BATCH_BUCKETS: usize = 33;
/// Power-of-two bucket count for flush ages in ticks (bit-widths 0..=32).
pub const AGE_BUCKETS: usize = 33;

/// Always-on flush-path accumulators (see module docs). All counts are
/// plain integers owned by the front-end thread.
#[derive(Debug, Clone)]
pub struct PipeAccum {
    /// Batches flushed toward banks.
    pub batches: u64,
    /// Total entries across all flushed batches.
    pub batch_entries: u64,
    /// `batch_size_hist[i]` counts batches whose size has bit-width `i`.
    pub batch_size_hist: [u64; BATCH_BUCKETS],
    /// Sum over batches of the oldest entry's age (ticks) at flush time.
    pub flush_age_sum: u64,
    /// `flush_age_hist[i]` counts batches whose flush age has bit-width
    /// `i` (bucket 0: flushed the tick they arrived).
    pub flush_age_hist: [u64; AGE_BUCKETS],
}

impl Default for PipeAccum {
    fn default() -> Self {
        PipeAccum {
            batches: 0,
            batch_entries: 0,
            batch_size_hist: [0; BATCH_BUCKETS],
            flush_age_sum: 0,
            flush_age_hist: [0; AGE_BUCKETS],
        }
    }
}

impl PipeAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one flushed batch of `entries` entries whose oldest entry
    /// waited `age` ticks.
    #[inline]
    pub fn note_flush(&mut self, entries: u64, age: u64) {
        self.batches += 1;
        self.batch_entries += entries;
        self.batch_size_hist[bit_width(entries)] += 1;
        self.flush_age_sum += age;
        self.flush_age_hist[bit_width(age)] += 1;
    }

    /// Mean batch size (0 before any flush).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_entries as f64 / self.batches as f64
        }
    }

    /// Mean flush age in ticks (0 before any flush).
    pub fn mean_flush_age(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.flush_age_sum as f64 / self.batches as f64
        }
    }
}

#[inline]
fn bit_width(v: u64) -> usize {
    // Values above 2³² share the top bucket; batch sizes and ages never
    // plausibly reach it.
    ((64 - v.leading_zeros()) as usize).min(BATCH_BUCKETS - 1)
}

/// One bank's pipeline position within a [`PipelineSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankPipeStat {
    /// Physical bank index.
    pub bank: usize,
    /// Entries the front-end has flushed into this bank's ring.
    pub flushed: u64,
    /// Entries the bank's drain (worker or inline) has consumed, as
    /// published through `BankSync` — may lag `flushed` by the in-flight
    /// batch.
    pub consumed: u64,
    /// `flushed − consumed`: entries sitting in the ring right now.
    pub occupancy: u64,
    /// The bank's service clock (when it finishes its queued batches).
    pub busy_until: u64,
    /// Whether the front-end's lagged death mirror has the bank dead.
    pub dead: bool,
}

/// A point-in-time view of the whole pipeline. See the module docs for
/// freshness guarantees (per-bank progress is lag-one, everything else
/// is the front-end's own ground truth).
#[derive(Debug, Clone)]
pub struct PipelineSnapshot {
    /// Requests submitted so far.
    pub requests: u64,
    /// Front-end arrival clock.
    pub ticks: u64,
    /// Batches flushed (same count as `accum.batches`).
    pub drains: u64,
    /// Flush-path accumulators (batch sizes, flush ages).
    pub accum: PipeAccum,
    /// Steering permutation rotations so far (0 when steering is off).
    pub steer_rotations: u64,
    /// Median queue latency in ticks (0 before any flush).
    pub p50_ticks: u64,
    /// 99th-percentile queue latency in ticks (0 before any flush).
    pub p99_ticks: u64,
    /// 99.9th-percentile queue latency in ticks (0 before any flush).
    pub p999_ticks: u64,
    /// Banks quarantined so far (degraded mode; 0 otherwise).
    pub quarantines: u64,
    /// Writes rerouted into the degraded-mode directory.
    pub redirected: u64,
    /// Oracle lines migrated out of quarantined banks.
    pub migrated_lines: u64,
    /// Lines currently living in the degraded-mode directory.
    pub directory_lines: u64,
    /// Per-bank ring positions, in physical bank order.
    pub banks: Vec<BankPipeStat>,
}

impl PipelineSnapshot {
    /// Total ring occupancy across all banks.
    pub fn total_occupancy(&self) -> u64 {
        self.banks.iter().map(|b| b.occupancy).sum()
    }

    /// Banks the death mirror currently has dead.
    pub fn dead_banks(&self) -> usize {
        self.banks.iter().filter(|b| b.dead).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_tracks_means_and_buckets() {
        let mut a = PipeAccum::new();
        a.note_flush(1, 0);
        a.note_flush(64, 3);
        a.note_flush(3, 9);
        assert_eq!(a.batches, 3);
        assert_eq!(a.batch_entries, 68);
        assert!((a.mean_batch() - 68.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.flush_age_sum, 12);
        assert_eq!(a.batch_size_hist[1], 1); // size 1
        assert_eq!(a.batch_size_hist[7], 1); // size 64
        assert_eq!(a.batch_size_hist[2], 1); // size 3
        assert_eq!(a.flush_age_hist[0], 1); // age 0
        assert_eq!(a.flush_age_hist[2], 1); // age 3
        assert_eq!(a.flush_age_hist[4], 1); // age 9
    }

    #[test]
    fn snapshot_aggregates() {
        let snap = PipelineSnapshot {
            requests: 10,
            ticks: 10,
            drains: 2,
            accum: PipeAccum::new(),
            steer_rotations: 0,
            p50_ticks: 0,
            p99_ticks: 0,
            p999_ticks: 0,
            quarantines: 0,
            redirected: 0,
            migrated_lines: 0,
            directory_lines: 0,
            banks: vec![
                BankPipeStat {
                    bank: 0,
                    flushed: 8,
                    consumed: 5,
                    occupancy: 3,
                    busy_until: 9,
                    dead: false,
                },
                BankPipeStat {
                    bank: 1,
                    flushed: 2,
                    consumed: 2,
                    occupancy: 0,
                    busy_until: 4,
                    dead: true,
                },
            ],
        };
        assert_eq!(snap.total_occupancy(), 3);
        assert_eq!(snap.dead_banks(), 1);
    }
}
