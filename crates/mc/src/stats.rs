//! Service-quality and outcome statistics for the multi-bank front-end.

use crate::bank::Bank;
use wl_reviver::metrics::WearHistogram;

/// Queue-latency ticks below which counts are exact; beyond, latencies
/// land in a single overflow bucket and percentiles report the observed
/// maximum.
const RESOLUTION: usize = 4096;

/// An exact-count latency histogram over queueing delays in ticks.
///
/// Latencies `0..4096` are counted exactly; larger ones share an
/// overflow bucket (with the true maximum tracked separately, so
/// [`Self::percentile`] stays meaningful). Histograms from different
/// banks or runs [`merge`](Self::merge) by plain addition.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; RESOLUTION],
            overflow: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency observation.
    pub fn push(&mut self, latency: u64) {
        match self.counts.get_mut(latency as usize) {
            Some(slot) => *slot += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Adds `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency in ticks.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram.
    pub fn mean(&self) -> f64 {
        assert!(self.total > 0, "mean of an empty latency histogram");
        self.sum as f64 / self.total as f64
    }

    /// Largest latency observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile latency (ceiling rank). Ranks falling in the
    /// overflow bucket report the observed maximum.
    ///
    /// # Panics
    ///
    /// Panics on an empty histogram or `q` outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!(self.total > 0, "percentile of an empty latency histogram");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (latency, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return latency as u64;
            }
        }
        self.max
    }

    /// Median latency.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

/// Why a multi-bank run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McStopReason {
    /// Every request was serviced.
    TraceComplete,
    /// Under [`McStopPolicy::FirstBankDead`]: this bank exhausted its
    /// memory.
    BankDead(usize),
    /// Under [`McStopPolicy::Quorum`]: this many banks were dead.
    QuorumDead(usize),
}

/// When the front-end declares the memory dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McStopPolicy {
    /// Stop as soon as any single bank dies (the whole-DIMM view: an
    /// interleaved address space is unusable with a hole in it).
    FirstBankDead,
    /// Stop when at least this fraction of banks is dead (a controller
    /// that can deinterleave around dead banks at reduced capacity).
    Quorum(f64),
}

/// Per-bank end-of-run summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankReport {
    /// Bank index.
    pub bank: usize,
    /// Writes issued into the bank's PCM stack.
    pub writes_issued: u64,
    /// Writes dropped at or after the bank's death.
    pub dropped: u64,
    /// Page retirements the bank's OS performed.
    pub retirements: u64,
    /// Pages the bank's OS has retired in total.
    pub retired_pages: u64,
    /// Dead blocks on the bank's device.
    pub dead_blocks: u64,
    /// Final survival fraction of the bank's visible blocks.
    pub survival: f64,
    /// Final usable-space fraction of the bank.
    pub usable: f64,
    /// Power-loss recoveries performed mid-drain.
    pub recoveries: u64,
    /// Whether the bank was still alive at the end.
    pub alive: bool,
    /// The bank simulation's end-state fingerprint
    /// ([`wl_reviver::Simulation::fingerprint`]).
    pub fingerprint: u64,
}

impl BankReport {
    /// Summarizes a bank after its last drain.
    pub fn from_bank(bank: &Bank) -> Self {
        let sim = bank.sim();
        BankReport {
            bank: bank.id(),
            writes_issued: sim.writes_issued(),
            dropped: bank.dropped(),
            retirements: sim.retirements(),
            retired_pages: sim.os().retired_pages(),
            dead_blocks: sim.controller().device().dead_blocks(),
            survival: sim.survival_fraction(),
            usable: sim.usable_fraction(),
            recoveries: bank.recoveries(),
            alive: bank.alive(),
            fingerprint: sim.fingerprint(),
        }
    }
}

/// End-of-run summary of a whole multi-bank front-end.
#[derive(Debug, Clone)]
pub struct McOutcome {
    /// Requests submitted to the front-end.
    pub requests: u64,
    /// Requests absorbed by write-buffer hits (never reached PCM).
    pub absorbed: u64,
    /// Requests coalesced into already-queued writes.
    pub coalesced: u64,
    /// Writes issued into bank simulations.
    pub issued: u64,
    /// Writes dropped by dead banks.
    pub dropped: u64,
    /// Whole-fleet drains performed.
    pub drains: u64,
    /// Final front-end clock value.
    pub ticks: u64,
    /// Why the run ended.
    pub stop: McStopReason,
    /// Per-bank summaries, in bank order.
    pub banks: Vec<BankReport>,
    /// Wear distribution merged across every bank's visible blocks.
    pub wear: WearHistogram,
    /// Queueing-latency distribution across all banks.
    pub latency: LatencyHistogram,
}

impl McOutcome {
    /// Every submitted request is accounted for exactly once:
    /// `requests = absorbed + coalesced + issued + dropped`. Holds after
    /// [`finish`](crate::McFrontend::finish) (mid-run, requests still
    /// sitting in the buffer or queues are not yet counted).
    pub fn conserves_writes(&self) -> bool {
        self.requests == self.absorbed + self.coalesced + self.issued + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_follow_exact_counts() {
        let mut h = LatencyHistogram::new();
        for lat in 1..=100u64 {
            h.push(lat);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for lat in 0..50u64 {
            a.push(lat);
            whole.push(lat);
        }
        for lat in 50..200u64 {
            b.push(lat * 40); // push some into overflow
            whole.push(lat * 40);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1f64, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn overflow_ranks_report_observed_max() {
        let mut h = LatencyHistogram::new();
        h.push(10);
        h.push(1_000_000);
        assert_eq!(h.p99(), 1_000_000);
        assert_eq!(h.p50(), 10);
    }

    #[test]
    #[should_panic(expected = "empty latency histogram")]
    fn empty_percentile_panics() {
        LatencyHistogram::new().percentile(0.5);
    }
}
