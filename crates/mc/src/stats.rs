//! Service-quality and outcome statistics for the multi-bank front-end.

use crate::bank::Bank;

// Both histograms were deduplicated into `wlr_base::stats`; the
// re-exports keep `wlr_mc::stats::LatencyHistogram` (and the crate-root
// re-export) working.
pub use wlr_base::stats::{LatencyHistogram, WearHistogram};

/// Why a multi-bank run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McStopReason {
    /// Every request was serviced.
    TraceComplete,
    /// Under [`McStopPolicy::FirstBankDead`]: this bank exhausted its
    /// memory.
    BankDead(usize),
    /// Under [`McStopPolicy::Quorum`]: this many banks were dead.
    QuorumDead(usize),
}

/// When the front-end declares the memory dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McStopPolicy {
    /// Stop as soon as any single bank dies (the whole-DIMM view: an
    /// interleaved address space is unusable with a hole in it).
    FirstBankDead,
    /// Stop when at least this fraction of banks is dead (a controller
    /// that can deinterleave around dead banks at reduced capacity).
    Quorum(f64),
}

/// Per-bank end-of-run summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankReport {
    /// Bank index.
    pub bank: usize,
    /// Writes issued into the bank's PCM stack.
    pub writes_issued: u64,
    /// Writes dropped at or after the bank's death.
    pub dropped: u64,
    /// Page retirements the bank's OS performed.
    pub retirements: u64,
    /// Pages the bank's OS has retired in total.
    pub retired_pages: u64,
    /// Dead blocks on the bank's device.
    pub dead_blocks: u64,
    /// Final survival fraction of the bank's visible blocks.
    pub survival: f64,
    /// Final usable-space fraction of the bank.
    pub usable: f64,
    /// Power-loss recoveries performed mid-drain.
    pub recoveries: u64,
    /// Whether the bank was still alive at the end.
    pub alive: bool,
    /// The bank simulation's end-state fingerprint
    /// ([`wl_reviver::Simulation::fingerprint`]).
    pub fingerprint: u64,
}

impl BankReport {
    /// Summarizes a bank after its last drain.
    pub fn from_bank(bank: &Bank) -> Self {
        let sim = bank.sim();
        BankReport {
            bank: bank.id(),
            writes_issued: sim.writes_issued(),
            dropped: bank.dropped(),
            retirements: sim.retirements(),
            retired_pages: sim.os().retired_pages(),
            dead_blocks: sim.controller().device().dead_blocks(),
            survival: sim.survival_fraction(),
            usable: sim.usable_fraction(),
            recoveries: bank.recoveries(),
            alive: bank.alive(),
            fingerprint: sim.fingerprint(),
        }
    }
}

/// End-of-run summary of a whole multi-bank front-end.
#[derive(Debug, Clone)]
pub struct McOutcome {
    /// Requests submitted to the front-end.
    pub requests: u64,
    /// Requests absorbed by write-buffer hits (never reached PCM).
    pub absorbed: u64,
    /// Requests coalesced into already-queued writes.
    pub coalesced: u64,
    /// Writes issued into bank simulations.
    pub issued: u64,
    /// Writes dropped by dead banks.
    pub dropped: u64,
    /// Writes rerouted into the degraded-mode directory (parked rescues
    /// plus flushes redirected past quarantined banks); always 0 outside
    /// degraded mode.
    pub redirected: u64,
    /// Banks quarantined (degraded mode only).
    pub quarantines: u64,
    /// Oracle lines migrated out of quarantined banks.
    pub migrated_lines: u64,
    /// Transient-read retries performed across all banks.
    pub read_retries: u64,
    /// Reads whose bounded retry was exhausted, across all banks.
    pub retry_exhausted: u64,
    /// Whole-fleet drains performed.
    pub drains: u64,
    /// Final front-end clock value.
    pub ticks: u64,
    /// Why the run ended.
    pub stop: McStopReason,
    /// Per-bank summaries, in bank order.
    pub banks: Vec<BankReport>,
    /// Wear distribution merged across every bank's visible blocks.
    pub wear: WearHistogram,
    /// Queueing-latency distribution across all banks.
    pub latency: LatencyHistogram,
    /// WL-Reviver event counters merged across every reviver bank
    /// (all-zero when the banks run a non-reviver scheme).
    pub revival: wl_reviver::ReviverCounters,
}

impl McOutcome {
    /// Every submitted request is accounted for exactly once:
    /// `requests = absorbed + coalesced + issued + dropped + redirected`.
    /// Holds after [`finish`](crate::McFrontend::finish) (mid-run,
    /// requests still sitting in the buffer or queues are not yet
    /// counted).
    pub fn conserves_writes(&self) -> bool {
        self.requests
            == self.absorbed + self.coalesced + self.issued + self.dropped + self.redirected
    }
}

// The histogram unit tests moved to `wlr-base::stats::hist` together
// with the implementations.
