//! One bank: an independent `(wear-leveler, reviver, device)` stack.
//!
//! Each bank wraps a full single-domain [`Simulation`] over the bank's
//! local address space. The front-end drains a bank by handing it the
//! batch of local addresses its queue released; the bank issues them
//! through [`Simulation::run_batch`], recovering in place from injected
//! power losses and going permanently dead when its memory is exhausted.
//! Banks never touch each other's state, which is what makes parallel
//! bank stepping bit-identical to the sequential reference.
//!
//! In degraded mode ([`crate::McFrontendBuilder::degraded`]) a dying
//! bank additionally parks its un-issued tail and evacuates its tracked
//! lines into the shared [`Wreckage`] buffers for the front-end's
//! quarantine to harvest, and chaos commands posted through the bank's
//! [`ChaosSlot`] (kill points, runtime fault plans) are applied at batch
//! boundaries — even while a pinned worker owns the bank.

use std::sync::Arc;

use wl_reviver::sim::BatchStatus;
use wl_reviver::{AppRead, Simulation};
use wlr_base::AppAddr;

use crate::degrade::{BankChaos, ChaosSlot, McReadError, RetryPolicy, Wreckage, LOCAL_MASK};

/// A bank's simulation stack plus the front-end's per-bank bookkeeping.
#[derive(Debug)]
pub struct Bank {
    id: usize,
    sim: Simulation,
    alive: bool,
    issued: u64,
    dropped: u64,
    recoveries: u64,
    /// When enabled, every address actually issued, in order — replaying
    /// this log through an identically-configured standalone simulation
    /// must reproduce the bank's fingerprint exactly.
    issue_log: Option<Vec<u64>>,
    /// Reused address buffer so steady-state drains allocate nothing.
    scratch: Vec<AppAddr>,
    /// Degraded mode: ring entries are logical-encoded and death parks
    /// instead of dropping.
    degraded: bool,
    /// Pending injected kill point: the bank dies once `issued` reaches
    /// this count.
    kill_at: Option<u64>,
    /// Mailbox for runtime chaos commands.
    chaos: Arc<ChaosSlot>,
    /// Where a dying bank leaves parked writes and evacuated lines.
    wreckage: Arc<Wreckage>,
    retry: RetryPolicy,
    read_retries: u64,
    retry_exhausted: u64,
}

impl Bank {
    /// Wraps `sim` as bank `id`; `record_issue` enables the issue log.
    pub fn new(id: usize, sim: Simulation, record_issue: bool) -> Self {
        Bank {
            id,
            sim,
            alive: true,
            issued: 0,
            dropped: 0,
            recoveries: 0,
            issue_log: record_issue.then(Vec::new),
            scratch: Vec::new(),
            degraded: false,
            kill_at: None,
            chaos: Arc::new(ChaosSlot::default()),
            wreckage: Arc::new(Wreckage::default()),
            retry: RetryPolicy::default(),
            read_retries: 0,
            retry_exhausted: 0,
        }
    }

    /// Bank index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the bank can still accept writes.
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Writes issued into the bank's simulation.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Writes dropped because the bank was (or went) dead.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Power-loss recoveries performed mid-drain.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Transient-read retries performed so far.
    pub fn read_retries(&self) -> u64 {
        self.read_retries
    }

    /// Reads whose bounded retry was exhausted.
    pub fn retry_exhausted(&self) -> u64 {
        self.retry_exhausted
    }

    /// The issue log, if recording was enabled.
    pub fn issue_log(&self) -> Option<&[u64]> {
        self.issue_log.as_deref()
    }

    /// The bank's underlying simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access to the bank's simulation — sink attachment and
    /// state restoration between runs, never mid-drain.
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Switches the bank's drain path onto the degraded-mode protocol
    /// (logical-encoded batches, park-on-death). Set at build time.
    pub(crate) fn set_degraded(&mut self, on: bool) {
        self.degraded = on;
    }

    /// Installs the transient-read retry policy.
    pub(crate) fn set_retry(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The bank's chaos mailbox (shared with the front-end's inject API).
    pub(crate) fn chaos_slot(&self) -> Arc<ChaosSlot> {
        Arc::clone(&self.chaos)
    }

    /// The bank's wreckage buffers (shared with quarantine).
    pub(crate) fn wreckage(&self) -> Arc<Wreckage> {
        Arc::clone(&self.wreckage)
    }

    /// Marks the bank dead without draining anything — used when
    /// re-applying persisted quarantine state after a restart.
    pub(crate) fn force_dead(&mut self) {
        self.alive = false;
    }

    /// Issues a drained batch of bank-local addresses (logical-encoded in
    /// degraded mode). Power losses are recovered in place and the batch
    /// continues; memory exhaustion, the hard cap, or an injected kill
    /// point kills the bank — dropping the rest of the batch, or parking
    /// it (plus the bank's live lines) for quarantine in degraded mode.
    pub fn drain(&mut self, batch: &[u64]) {
        self.poll_chaos();
        if !self.alive {
            self.absorb_dead(batch);
            return;
        }
        // Reuse the scratch buffer (taken out so the loop below can
        // borrow `self` mutably); steady-state drains allocate nothing.
        let mut addrs = std::mem::take(&mut self.scratch);
        addrs.clear();
        if self.degraded {
            addrs.extend(batch.iter().map(|&e| AppAddr::new(e & LOCAL_MASK)));
        } else {
            addrs.extend(batch.iter().map(|&a| AppAddr::new(a)));
        }
        let mut start = 0usize;
        while start < addrs.len() {
            // An armed kill point bounds how much of the batch may issue.
            let mut end = addrs.len();
            if let Some(k) = self.kill_at {
                let allowed = k.saturating_sub(self.issued) as usize;
                if allowed < end - start {
                    end = start + allowed;
                }
            }
            if end == start {
                self.die(&batch[start..]);
                break;
            }
            let rest = &addrs[start..end];
            match self.sim.run_batch(rest) {
                BatchStatus::Completed => {
                    self.log_issued(rest);
                    self.issued += rest.len() as u64;
                    start = end;
                }
                BatchStatus::PowerLoss { consumed } => {
                    self.log_issued(&rest[..consumed as usize]);
                    self.issued += consumed;
                    self.recoveries += 1;
                    self.sim.recover();
                    start += consumed as usize;
                }
                BatchStatus::MemoryExhausted { consumed } | BatchStatus::HardCap { consumed } => {
                    self.log_issued(&rest[..consumed as usize]);
                    self.issued += consumed;
                    self.die(&batch[start + consumed as usize..]);
                    break;
                }
            }
        }
        self.scratch = addrs;
    }

    /// Reads the bank-local line `local`, retrying transient errors with
    /// bounded exponential backoff per the installed [`RetryPolicy`].
    /// `Ok(None)` means the line is not currently mapped.
    pub fn read_local(&mut self, local: u64) -> Result<Option<u64>, McReadError> {
        let mut attempts = 0u32;
        loop {
            match self.sim.read_app(AppAddr::new(local)) {
                AppRead::Ok(tag) => return Ok(Some(tag)),
                AppRead::Unmapped => return Ok(None),
                AppRead::Transient => {
                    attempts += 1;
                    if attempts > self.retry.max_retries {
                        self.retry_exhausted += 1;
                        return Err(McReadError::Transient {
                            bank: self.id,
                            attempts,
                        });
                    }
                    self.read_retries += 1;
                    for _ in 0..(u64::from(self.retry.backoff_spins) << attempts.min(16)) {
                        std::hint::spin_loop();
                    }
                }
            }
        }
    }

    /// Applies any chaos commands posted since the last batch. One
    /// relaxed load when the mailbox is idle.
    fn poll_chaos(&mut self) {
        for cmd in self.chaos.take() {
            match cmd {
                BankChaos::KillAfter(n) => self.kill_at = Some(self.issued + n),
                BankChaos::Faults(plan) => self.sim.arm_faults(plan),
            }
        }
    }

    /// The bank's death transition: park or drop the unhandled tail, and
    /// in degraded mode evacuate the oracle's live lines for quarantine.
    fn die(&mut self, rest_encoded: &[u64]) {
        self.alive = false;
        self.kill_at = None;
        self.absorb_dead(rest_encoded);
        if self.degraded {
            let lines = self.sim.tracked_lines();
            if !lines.is_empty() {
                self.wreckage
                    .evacuated
                    .lock()
                    .expect("wreckage poisoned")
                    .extend(lines);
            }
        }
    }

    /// What happens to batch entries a dead bank receives: parked for
    /// rescue in degraded mode, dropped otherwise.
    fn absorb_dead(&mut self, encoded: &[u64]) {
        if encoded.is_empty() {
            return;
        }
        if self.degraded {
            self.wreckage
                .parked
                .lock()
                .expect("wreckage poisoned")
                .extend_from_slice(encoded);
        } else {
            self.dropped += encoded.len() as u64;
        }
    }

    fn log_issued(&mut self, addrs: &[AppAddr]) {
        if let Some(log) = &mut self.issue_log {
            log.extend(addrs.iter().map(|a| a.index()));
        }
    }
}
