//! One bank: an independent `(wear-leveler, reviver, device)` stack.
//!
//! Each bank wraps a full single-domain [`Simulation`] over the bank's
//! local address space. The front-end drains a bank by handing it the
//! batch of local addresses its queue released; the bank issues them
//! through [`Simulation::run_batch`], recovering in place from injected
//! power losses and going permanently dead when its memory is exhausted.
//! Banks never touch each other's state, which is what makes parallel
//! bank stepping bit-identical to the sequential reference.

use wl_reviver::sim::BatchStatus;
use wl_reviver::Simulation;
use wlr_base::AppAddr;

/// A bank's simulation stack plus the front-end's per-bank bookkeeping.
#[derive(Debug)]
pub struct Bank {
    id: usize,
    sim: Simulation,
    alive: bool,
    issued: u64,
    dropped: u64,
    recoveries: u64,
    /// When enabled, every address actually issued, in order — replaying
    /// this log through an identically-configured standalone simulation
    /// must reproduce the bank's fingerprint exactly.
    issue_log: Option<Vec<u64>>,
    /// Reused address buffer so steady-state drains allocate nothing.
    scratch: Vec<AppAddr>,
}

impl Bank {
    /// Wraps `sim` as bank `id`; `record_issue` enables the issue log.
    pub fn new(id: usize, sim: Simulation, record_issue: bool) -> Self {
        Bank {
            id,
            sim,
            alive: true,
            issued: 0,
            dropped: 0,
            recoveries: 0,
            issue_log: record_issue.then(Vec::new),
            scratch: Vec::new(),
        }
    }

    /// Bank index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the bank can still accept writes.
    pub fn alive(&self) -> bool {
        self.alive
    }

    /// Writes issued into the bank's simulation.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Writes dropped because the bank was (or went) dead.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Power-loss recoveries performed mid-drain.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// The issue log, if recording was enabled.
    pub fn issue_log(&self) -> Option<&[u64]> {
        self.issue_log.as_deref()
    }

    /// The bank's underlying simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access to the bank's simulation — sink attachment and
    /// state restoration between runs, never mid-drain.
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Issues a drained batch of bank-local addresses. Power losses are
    /// recovered in place and the batch continues; memory exhaustion or
    /// the hard cap kills the bank and drops the rest of the batch.
    pub fn drain(&mut self, batch: &[u64]) {
        if !self.alive {
            self.dropped += batch.len() as u64;
            return;
        }
        // Reuse the scratch buffer (taken out so the loop below can
        // borrow `self` mutably); steady-state drains allocate nothing.
        let mut addrs = std::mem::take(&mut self.scratch);
        addrs.clear();
        addrs.extend(batch.iter().map(|&a| AppAddr::new(a)));
        let mut start = 0usize;
        while start < addrs.len() {
            let rest = &addrs[start..];
            match self.sim.run_batch(rest) {
                BatchStatus::Completed => {
                    self.log_issued(rest);
                    self.issued += rest.len() as u64;
                    start = addrs.len();
                }
                BatchStatus::PowerLoss { consumed } => {
                    self.log_issued(&rest[..consumed as usize]);
                    self.issued += consumed;
                    self.recoveries += 1;
                    self.sim.recover();
                    start += consumed as usize;
                }
                BatchStatus::MemoryExhausted { consumed } | BatchStatus::HardCap { consumed } => {
                    self.log_issued(&rest[..consumed as usize]);
                    self.issued += consumed;
                    self.dropped += rest.len() as u64 - consumed;
                    self.alive = false;
                    start = addrs.len();
                }
            }
        }
        self.scratch = addrs;
    }

    fn log_issued(&mut self, addrs: &[AppAddr]) {
        if let Some(log) = &mut self.issue_log {
            log.extend(addrs.iter().map(|a| a.index()));
        }
    }
}
