//! Sharded multi-bank memory-controller front-end.
//!
//! Real PCM DIMMs are not one monolithic wear-leveling domain: the
//! controller stripes the physical address space across many banks, each
//! with its own wear-leveling hardware, and services them in parallel.
//! This crate models that front-end on top of the single-domain
//! simulation stack:
//!
//! * [`wlr_base::InterleaveMap`] splits every global block address into a
//!   `(bank, local address)` pair at cache-line, page, or custom striping;
//! * each [`bank::Bank`] is an independent `(wear-leveler, reviver,
//!   device)` stack — a full [`wl_reviver::Simulation`] over its local
//!   space, seeded from its own deterministic RNG stream;
//! * a small DRAM [`wbuf::WriteBuffer`] absorbs hot-line rewrites before
//!   they cost PCM endurance;
//! * bounded per-bank [`queue::WriteQueue`]s coalesce pending writes into
//!   batches which flow through lock-free SPSC rings
//!   ([`wlr_base::spsc`]) to *pinned* per-bank drain workers — long-lived
//!   threads that own their bank stack for the whole run — or are drained
//!   inline on the submitting thread when no worker threads are
//!   available; the legacy whole-fleet barrier drain survives behind
//!   [`McFrontendBuilder::pinned`]`(false)`;
//! * an optional wear-aware [`steer::Steering`] layer biases batch
//!   placement away from heavily-worn banks (off by default — the
//!   deterministic identity mapping is the reference behavior);
//! * [`stats`] aggregates cross-bank wear, queue-latency percentiles and
//!   per-bank revival outcomes, and a [`McStopPolicy`] decides when the
//!   memory as a whole is dead.
//!
//! # Determinism
//!
//! The front-end pipeline (buffer, queues, flush scheduling, steering)
//! is a pure function of the request stream, and banks never share
//! state; the per-bank issue sequence is therefore identical whether
//! batches are consumed by pinned worker threads or inline on the
//! submitting thread, and each bank's end state is bit-identical to a
//! standalone single-bank simulation replaying the same issue log (see
//! [`McFrontend::reference_sim`]). Bank-death visibility is lagged by
//! exactly one batch in *both* modes — the front-end reads a bank's
//! fate at a flush only for batches flushed before that point — so stop
//! decisions land on the same request in threaded and inline runs.
//!
//! # Example
//!
//! ```
//! use wlr_mc::McFrontend;
//! use wlr_trace::UniformWorkload;
//!
//! let mut mc = McFrontend::builder()
//!     .banks(4)
//!     .total_blocks(1 << 12)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let mut w = UniformWorkload::new(1 << 12, 7);
//! let out = mc.run(&mut w, 10_000);
//! assert!(out.conserves_writes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod degrade;
pub mod obs;
pub mod queue;
pub mod stats;
pub mod steer;
pub mod wbuf;

pub use bank::Bank;
pub use degrade::{BankChaos, ChaosSlot, McReadError, QuarantineImage, RetryPolicy, DIR_TAG_BASE};
pub use obs::{BankPipeStat, PipeAccum, PipelineSnapshot};
pub use queue::{QueueEntry, WriteQueue};
pub use stats::{BankReport, LatencyHistogram, McOutcome, McStopPolicy, McStopReason};
pub use steer::Steering;
pub use wbuf::WriteBuffer;
// Re-exported so dependents can build chaos plans for `inject_chaos` /
// `arm_bank_faults` without a direct wlr-pcm dependency.
pub use wlr_pcm::{CrashPoint, FaultPlan};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wl_reviver::metrics::WearHistogram;
use wl_reviver::sim::{EccKind, SchemeKind};
use wl_reviver::Simulation;

use degrade::{Quarantine, Wreckage, LOCAL_MASK, LOGICAL_SHIFT};
use wlr_base::interleave::{Interleave, InterleaveError, InterleaveMap};
use wlr_base::pool::{run_pooled, PooledJob};
use wlr_base::rng::SplitMix64;
use wlr_base::spsc::{self, Consumer, Producer};
use wlr_base::stats::registry::LogHistogram;
use wlr_base::Geometry;
use wlr_trace::Workload;

/// Per-bank seed streams are derived as `mix(seed, SALT ^ bank)` so the
/// banks' endurance maps and keys are independent of each other and of
/// any single-domain run with the same seed.
const BANK_STREAM_SALT: u64 = 0x4d43_4241_4e4b_0000; // "MCBANK"

/// The shared per-bank simulation configuration; also used to build the
/// standalone reference simulation for determinism checks.
#[derive(Debug, Clone, Copy)]
struct BankConfig {
    local_blocks: u64,
    endurance_mean: f64,
    endurance_cov: f64,
    scheme: SchemeKind,
    gap_interval: u64,
    sample_interval: u64,
    seed: u64,
    verify_integrity: bool,
    ecc: Option<EccKind>,
}

impl BankConfig {
    fn build_sim(&self, bank: usize) -> Simulation {
        let mut b = Simulation::builder()
            .num_blocks(self.local_blocks)
            .endurance_mean(self.endurance_mean)
            .endurance_cov(self.endurance_cov)
            .scheme(self.scheme)
            .gap_interval(self.gap_interval)
            .verify_integrity(self.verify_integrity)
            .seed(SplitMix64::mix(self.seed, BANK_STREAM_SALT ^ bank as u64));
        if let Some(ecc) = self.ecc {
            b = b.ecc(ecc);
        }
        if self.sample_interval != 0 {
            b = b.sample_interval(self.sample_interval);
        }
        b.build()
    }
}

/// What a pinned drain worker publishes back to the front-end: how far
/// it has consumed its ring, and whether the bank survived. The
/// front-end reads `alive` only after observing `consumed` catch up to
/// its own flush count (Acquire pairs with the worker's Release), which
/// is what makes death visibility deterministic.
#[derive(Debug)]
struct BankSync {
    /// Ring entries fully drained into the bank so far.
    consumed: AtomicU64,
    /// Whether the bank was alive after its last drained batch.
    alive: AtomicBool,
}

/// Releases pinned workers on drop so an unwinding driver closure can't
/// leave them spinning forever inside `std::thread::scope`.
struct ShutdownOnDrop<'a>(&'a AtomicBool);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Builder for [`McFrontend`]; see [`McFrontend::builder`].
#[derive(Debug)]
pub struct McFrontendBuilder {
    banks: usize,
    total_blocks: u64,
    endurance_mean: f64,
    endurance_cov: f64,
    scheme: SchemeKind,
    gap_interval: u64,
    sample_interval: u64,
    seed: u64,
    interleave: Interleave,
    queue_depth: usize,
    write_buffer_lines: usize,
    parallel: bool,
    pinned: bool,
    steering: bool,
    steer_epoch: u64,
    ring_depth: usize,
    max_batch_age: u64,
    drain_workers: usize,
    record_issue: bool,
    span_sample: u64,
    stop_policy: McStopPolicy,
    degraded: bool,
    verify_integrity: bool,
    ecc: Option<EccKind>,
    retry: degrade::RetryPolicy,
}

impl McFrontendBuilder {
    /// Number of banks (default 4).
    pub fn banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Global PCM capacity in blocks, split evenly across banks (default
    /// 2¹⁴). Must divide into whole interleave rounds and valid per-bank
    /// geometries.
    pub fn total_blocks(mut self, blocks: u64) -> Self {
        self.total_blocks = blocks;
        self
    }

    /// Mean cell endurance per bank (default 10⁴).
    pub fn endurance_mean(mut self, mean: f64) -> Self {
        self.endurance_mean = mean;
        self
    }

    /// Cell-lifetime CoV (default 0.2).
    pub fn endurance_cov(mut self, cov: f64) -> Self {
        self.endurance_cov = cov;
        self
    }

    /// Per-bank controller stack (default [`SchemeKind::ReviverStartGap`]).
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Per-bank controller stack selected by scheme-registry name (e.g.
    /// `"reviver-sg"`, `"softwear-wlr"`; see
    /// [`wl_reviver::SchemeRegistry`]).
    ///
    /// # Panics
    ///
    /// Panics with the valid-name list on an unknown name; callers
    /// taking untrusted input should pre-validate through
    /// [`wl_reviver::SchemeRegistry::resolve`].
    pub fn stack(self, name: &str) -> Self {
        let kind = wl_reviver::SchemeRegistry::global().kind(name);
        self.scheme(kind)
    }

    /// Start-Gap ψ for every bank (default 100).
    pub fn gap_interval(mut self, psi: u64) -> Self {
        self.gap_interval = psi;
        self
    }

    /// Per-bank time-series sample interval (default: the simulation's
    /// own default).
    pub fn sample_interval(mut self, writes: u64) -> Self {
        self.sample_interval = writes;
        self
    }

    /// Experiment seed; each bank derives its own stream from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Striping granularity (default [`Interleave::CacheLine`]).
    pub fn interleave(mut self, interleave: Interleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Per-bank write-queue depth in distinct addresses (default 64).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// DRAM write-buffer capacity in lines; 0 disables it (default 32).
    pub fn write_buffer_lines(mut self, lines: usize) -> Self {
        self.write_buffer_lines = lines;
        self
    }

    /// Allow worker threads (default). In the pinned pipeline this
    /// permits long-lived drain workers inside [`McFrontend::run`]; in
    /// the legacy drain it steps banks on the shared pool. `false`
    /// forces fully-inline servicing; the results are bit-identical.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Use the pinned-worker pipeline (default): per-bank batches flow
    /// through SPSC rings to workers that own their bank for the whole
    /// run, with age-bounded flushes. `false` restores the legacy
    /// whole-fleet barrier drain.
    pub fn pinned(mut self, on: bool) -> Self {
        self.pinned = on;
        self
    }

    /// Enable wear-aware bank steering (default off). Steered runs stay
    /// deterministic but are not bit-identical to the unsteered mapping;
    /// see [`steer::Steering`]. Requires the pinned pipeline.
    pub fn steering(mut self, on: bool) -> Self {
        self.steering = on;
        self
    }

    /// Flushed writes per steering epoch (default 4096).
    pub fn steer_epoch(mut self, writes: u64) -> Self {
        self.steer_epoch = writes;
        self
    }

    /// Per-bank SPSC ring capacity in entries, rounded up to a power of
    /// two (default 4096).
    pub fn ring_depth(mut self, entries: usize) -> Self {
        self.ring_depth = entries;
        self
    }

    /// Maximum ticks a queued write may age before its bank is flushed
    /// (pinned pipeline only); 0 picks `12 × queue_depth` (default).
    pub fn max_batch_age(mut self, ticks: u64) -> Self {
        self.max_batch_age = ticks;
        self
    }

    /// Pinned drain worker threads for [`McFrontend::run`]; 0 (default)
    /// sizes to the machine (cores − 1, capped at the bank count).
    /// Values ≤ 1 drain inline on the submitting thread — bit-identical
    /// to any worker count.
    pub fn drain_workers(mut self, workers: usize) -> Self {
        self.drain_workers = workers;
        self
    }

    /// Record every bank's issue log for determinism checks (costs
    /// memory proportional to issued writes; default off).
    pub fn record_issue(mut self, on: bool) -> Self {
        self.record_issue = on;
        self
    }

    /// Sample one in `n` submits for wall-clock span timing
    /// (enqueue → provably serviced); 0 (default) disables sampling.
    /// Spans land in the histogram installed via
    /// [`McFrontend::set_span_histogram`].
    pub fn span_sample(mut self, n: u64) -> Self {
        self.span_sample = n;
        self
    }

    /// Global-death policy (default [`McStopPolicy::FirstBankDead`]).
    pub fn stop_policy(mut self, policy: McStopPolicy) -> Self {
        self.stop_policy = policy;
        self
    }

    /// Enable degraded-mode survival (default off): a dead bank is
    /// quarantined — its in-flight writes rescued and live lines migrated
    /// into the directory — instead of dropping traffic, and the array
    /// keeps serving at N−1 capacity. Bit-identical to a plain run when
    /// no bank dies. Usually paired with [`McStopPolicy::Quorum`].
    pub fn degraded(mut self, on: bool) -> Self {
        self.degraded = on;
        self
    }

    /// Run every bank with its integrity oracle on (default off). Costs
    /// the per-write oracle bookkeeping; required for quarantine to
    /// migrate line *contents* and for [`McFrontend::read`] to return
    /// meaningful tags.
    pub fn verify_integrity(mut self, on: bool) -> Self {
        self.verify_integrity = on;
        self
    }

    /// Per-bank error-correction scheme (default: the simulation's own
    /// default, ECP6).
    pub fn ecc(mut self, ecc: EccKind) -> Self {
        self.ecc = Some(ecc);
        self
    }

    /// Retries per transient read error before the typed error surfaces
    /// (default 3).
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.retry.max_retries = retries;
        self
    }

    /// Base spin count for the exponential retry backoff (default 64).
    pub fn retry_backoff(mut self, spins: u32) -> Self {
        self.retry.backoff_spins = spins;
        self
    }

    /// Constructs the front-end.
    ///
    /// # Errors
    ///
    /// [`InterleaveError`] when the bank count or stripe is zero or the
    /// global space does not divide into whole interleave rounds.
    ///
    /// # Panics
    ///
    /// Panics when `total_blocks` is not a valid geometry (a whole number
    /// of pages) or a bank's share is too small for a simulation.
    pub fn build(self) -> Result<McFrontend, InterleaveError> {
        let geo = Geometry::builder()
            .num_blocks(self.total_blocks)
            .build()
            .expect("total_blocks must form a whole number of pages");
        let stripe = self.interleave.stripe_blocks(&geo);
        let map = InterleaveMap::new(self.banks as u64, stripe)?;
        let local_blocks = map.local_space(self.total_blocks)?;
        let cfg = BankConfig {
            local_blocks,
            endurance_mean: self.endurance_mean,
            endurance_cov: self.endurance_cov,
            scheme: self.scheme,
            gap_interval: self.gap_interval,
            sample_interval: self.sample_interval,
            seed: self.seed,
            verify_integrity: self.verify_integrity,
            ecc: self.ecc,
        };
        if self.degraded {
            assert!(self.pinned, "degraded mode requires the pinned pipeline");
            // Ring entries carry the logical bank in bits 48+; the local
            // space and bank count must leave that encoding unambiguous.
            assert!(
                local_blocks <= degrade::LOCAL_MASK,
                "degraded mode: local space must fit in {LOGICAL_SHIFT} bits"
            );
            assert!(
                self.banks <= (1 << (64 - LOGICAL_SHIFT)),
                "degraded mode: too many banks for the logical encoding"
            );
        }
        let banks: Vec<Bank> = (0..self.banks)
            .map(|i| {
                let mut b = Bank::new(i, cfg.build_sim(i), self.record_issue);
                b.set_degraded(self.degraded);
                b.set_retry(self.retry);
                b
            })
            .collect();
        let chaos_slots: Vec<Arc<ChaosSlot>> = banks.iter().map(Bank::chaos_slot).collect();
        let wreckage: Vec<Arc<Wreckage>> = banks.iter().map(Bank::wreckage).collect();
        let queues: Vec<WriteQueue> = (0..self.banks)
            .map(|_| WriteQueue::new(self.queue_depth, local_blocks))
            .collect();
        let mut producers = Vec::with_capacity(self.banks);
        let mut consumers = Vec::with_capacity(self.banks);
        for _ in 0..self.banks {
            let (p, c) = spsc::ring(self.ring_depth.max(1));
            producers.push(p);
            consumers.push(Some(c));
        }
        let sync: Arc<Vec<BankSync>> = Arc::new(
            (0..self.banks)
                .map(|_| BankSync {
                    consumed: AtomicU64::new(0),
                    alive: AtomicBool::new(true),
                })
                .collect(),
        );
        let wbuf = WriteBuffer::new(self.write_buffer_lines, self.total_blocks);
        let max_batch_age = if self.max_batch_age == 0 {
            // Ages past ~12 × depth stop paying: at high bank counts the
            // round-robin probe adds ~one probe cycle of lag, and the
            // tail (age + probe lag + service) must stay inside the
            // latency budget the bench tracks.
            12 * self.queue_depth as u64
        } else {
            self.max_batch_age
        };
        Ok(McFrontend {
            map,
            cfg,
            total_blocks: self.total_blocks,
            banks,
            queues,
            wbuf,
            latency: LatencyHistogram::new(),
            tick: 0,
            requests: 0,
            drains: 0,
            parallel: self.parallel,
            pinned: self.pinned,
            stop_policy: self.stop_policy,
            stop: None,
            producers,
            consumers,
            sync,
            busy_until: vec![0; self.banks],
            flushed: vec![0; self.banks],
            bank_dead: vec![false; self.banks],
            dead_count: 0,
            max_batch_age,
            age_cursor: 0,
            oldest_arrival: vec![u64::MAX; self.banks],
            entry_buf: Vec::new(),
            addr_buf: Vec::new(),
            ring_buf: Vec::new(),
            legacy_batches: (0..self.banks).map(|_| Vec::new()).collect(),
            workers_active: false,
            drain_workers: self.drain_workers,
            pipe: PipeAccum::new(),
            span_sample: self.span_sample,
            span_countdown: self.span_sample.max(1),
            span_hist: None,
            span_pending: vec![None; self.banks],
            span_probes: vec![None; self.banks],
            steer: self
                .steering
                .then(|| Steering::new(self.banks, self.steer_epoch)),
            degrade: self.degraded.then(|| Quarantine::new(self.banks)),
            chaos_slots,
            wreckage,
        })
    }
}

/// The multi-bank memory-controller front-end. See the crate docs.
#[derive(Debug)]
pub struct McFrontend {
    map: InterleaveMap,
    cfg: BankConfig,
    total_blocks: u64,
    banks: Vec<Bank>,
    queues: Vec<WriteQueue>,
    wbuf: WriteBuffer,
    latency: LatencyHistogram,
    /// Front-end arrival clock: one tick per submitted request. Bank
    /// service completions run on per-bank service clocks (`busy_until`).
    tick: u64,
    requests: u64,
    drains: u64,
    parallel: bool,
    pinned: bool,
    stop_policy: McStopPolicy,
    stop: Option<McStopReason>,
    /// Producer half of each bank's SPSC ring.
    producers: Vec<Producer>,
    /// Consumer halves; `None` while lent to a pinned worker thread.
    consumers: Vec<Option<Consumer>>,
    /// Worker→front-end progress/death publication, per bank.
    sync: Arc<Vec<BankSync>>,
    /// Per-bank service clock: when the bank finishes its queued batches.
    busy_until: Vec<u64>,
    /// Entries flushed into each bank's ring so far (front-end view).
    flushed: Vec<u64>,
    /// Deterministically-lagged death mirror (see crate docs).
    bank_dead: Vec<bool>,
    /// Count of `true` entries in `bank_dead`, so the per-flush stop
    /// check is O(1) instead of a scan over every bank.
    dead_count: usize,
    /// Age bound: a queue whose oldest entry has waited this many ticks
    /// is flushed even if not full.
    max_batch_age: u64,
    /// Round-robin cursor for the age check (one queue probed per
    /// submit, so the probe cost stays O(1)).
    age_cursor: usize,
    /// Oldest pending arrival tick per logical bank (`u64::MAX` when the
    /// queue is empty). A dense mirror of `WriteQueue::front_arrival` so
    /// the per-submit age probe reads one contiguous word instead of
    /// chasing a cold queue struct.
    oldest_arrival: Vec<u64>,
    /// Reused `(address, arrival)` buffer for queue flushes.
    entry_buf: Vec<QueueEntry>,
    /// Reused address buffer for queue flushes (feeds the ring or the
    /// bank directly).
    addr_buf: Vec<u64>,
    /// Reused address buffer for inline ring consumption.
    ring_buf: Vec<u64>,
    /// Reused per-bank batch buffers for the legacy barrier drain.
    legacy_batches: Vec<Vec<u64>>,
    /// Whether pinned workers currently own the banks and consumers.
    workers_active: bool,
    drain_workers: usize,
    /// Always-on flush-path accumulators (batch sizes, flush ages).
    pipe: PipeAccum,
    /// Span sampling period (0 = off); see
    /// [`McFrontendBuilder::span_sample`].
    span_sample: u64,
    /// Requests until the next sampled span (counts down from
    /// `span_sample`; unused when sampling is off).
    span_countdown: u64,
    /// Destination for sampled span timings (nanoseconds).
    span_hist: Option<LogHistogram>,
    /// Per *logical* bank: wall-clock stamp of a sampled enqueue waiting
    /// to ride the bank's next flush.
    span_pending: Vec<Option<std::time::Instant>>,
    /// Per *physical* bank: an in-flight probe `(flushed target, t0)` —
    /// completed once the bank's `consumed` count reaches the target.
    /// `sync_bank` guarantees at most one batch is in flight per bank,
    /// so a probe is always complete by the bank's next flush.
    span_probes: Vec<Option<(u64, std::time::Instant)>>,
    steer: Option<Steering>,
    /// Quarantine state; present only in degraded mode.
    degrade: Option<Quarantine>,
    /// Per-bank chaos mailboxes (shared with the banks themselves).
    chaos_slots: Vec<Arc<ChaosSlot>>,
    /// Per-bank wreckage buffers (shared with the banks themselves).
    wreckage: Vec<Arc<Wreckage>>,
}

impl McFrontend {
    /// Starts building a front-end with the default configuration.
    pub fn builder() -> McFrontendBuilder {
        McFrontendBuilder {
            banks: 4,
            total_blocks: 1 << 14,
            endurance_mean: 1e4,
            endurance_cov: 0.2,
            scheme: SchemeKind::ReviverStartGap,
            gap_interval: 100,
            sample_interval: 0,
            seed: 0,
            interleave: Interleave::CacheLine,
            queue_depth: 64,
            write_buffer_lines: 32,
            parallel: true,
            pinned: true,
            steering: false,
            steer_epoch: 4096,
            ring_depth: 4096,
            max_batch_age: 0,
            drain_workers: 0,
            record_issue: false,
            span_sample: 0,
            stop_policy: McStopPolicy::FirstBankDead,
            degraded: false,
            verify_integrity: false,
            ecc: None,
            retry: degrade::RetryPolicy::default(),
        }
    }

    /// The global ↔ per-bank address mapping in use.
    pub fn map(&self) -> &InterleaveMap {
        &self.map
    }

    /// The banks, in bank order.
    ///
    /// # Panics
    ///
    /// Panics if called while pinned workers own the banks (never
    /// observable from outside: workers live only inside [`run`](Self::run)).
    pub fn banks(&self) -> &[Bank] {
        assert!(!self.workers_active, "banks are owned by drain workers");
        &self.banks
    }

    /// Requests submitted so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Current front-end clock value.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The stop reason, once the stop policy has tripped.
    pub fn stopped(&self) -> Option<McStopReason> {
        self.stop
    }

    /// The steering layer, when enabled.
    pub fn steering(&self) -> Option<&Steering> {
        self.steer.as_ref()
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.flushed.len()
    }

    /// Queue-latency histogram over everything flushed so far.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The flush-path accumulators (batch sizes, flush ages).
    pub fn pipe(&self) -> &PipeAccum {
        &self.pipe
    }

    /// Installs the destination histogram for sampled span timings (see
    /// [`McFrontendBuilder::span_sample`]). Spans are recorded in
    /// nanoseconds.
    pub fn set_span_histogram(&mut self, hist: LogHistogram) {
        self.span_hist = Some(hist);
    }

    /// Mutable access to bank `bank`'s simulation — for sink attachment
    /// and state restoration between runs.
    ///
    /// # Panics
    ///
    /// Panics while pinned workers own the banks.
    pub fn bank_sim_mut(&mut self, bank: usize) -> &mut Simulation {
        assert!(!self.workers_active, "banks are owned by drain workers");
        self.banks[bank].sim_mut()
    }

    /// Assembles a point-in-time [`PipelineSnapshot`]. Safe to call
    /// while pinned workers are live: per-bank progress comes from the
    /// same `BankSync` publication the death-lag protocol maintains, so
    /// per-bank numbers may lag the workers by the in-flight batch but
    /// are never torn.
    pub fn pipeline_snapshot(&self) -> PipelineSnapshot {
        let banks = (0..self.flushed.len())
            .map(|i| {
                let consumed = self.sync[i].consumed.load(Ordering::Acquire);
                BankPipeStat {
                    bank: i,
                    flushed: self.flushed[i],
                    consumed,
                    occupancy: self.flushed[i].saturating_sub(consumed),
                    busy_until: self.busy_until[i],
                    dead: self.bank_dead[i],
                }
            })
            .collect();
        let (p50, p99, p999) = if self.latency.is_empty() {
            (0, 0, 0)
        } else {
            (self.latency.p50(), self.latency.p99(), self.latency.p999())
        };
        PipelineSnapshot {
            requests: self.requests,
            ticks: self.tick,
            drains: self.drains,
            accum: self.pipe.clone(),
            steer_rotations: self.steer.as_ref().map_or(0, Steering::rotations),
            p50_ticks: p50,
            p99_ticks: p99,
            p999_ticks: p999,
            quarantines: self.degrade.as_ref().map_or(0, |q| q.quarantines),
            redirected: self.degrade.as_ref().map_or(0, |q| q.redirected),
            migrated_lines: self.degrade.as_ref().map_or(0, |q| q.migrated_lines),
            directory_lines: self
                .degrade
                .as_ref()
                .map_or(0, |q| q.directory.len() as u64),
            banks,
        }
    }

    /// A fresh standalone simulation configured identically to bank
    /// `bank` — replaying that bank's issue log through it must
    /// reproduce the bank's fingerprint bit for bit.
    pub fn reference_sim(&self, bank: usize) -> Simulation {
        self.cfg.build_sim(bank)
    }

    /// Posts a chaos command into bank `bank`'s mailbox; the bank
    /// applies it at its next batch boundary. Safe to call while pinned
    /// workers own the banks — this is the runtime fault-injection
    /// entry point for a live pipeline.
    pub fn inject_chaos(&self, bank: usize, cmd: BankChaos) {
        self.chaos_slots[bank].post(cmd);
    }

    /// Arms device faults directly on bank `bank` (indices relative to
    /// the bank's current access counts). Unlike
    /// [`inject_chaos`](Self::inject_chaos) this takes effect
    /// immediately, which makes fault positions exactly predictable in
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics while pinned workers own the banks.
    pub fn arm_bank_faults(&mut self, bank: usize, plan: FaultPlan) {
        assert!(!self.workers_active, "banks are owned by drain workers");
        self.banks[bank].sim_mut().arm_faults(plan);
    }

    /// Mutable access to every bank — parallel state restoration after a
    /// restart.
    ///
    /// # Panics
    ///
    /// Panics while pinned workers own the banks.
    pub fn banks_mut(&mut self) -> &mut [Bank] {
        assert!(!self.workers_active, "banks are owned by drain workers");
        &mut self.banks
    }

    /// Reads global line `global` as the array currently serves it: the
    /// degraded-mode directory first (migrated and redirected lines),
    /// then the owning bank's stack, with transient errors retried per
    /// the bank's [`RetryPolicy`]. This is the post-flush PCM +
    /// directory view — the write buffer and queues are not consulted —
    /// and it addresses banks by their identity (unsteered) home.
    /// `Ok(None)` means the line is not currently tracked anywhere.
    ///
    /// # Panics
    ///
    /// Panics while pinned workers own the banks.
    pub fn read(&mut self, global: u64) -> Result<Option<u64>, McReadError> {
        assert!(!self.workers_active, "banks are owned by drain workers");
        if let Some(q) = &self.degrade {
            if let Some(&tag) = q.directory.get(&global) {
                return Ok(Some(tag));
            }
        }
        let (bank, local) = self.map.split(global);
        let home = bank as usize;
        if self.bank_dead[home] {
            // Everything the dead bank still held was migrated into the
            // directory at quarantine time.
            return Ok(None);
        }
        self.banks[home].read_local(local)
    }

    /// Snapshots the quarantine state for persistence; `None` outside
    /// degraded mode.
    pub fn quarantine_image(&self) -> Option<QuarantineImage> {
        let q = self.degrade.as_ref()?;
        Some(QuarantineImage {
            dead: self.bank_dead.clone(),
            substitutes: q
                .substitute
                .iter()
                .map(|s| s.map_or(u64::MAX, |b| b as u64))
                .collect(),
            directory: q.directory.iter().map(|(&k, &v)| (k, v)).collect(),
            dir_seq: q.dir_seq,
        })
    }

    /// Re-applies persisted quarantine state after a restart: marks the
    /// recorded banks dead *without* re-running the quarantine
    /// transition (their wreckage was already rescued in the previous
    /// life), reinstates the substitute chain and directory, and
    /// re-evaluates the stop policy.
    ///
    /// # Panics
    ///
    /// Panics outside degraded mode, while workers own the banks, or
    /// when the image's bank count differs from this front-end's.
    pub fn restore_quarantine(&mut self, img: &QuarantineImage) {
        assert!(!self.workers_active, "banks are owned by drain workers");
        assert_eq!(
            img.dead.len(),
            self.bank_dead.len(),
            "quarantine image bank count mismatch"
        );
        {
            let q = self
                .degrade
                .as_mut()
                .expect("restore_quarantine requires degraded mode");
            q.substitute = img
                .substitutes
                .iter()
                .map(|&s| (s != u64::MAX).then_some(s as usize))
                .collect();
            q.directory = img.directory.iter().copied().collect();
            q.dir_seq = img.dir_seq.max(DIR_TAG_BASE);
        }
        for (phys, &dead) in img.dead.iter().enumerate() {
            if dead && !self.bank_dead[phys] {
                self.bank_dead[phys] = true;
                self.dead_count += 1;
                self.banks[phys].force_dead();
                let s = &self.sync[phys];
                s.alive.store(false, Ordering::Relaxed);
                if let Some(st) = &mut self.steer {
                    st.exclude(phys);
                }
            }
        }
        self.check_stop();
    }

    /// Submits one write request for global block `global`. May flush
    /// the target bank's batch (pinned pipeline) or trigger a
    /// whole-fleet drain (legacy) when its queue is full.
    ///
    /// # Panics
    ///
    /// Panics when `global` is outside the configured global space.
    pub fn submit(&mut self, global: u64) {
        assert!(
            global < self.total_blocks,
            "request {global} outside the global space of {} blocks",
            self.total_blocks
        );
        self.requests += 1;
        self.tick += 1;
        if let Some(line) = self.wbuf.admit(global) {
            self.enqueue(line);
        }
        if self.pinned {
            self.age_probe();
        }
    }

    /// Flushes the write buffer, drains every queue and ring, and
    /// summarizes the run. The front-end can keep accepting requests
    /// afterwards; the outcome covers everything submitted so far.
    pub fn finish(&mut self) -> McOutcome {
        let dirty = self.wbuf.flush();
        for line in dirty {
            self.enqueue(line);
        }
        if self.pinned {
            for b in 0..self.queues.len() {
                self.flush_bank(b);
            }
            if !self.workers_active {
                for phys in 0..self.banks.len() {
                    self.drain_ring_inline(phys);
                }
            }
            // End of trace: full (no longer lagged) death reconciliation,
            // and every ring is drained so outstanding span probes are
            // all complete.
            for phys in 0..self.banks.len() {
                if !self.banks[phys].alive() {
                    self.mark_dead(phys);
                }
                self.complete_span_probe(phys);
            }
            self.check_stop();
        } else {
            self.drain_all();
        }
        let mut wear = WearHistogram::new();
        let mut revival = wl_reviver::ReviverCounters::default();
        for bank in &self.banks {
            let sim = bank.sim();
            if let Some(c) = sim.reviver_counters() {
                revival.absorb(&c);
            }
            let visible = sim.geometry().num_blocks() as usize;
            wear.merge(&WearHistogram::from_wear(
                &sim.controller().device().wear_snapshot()[..visible],
            ));
        }
        let ticks = if self.pinned {
            self.busy_until.iter().copied().fold(self.tick, u64::max)
        } else {
            self.tick
        };
        McOutcome {
            requests: self.requests,
            absorbed: self.wbuf.absorbed(),
            coalesced: self.queues.iter().map(WriteQueue::coalesced).sum(),
            issued: self.banks.iter().map(Bank::issued).sum(),
            dropped: self.banks.iter().map(Bank::dropped).sum(),
            redirected: self.degrade.as_ref().map_or(0, |q| q.redirected),
            quarantines: self.degrade.as_ref().map_or(0, |q| q.quarantines),
            migrated_lines: self.degrade.as_ref().map_or(0, |q| q.migrated_lines),
            read_retries: self.banks.iter().map(Bank::read_retries).sum(),
            retry_exhausted: self.banks.iter().map(Bank::retry_exhausted).sum(),
            drains: self.drains,
            ticks,
            stop: self.stop.unwrap_or(McStopReason::TraceComplete),
            banks: self.banks.iter().map(BankReport::from_bank).collect(),
            wear,
            latency: self.latency.clone(),
            revival,
        }
    }

    /// Submits up to `requests` writes drawn from `workload` (stopping
    /// early if the stop policy trips), then [`finish`](Self::finish)es.
    /// With the pinned pipeline and more than one drain worker
    /// available, the banks are serviced by long-lived worker threads
    /// for the whole run; the outcome is bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics when the workload's address space differs from the
    /// front-end's global space.
    pub fn run(&mut self, workload: &mut dyn Workload, requests: u64) -> McOutcome {
        assert_eq!(
            workload.len(),
            self.total_blocks,
            "workload space must equal the global space"
        );
        self.with_pipeline(|mc| {
            for _ in 0..requests {
                if mc.stop.is_some() {
                    break;
                }
                let addr = workload.next_write();
                mc.submit(addr.index());
            }
        });
        self.finish()
    }

    /// Runs `drive` with the pinned pipeline hot. When the configuration
    /// allows worker threads, per-bank drain workers own the banks and
    /// ring consumers for the whole closure, servicing everything
    /// `drive` submits concurrently; then the pipeline is run dry
    /// (write buffer → queues → rings) and the workers rejoin before
    /// this returns. Otherwise `drive` runs with inline servicing and
    /// nothing extra happens — [`finish`](Self::finish) completes the
    /// drain in every mode, exactly as before.
    ///
    /// [`run`](Self::run) is this around a workload loop; the service
    /// daemon drives its admission ring through it directly and can keep
    /// calling it (or `finish`, which leaves the front-end usable)
    /// across service intervals.
    pub fn with_pipeline<R>(&mut self, drive: impl FnOnce(&mut Self) -> R) -> R {
        let workers = self.worker_threads();
        if !self.pinned || workers <= 1 {
            return drive(self);
        }
        let banks = std::mem::take(&mut self.banks);
        let n = banks.len();
        let mut parts: Vec<Vec<(usize, Bank, Consumer)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, bank) in banks.into_iter().enumerate() {
            let cons = self.consumers[i].take().expect("consumer home before run");
            // Fixed partition: bank i is pinned to worker i mod W for the
            // whole run — no rebalancing, no cross-worker contention.
            parts[i % workers].push((i, bank, cons));
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        self.workers_active = true;
        let mut returned: Vec<(usize, Bank, Consumer)> = Vec::with_capacity(n);
        let result = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|mut part| {
                    let shutdown = Arc::clone(&shutdown);
                    let sync = Arc::clone(&self.sync);
                    scope.spawn(move || {
                        let mut batch: Vec<u64> = Vec::new();
                        loop {
                            let mut worked = false;
                            for (idx, bank, cons) in part.iter_mut() {
                                batch.clear();
                                if cons.pop_into(&mut batch) > 0 {
                                    bank.drain(&batch);
                                    let s = &sync[*idx];
                                    // `alive` first, then the Release on
                                    // `consumed`: the front-end's Acquire
                                    // of `consumed` orders the pair.
                                    s.alive.store(bank.alive(), Ordering::Relaxed);
                                    s.consumed.fetch_add(batch.len() as u64, Ordering::Release);
                                    worked = true;
                                }
                            }
                            if !worked {
                                if shutdown.load(Ordering::Acquire)
                                    && part.iter().all(|(_, _, c)| c.is_empty())
                                {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                        part
                    })
                })
                .collect();
            // If `drive` unwinds, still release the workers so the scope
            // can join them instead of deadlocking on a spin loop — and
            // catch the unwind so the banks and consumers can be
            // restored before it propagates (the caller may want to
            // persist state from its own panic handler).
            let guard = ShutdownOnDrop(&shutdown);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drive(self)));
            if r.is_ok() {
                // Hand the workers everything still buffered, then let
                // them run dry: write buffer → queues → rings.
                let dirty = self.wbuf.flush();
                for line in dirty {
                    self.enqueue(line);
                }
                for b in 0..self.queues.len() {
                    self.flush_bank(b);
                }
            }
            drop(guard);
            let mut worker_panic = None;
            for h in handles {
                match h.join() {
                    Ok(part) => returned.extend(part),
                    Err(payload) => worker_panic = Some(payload),
                }
            }
            (r, worker_panic)
        });
        self.workers_active = false;
        returned.sort_by_key(|&(i, _, _)| i);
        for (i, bank, cons) in returned {
            self.consumers[i] = Some(cons);
            self.banks.push(bank);
        }
        let (r, worker_panic) = result;
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
        match r {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// How many pinned drain workers [`run`](Self::run) would use.
    fn worker_threads(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        let w = if self.drain_workers == 0 {
            // Leave one core for the submitting front-end thread.
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .saturating_sub(1)
                .max(1)
        } else {
            self.drain_workers
        };
        w.min(self.banks.len())
    }

    /// Routes a line to its bank queue, flushing/draining first if that
    /// queue is full.
    fn enqueue(&mut self, global: u64) {
        let (bank, local) = self.map.split(global);
        let b = bank as usize;
        if self.queues[b].is_full() {
            if self.pinned {
                self.flush_bank(b);
            } else {
                self.drain_all();
            }
        }
        if self.queues[b].is_empty() {
            self.oldest_arrival[b] = self.tick;
        }
        if self.span_sample != 0 {
            // Countdown instead of `requests % span_sample`: a hardware
            // division per request costs double-digit percent of the
            // whole service loop at high bank counts.
            self.span_countdown -= 1;
            if self.span_countdown == 0 {
                self.span_countdown = self.span_sample;
                if self.span_pending[b].is_none() {
                    // Stamp this enqueue; the stamp rides the bank's next
                    // flush and completes when the bank provably serviced
                    // that batch.
                    self.span_pending[b] = Some(std::time::Instant::now());
                }
            }
        }
        self.queues[b].push(local, self.tick);
    }

    /// Probes one queue per submit (round-robin) and flushes it when its
    /// oldest entry has aged out — this bounds tail latency without a
    /// whole-fleet barrier and without scanning every queue per request.
    fn age_probe(&mut self) {
        self.age_cursor += 1;
        if self.age_cursor >= self.oldest_arrival.len() {
            self.age_cursor = 0;
        }
        let b = self.age_cursor;
        // `u64::MAX` (empty queue) saturates to an age of zero.
        if self.tick.saturating_sub(self.oldest_arrival[b]) >= self.max_batch_age {
            self.flush_bank(b);
        }
    }

    /// Flushes logical bank `logical`'s queued batch toward its
    /// (possibly steered) physical bank, accounting latency on the
    /// bank's service clock. With workers active the batch goes through
    /// the bank's SPSC ring; otherwise the ring round-trip is pure
    /// overhead and the batch drains straight into the bank — same
    /// batch, same order, bit-identical outcome.
    fn flush_bank(&mut self, logical: usize) {
        if self.queues[logical].is_empty() {
            return;
        }
        let age = self.tick.saturating_sub(self.oldest_arrival[logical]);
        self.queues[logical].take_into(&mut self.entry_buf);
        self.oldest_arrival[logical] = u64::MAX;
        let home = self.steer.as_ref().map_or(logical, |s| s.route(logical));
        // Read the bank's fate for everything flushed *before* this
        // batch (the deterministic lag; see crate docs), then decide
        // whether the fleet as a whole is dead.
        self.sync_bank(home);
        // `sync_bank` just proved the bank consumed every prior batch, so
        // any outstanding span probe on it is complete.
        self.complete_span_probe(home);
        self.check_stop();
        self.drains += 1;
        let k = self.entry_buf.len() as u64;
        self.pipe.note_flush(k, age);
        // Resolve the quarantine substitute chain *after* the sync: if
        // the sync just quarantined the home bank, this very batch
        // already reroutes instead of landing on a dead ring.
        let target = self.resolve_bank(home);
        if target != Some(home) {
            self.redirect_batch(logical, target, k);
            return;
        }
        let phys = home;
        let start = self.tick.max(self.busy_until[phys]);
        // Degraded mode tags each ring entry with its logical bank so a
        // parked tail can be re-keyed to global addresses at rescue
        // time; banks strip the tag before issuing, so the per-bank
        // issue stream stays bit-identical to a plain run.
        let encode = if self.degrade.is_some() {
            (logical as u64) << LOGICAL_SHIFT
        } else {
            0
        };
        self.addr_buf.clear();
        for (i, &(addr, arrival)) in self.entry_buf.iter().enumerate() {
            self.addr_buf.push(addr | encode);
            self.latency
                .push((start + i as u64).saturating_sub(arrival));
        }
        self.busy_until[phys] = start + k;
        if let Some(s) = &mut self.steer {
            s.note_flush(logical, phys, k);
        }
        self.flushed[phys] += k;
        if self.span_sample != 0 {
            if let Some(t0) = self.span_pending[logical].take() {
                self.span_probes[phys] = Some((self.flushed[phys], t0));
            }
        }
        if self.workers_active {
            let mut pushed = 0usize;
            loop {
                pushed += self.producers[phys].push_slice(&self.addr_buf[pushed..]);
                if pushed == self.addr_buf.len() {
                    break;
                }
                // Ring full: the pinned worker is consuming; wait for room.
                std::thread::yield_now();
            }
        } else {
            self.banks[phys].drain(&self.addr_buf);
            // Mirror the worker protocol so mode switches stay coherent.
            // Only this thread writes `consumed` in inline mode, so a
            // plain release store (no locked RMW) reaches the same total.
            let s = &self.sync[phys];
            s.alive.store(self.banks[phys].alive(), Ordering::Relaxed);
            s.consumed.store(self.flushed[phys], Ordering::Release);
        }
    }

    /// Follows the quarantine substitute chain from `home` to the bank
    /// that will actually service a batch routed there; `None` when
    /// every bank in the chain is quarantined. Outside degraded mode the
    /// home bank always services its own traffic.
    fn resolve_bank(&self, home: usize) -> Option<usize> {
        let Some(q) = &self.degrade else {
            return Some(home);
        };
        let mut cur = home;
        let mut hops = 0usize;
        while self.bank_dead[cur] {
            cur = q.substitute[cur]?;
            hops += 1;
            // Substitutes are elected among then-healthy banks, so the
            // chain is acyclic by construction.
            assert!(hops <= q.substitute.len(), "substitute chain cycled");
        }
        Some(cur)
    }

    /// Services a batch whose resolved bank is quarantined: every entry
    /// lands in the directory under a fresh tag, with its service cost
    /// charged to the substitute's clock — which is what makes N−1
    /// throughput a measured quantity. With no healthy substitute left
    /// (`target == None`) the directory still absorbs the content.
    fn redirect_batch(&mut self, logical: usize, target: Option<usize>, k: u64) {
        let start = match target {
            Some(t) => self.tick.max(self.busy_until[t]),
            None => self.tick,
        };
        let entries = std::mem::take(&mut self.entry_buf);
        {
            let q = self
                .degrade
                .as_mut()
                .expect("redirects only happen in degraded mode");
            for (i, &(addr, arrival)) in entries.iter().enumerate() {
                let tag = q.next_dir_tag();
                q.directory.insert(self.map.join(logical as u64, addr), tag);
                self.latency
                    .push((start + i as u64).saturating_sub(arrival));
            }
            q.redirected += k;
        }
        self.entry_buf = entries;
        if let Some(t) = target {
            self.busy_until[t] = start + k;
            if let Some(s) = &mut self.steer {
                s.note_flush(logical, t, k);
            }
        }
        // A redirected batch is provably serviced the moment it lands in
        // the directory, so a pending span completes here.
        if self.span_sample != 0 {
            if let Some(t0) = self.span_pending[logical].take() {
                if let Some(h) = &self.span_hist {
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    /// Completes the bank's outstanding span probe if its batch has been
    /// consumed, recording enqueue→serviced wall-clock nanoseconds.
    fn complete_span_probe(&mut self, phys: usize) {
        if self.span_sample == 0 {
            return;
        }
        if let Some((target, t0)) = self.span_probes[phys] {
            if self.sync[phys].consumed.load(Ordering::Acquire) >= target {
                if let Some(h) = &self.span_hist {
                    h.record(t0.elapsed().as_nanos() as u64);
                }
                self.span_probes[phys] = None;
            }
        }
    }

    /// Brings the front-end's death mirror for `phys` up to date with
    /// every batch flushed so far (excluding any being flushed right
    /// now). In threaded mode this waits for the pinned worker to catch
    /// up; inline mode has already consumed everything.
    fn sync_bank(&mut self, phys: usize) {
        if self.workers_active {
            let sync = &self.sync[phys];
            while sync.consumed.load(Ordering::Acquire) < self.flushed[phys] {
                std::thread::yield_now();
            }
            if !sync.alive.load(Ordering::Relaxed) {
                self.mark_dead(phys);
            }
        } else if !self.banks[phys].alive() {
            self.mark_dead(phys);
        }
    }

    /// Pops whatever the ring holds and steps the bank over it on the
    /// submitting thread (the no-worker consumption path).
    fn drain_ring_inline(&mut self, phys: usize) {
        let cons = self.consumers[phys]
            .as_mut()
            .expect("consumer is home when no workers are active");
        self.ring_buf.clear();
        if cons.pop_into(&mut self.ring_buf) > 0 {
            self.banks[phys].drain(&self.ring_buf);
            // Mirror the worker protocol so mode switches stay coherent.
            let s = &self.sync[phys];
            s.alive.store(self.banks[phys].alive(), Ordering::Relaxed);
            s.consumed
                .fetch_add(self.ring_buf.len() as u64, Ordering::Release);
        }
    }

    /// Legacy whole-fleet barrier drain: releases every queue and steps
    /// all banks over their batches — on the shared worker pool, or
    /// sequentially in bank order; both produce bit-identical bank
    /// states because banks share nothing.
    fn drain_all(&mut self) {
        let longest = self.queues.iter().map(WriteQueue::len).max().unwrap_or(0);
        if longest == 0 {
            return;
        }
        self.drains += 1;
        let drain_start = self.tick;
        self.oldest_arrival.fill(u64::MAX);
        for (q, batch) in self.queues.iter_mut().zip(self.legacy_batches.iter_mut()) {
            q.take_into(&mut self.entry_buf);
            batch.clear();
            for (i, &(addr, arrival)) in self.entry_buf.iter().enumerate() {
                batch.push(addr);
                self.latency
                    .push((drain_start + i as u64).saturating_sub(arrival));
            }
        }
        if self.parallel {
            let jobs: Vec<PooledJob<'_, ()>> = self
                .banks
                .iter_mut()
                .zip(self.legacy_batches.iter())
                .map(|(bank, batch)| {
                    let batch = batch.as_slice();
                    Box::new(move || bank.drain(batch)) as PooledJob<'_, ()>
                })
                .collect();
            run_pooled(jobs);
        } else {
            for (bank, batch) in self.banks.iter_mut().zip(self.legacy_batches.iter()) {
                bank.drain(batch);
            }
        }
        self.tick += longest as u64;
        for i in 0..self.banks.len() {
            if !self.banks[i].alive() {
                self.mark_dead(i);
            }
        }
        self.check_stop();
    }

    /// Marks physical bank `phys` dead in the lagged mirror (idempotent).
    /// In degraded mode the first observation of a death also runs the
    /// quarantine transition.
    fn mark_dead(&mut self, phys: usize) {
        if !self.bank_dead[phys] {
            self.bank_dead[phys] = true;
            self.dead_count += 1;
            if self.degrade.is_some() {
                self.quarantine(phys);
            }
        }
    }

    /// The quarantine transition for a freshly-observed bank death:
    /// elects the least-loaded healthy bank as substitute, excludes the
    /// dead bank from steering rotations, and replays its wreckage into
    /// the directory — evacuated oracle lines first, then parked writes,
    /// so a parked rewrite of a migrated line wins (it is newer).
    ///
    /// The lag-one death protocol guarantees the wreckage is complete
    /// and quiescent here: the death was observed only after the bank's
    /// worker provably consumed every batch flushed at it.
    ///
    /// Directory keys are exact under identity routing. With steering
    /// enabled, evacuated lines are keyed as if the dead physical bank
    /// were its own logical home — an approximation, since earlier
    /// rotations may have steered other logical stripes there; parked
    /// writes carry their logical bank in-band and are always exact.
    fn quarantine(&mut self, phys: usize) {
        let n = self.flushed.len();
        // `flushed` is the front-end's own wear proxy — usable even
        // while pinned workers own the banks.
        let substitute = (0..n)
            .filter(|&b| !self.bank_dead[b])
            .min_by_key(|&b| (self.flushed[b], b));
        if let Some(s) = &mut self.steer {
            s.exclude(phys);
        }
        let evac: Vec<(u64, u64)> = std::mem::take(
            &mut *self.wreckage[phys]
                .evacuated
                .lock()
                .expect("wreckage poisoned"),
        );
        let parked: Vec<u64> = std::mem::take(
            &mut *self.wreckage[phys]
                .parked
                .lock()
                .expect("wreckage poisoned"),
        );
        let moved = parked.len() as u64;
        let q = self
            .degrade
            .as_mut()
            .expect("quarantine requires degraded mode");
        q.substitute[phys] = substitute;
        q.quarantines += 1;
        for (local, tag) in evac {
            q.directory.insert(self.map.join(phys as u64, local), tag);
            q.migrated_lines += 1;
        }
        for e in parked {
            let (logical, local) = (e >> LOGICAL_SHIFT, e & LOCAL_MASK);
            let tag = q.next_dir_tag();
            q.directory.insert(self.map.join(logical, local), tag);
        }
        q.redirected += moved;
        if let Some(sub) = substitute {
            // The rescue replay is real service work: charge it to the
            // substitute's clock so degraded throughput reflects it.
            self.busy_until[sub] += moved;
        }
    }

    /// Evaluates the stop policy over the death mirror.
    #[inline]
    fn check_stop(&mut self) {
        if self.dead_count == 0 || self.stop.is_some() {
            return;
        }
        match self.stop_policy {
            McStopPolicy::FirstBankDead => {
                let first = self
                    .bank_dead
                    .iter()
                    .position(|&d| d)
                    .expect("dead count is nonzero");
                self.stop = Some(McStopReason::BankDead(first));
            }
            McStopPolicy::Quorum(frac) => {
                if self.dead_count as f64 / self.bank_dead.len() as f64 >= frac {
                    self.stop = Some(McStopReason::QuorumDead(self.dead_count));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_trace::UniformWorkload;

    #[test]
    fn stack_name_selects_the_registry_scheme() {
        // A by-name build must be bit-identical to the by-kind build.
        let run = |mc: McFrontendBuilder| {
            let mut mc = mc
                .banks(2)
                .total_blocks(1 << 10)
                .endurance_mean(1e9)
                .seed(9)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 10, 9);
            mc.run(&mut w, 10_000);
            (0..2)
                .map(|b| mc.bank_sim_mut(b).fingerprint())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(McFrontend::builder().stack("reviver-sr")),
            run(McFrontend::builder().scheme(SchemeKind::ReviverSecurityRefresh)),
        );
    }

    #[test]
    #[should_panic(expected = "unknown stack")]
    fn unknown_stack_name_panics_with_the_valid_list() {
        McFrontend::builder().stack("no-such-stack");
    }

    #[test]
    fn traffic_splits_across_banks_and_conserves_writes() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .write_buffer_lines(0)
            .seed(3)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 12, 3);
        let out = mc.run(&mut w, 20_000);
        assert_eq!(out.stop, McStopReason::TraceComplete);
        assert!(out.conserves_writes(), "{out:?}");
        assert_eq!(out.requests, 20_000);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.banks.len(), 2);
        for report in &out.banks {
            // Uniform traffic over 2 banks: both get a substantial share.
            assert!(
                report.writes_issued > 6_000,
                "bank {} starved: {}",
                report.bank,
                report.writes_issued
            );
        }
        assert_eq!(out.wear.blocks(), 1 << 12);
        assert!(!out.latency.is_empty());
        assert!(out.drains > 0);
    }

    #[test]
    fn write_buffer_absorbs_hot_line() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .write_buffer_lines(4)
            .seed(4)
            .build()
            .unwrap();
        for _ in 0..1_000 {
            mc.submit(17);
        }
        let out = mc.finish();
        assert_eq!(out.absorbed, 999, "all rewrites of the hot line absorb");
        assert_eq!(out.issued, 1, "only the flushed line reaches PCM");
        assert!(out.conserves_writes());
    }

    #[test]
    fn parallel_and_sequential_drains_are_bit_identical() {
        let run = |parallel: bool| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(2_000.0)
                .gap_interval(8)
                .parallel(parallel)
                .seed(11)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 12, 11);
            mc.run(&mut w, 40_000)
        };
        let par = run(true);
        let seq = run(false);
        assert_eq!(par.banks.len(), seq.banks.len());
        for (p, s) in par.banks.iter().zip(&seq.banks) {
            assert_eq!(p.fingerprint, s.fingerprint, "bank {} diverged", p.bank);
            assert_eq!(p.writes_issued, s.writes_issued);
        }
        assert_eq!(par.issued, seq.issued);
        assert_eq!(par.coalesced, seq.coalesced);
        assert_eq!(par.absorbed, seq.absorbed);
    }

    #[test]
    fn forced_worker_threads_match_inline_bit_for_bit() {
        // Two pinned workers on however many cores the machine has must
        // produce exactly the inline (zero-thread) result — the whole
        // point of the deterministic pipeline.
        let run = |workers: usize| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(2_000.0)
                .gap_interval(8)
                .drain_workers(workers)
                .seed(11)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 12, 11);
            mc.run(&mut w, 40_000)
        };
        let threaded = run(2);
        let inline = run(1);
        for (t, i) in threaded.banks.iter().zip(&inline.banks) {
            assert_eq!(t.fingerprint, i.fingerprint, "bank {} diverged", t.bank);
            assert_eq!(t.writes_issued, i.writes_issued);
        }
        assert_eq!(threaded.requests, inline.requests);
        assert_eq!(threaded.issued, inline.issued);
        assert_eq!(threaded.ticks, inline.ticks);
        assert_eq!(threaded.latency.p99(), inline.latency.p99());
    }

    #[test]
    fn pinned_and_legacy_issue_identical_streams_without_buffers() {
        // With coalescing structurally disabled (duplicate-free stream,
        // no write buffer), both drain architectures must issue exactly
        // the same per-bank sequences — flush timing differs, content
        // cannot.
        let space = 1u64 << 10;
        let mut addrs: Vec<u64> = (0..space).collect();
        wlr_base::rng::Rng::seed_from(9).shuffle(&mut addrs);
        let run = |pinned: bool| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(space)
                .endurance_mean(1e9)
                .write_buffer_lines(0)
                .record_issue(true)
                .pinned(pinned)
                .seed(9)
                .build()
                .unwrap();
            for &a in &addrs {
                mc.submit(a);
            }
            mc.finish();
            let logs: Vec<Vec<u64>> = (0..4)
                .map(|i| mc.banks()[i].issue_log().unwrap().to_vec())
                .collect();
            logs
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn first_dead_bank_stops_the_run() {
        let mut mc = McFrontend::builder()
            .banks(4)
            .total_blocks(1 << 10)
            .endurance_mean(300.0)
            .scheme(SchemeKind::EccOnly)
            .seed(5)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 10, 5);
        let out = mc.run(&mut w, 10_000_000);
        assert!(
            matches!(out.stop, McStopReason::BankDead(_)),
            "expected a dead bank, got {:?}",
            out.stop
        );
        assert!(out.conserves_writes(), "{out:?}");
        assert!(out.banks.iter().any(|b| !b.alive));
    }

    #[test]
    fn page_interleaving_builds_and_runs() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .interleave(Interleave::Page)
            .endurance_mean(1e9)
            .seed(6)
            .build()
            .unwrap();
        assert_eq!(mc.map().stripe_blocks(), 64);
        let mut w = UniformWorkload::new(1 << 12, 6);
        let out = mc.run(&mut w, 5_000);
        assert!(out.conserves_writes());
    }

    #[test]
    fn indivisible_space_is_rejected() {
        let err = McFrontend::builder()
            .banks(3)
            .total_blocks(1 << 12)
            .interleave(Interleave::Page)
            .build();
        assert!(err.is_err(), "4096 blocks over 3 page-striped banks");
    }

    #[test]
    fn with_pipeline_matches_run_bit_for_bit() {
        // Driving submits through with_pipeline + finish must be
        // indistinguishable from run() — it is the same machinery.
        let build = || {
            McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(2_000.0)
                .gap_interval(8)
                .drain_workers(2)
                .seed(13)
                .build()
                .unwrap()
        };
        let mut a = build();
        let mut w = UniformWorkload::new(1 << 12, 13);
        let via_run = a.run(&mut w, 30_000);
        let mut b = build();
        let mut w = UniformWorkload::new(1 << 12, 13);
        b.with_pipeline(|mc| {
            for _ in 0..30_000 {
                if mc.stop.is_some() {
                    break;
                }
                mc.submit(w.next_write().index());
            }
        });
        let via_pipeline = b.finish();
        assert_eq!(via_run.requests, via_pipeline.requests);
        assert_eq!(via_run.issued, via_pipeline.issued);
        assert_eq!(via_run.ticks, via_pipeline.ticks);
        for (x, y) in via_run.banks.iter().zip(&via_pipeline.banks) {
            assert_eq!(x.fingerprint, y.fingerprint, "bank {} diverged", x.bank);
        }
    }

    #[test]
    fn span_sampling_records_and_snapshot_reflects_progress() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .write_buffer_lines(0)
            .span_sample(16)
            .seed(21)
            .build()
            .unwrap();
        let hist = LogHistogram::new();
        mc.set_span_histogram(hist.clone());
        let mut w = UniformWorkload::new(1 << 12, 21);
        let out = mc.run(&mut w, 10_000);
        assert!(out.conserves_writes());
        let spans = hist.snapshot();
        assert!(spans.count > 0, "sampled spans must have completed");
        let snap = mc.pipeline_snapshot();
        assert_eq!(snap.requests, 10_000);
        assert_eq!(snap.drains, out.drains);
        assert_eq!(snap.accum.batches, out.drains);
        // Coalesced rewrites never leave the queue as distinct entries.
        assert_eq!(snap.accum.batch_entries, out.issued);
        assert_eq!(snap.total_occupancy(), 0, "finish() ran the rings dry");
        assert_eq!(snap.p999_ticks, out.latency.p999());
        assert!(snap.accum.mean_batch() > 1.0);
        for b in &snap.banks {
            assert_eq!(b.flushed, b.consumed);
        }
    }

    #[test]
    fn span_sampling_does_not_change_outcomes() {
        let run = |sample: u64| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(2_000.0)
                .gap_interval(8)
                .span_sample(sample)
                .seed(11)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 12, 11);
            mc.run(&mut w, 40_000)
        };
        let on = run(64);
        let off = run(0);
        assert_eq!(on.issued, off.issued);
        assert_eq!(on.ticks, off.ticks);
        for (x, y) in on.banks.iter().zip(&off.banks) {
            assert_eq!(x.fingerprint, y.fingerprint, "bank {} diverged", x.bank);
        }
    }

    #[test]
    fn aged_batches_flush_without_filling_the_queue() {
        // One hot bank, then silence on it: the round-robin age probe
        // must flush its sub-capacity batch within max_batch_age ticks.
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .write_buffer_lines(0)
            .max_batch_age(16)
            .seed(8)
            .build()
            .unwrap();
        mc.submit(0); // bank 0, one entry — far below queue_depth
        for i in 0..64 {
            mc.submit(2 * i + 1); // odd globals: all land on bank 1
        }
        assert_eq!(
            mc.banks()[0].issued(),
            1,
            "aged single-entry batch must have flushed mid-run"
        );
    }

    #[test]
    fn degraded_mode_is_bit_identical_when_no_faults_fire() {
        // With no bank deaths, degraded mode must be invisible: the
        // logical encoding is stripped before issue and no other code
        // path changes — including under steering.
        let run = |degraded: bool, steering: bool| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(1e9)
                .steering(steering)
                .degraded(degraded)
                .stop_policy(McStopPolicy::Quorum(1.0))
                .seed(17)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 12, 17);
            mc.run(&mut w, 30_000)
        };
        for steering in [false, true] {
            let on = run(true, steering);
            let off = run(false, steering);
            assert_eq!(on.redirected, 0);
            assert_eq!(on.quarantines, 0);
            assert_eq!(on.ticks, off.ticks, "steering={steering}");
            assert_eq!(on.issued, off.issued);
            for (x, y) in on.banks.iter().zip(&off.banks) {
                assert_eq!(x.fingerprint, y.fingerprint, "bank {} diverged", x.bank);
            }
        }
    }

    #[test]
    fn degraded_death_run_matches_plain_fingerprints_and_conserves() {
        // Natural bank deaths: the degraded run redirects exactly the
        // writes the plain run drops, and the per-bank issue streams —
        // hence fingerprints — stay identical.
        let run = |degraded: bool| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 10)
                .endurance_mean(300.0)
                .scheme(SchemeKind::EccOnly)
                .stop_policy(McStopPolicy::Quorum(1.0))
                .degraded(degraded)
                .seed(5)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 10, 5);
            mc.run(&mut w, 2_000_000)
        };
        let deg = run(true);
        let plain = run(false);
        assert!(deg.quarantines >= 1, "{deg:?}");
        assert_eq!(deg.dropped, 0, "degraded mode never drops writes");
        assert_eq!(deg.redirected, plain.dropped);
        assert!(deg.conserves_writes(), "{deg:?}");
        assert!(plain.conserves_writes());
        for (x, y) in deg.banks.iter().zip(&plain.banks) {
            assert_eq!(x.fingerprint, y.fingerprint, "bank {} diverged", x.bank);
        }
    }

    #[test]
    fn quarantine_rescues_lines_and_keeps_serving() {
        let mut mc = McFrontend::builder()
            .banks(4)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .verify_integrity(true)
            .degraded(true)
            .stop_policy(McStopPolicy::Quorum(1.0))
            .seed(33)
            .build()
            .unwrap();
        mc.inject_chaos(1, BankChaos::KillAfter(64));
        let mut w = UniformWorkload::new(1 << 12, 33);
        let out = mc.run(&mut w, 20_000);
        assert_eq!(
            out.stop,
            McStopReason::TraceComplete,
            "fleet keeps serving at N-1"
        );
        assert!(out.conserves_writes(), "{out:?}");
        assert_eq!(out.quarantines, 1);
        assert_eq!(out.dropped, 0);
        assert!(out.redirected > 0);
        assert!(out.migrated_lines > 0);
        let snap = mc.pipeline_snapshot();
        assert_eq!(snap.quarantines, 1);
        assert!(snap.directory_lines > 0);
        assert_eq!(snap.dead_banks(), 1);
        // Every directory line reads back with its recorded tag.
        let img = mc.quarantine_image().unwrap();
        assert!(img.dead[1]);
        for &(global, tag) in &img.directory {
            assert_eq!(mc.read(global), Ok(Some(tag)));
        }
        // Healthy banks answer reads for their own tracked lines.
        let lines = mc.banks()[0].sim().tracked_lines();
        assert!(!lines.is_empty());
        for &(local, tag) in lines.iter().take(8) {
            let global = mc.map().join(0, local);
            assert_eq!(mc.read(global), Ok(Some(tag)));
        }
    }

    #[test]
    fn transient_reads_retry_and_surface_a_typed_error() {
        // ECP with zero correction entries makes every injected
        // transient uncorrectable, so the retry path is exactly
        // predictable.
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .verify_integrity(true)
            .degraded(true)
            .ecc(EccKind::Ecp(0))
            .retry_limit(2)
            .retry_backoff(1)
            .stop_policy(McStopPolicy::Quorum(1.0))
            .seed(7)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 12, 7);
        mc.run(&mut w, 4_000);
        let (local, tag) = mc.banks()[0].sim().tracked_lines()[0];
        let global = mc.map().join(0, local);
        assert_eq!(mc.read(global), Ok(Some(tag)), "clean read before faults");
        // A short burst rides out inside the retry budget...
        mc.arm_bank_faults(0, FaultPlan::new().transient_read_burst(0, 2));
        assert_eq!(mc.read(global), Ok(Some(tag)), "retries absorb the burst");
        // ...a long burst exhausts the bounded retry and surfaces typed.
        mc.arm_bank_faults(0, FaultPlan::new().transient_read_burst(0, 16));
        assert_eq!(
            mc.read(global),
            Err(McReadError::Transient {
                bank: 0,
                attempts: 3
            })
        );
        let out = mc.finish();
        assert!(out.read_retries >= 3, "{out:?}");
        assert_eq!(out.retry_exhausted, 1);
    }

    #[test]
    fn quarantine_image_round_trips_through_restore() {
        let build = || {
            McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(1e9)
                .verify_integrity(true)
                .degraded(true)
                .stop_policy(McStopPolicy::Quorum(1.0))
                .seed(41)
                .build()
                .unwrap()
        };
        let mut mc = build();
        mc.inject_chaos(2, BankChaos::KillAfter(32));
        let mut w = UniformWorkload::new(1 << 12, 41);
        let out = mc.run(&mut w, 10_000);
        assert_eq!(out.quarantines, 1);
        let img = mc.quarantine_image().unwrap();
        assert!(img.dead[2]);
        assert!(!img.directory.is_empty());

        let mut revived = build();
        revived.restore_quarantine(&img);
        assert_eq!(revived.quarantine_image().unwrap(), img);
        // Directory content survives the restart.
        for &(global, tag) in img.directory.iter().take(16) {
            assert_eq!(revived.read(global), Ok(Some(tag)));
        }
        // New traffic at the quarantined bank redirects, never drops —
        // and restore does not re-run the quarantine transition.
        let mut w2 = UniformWorkload::new(1 << 12, 42);
        let out2 = revived.run(&mut w2, 5_000);
        assert!(out2.conserves_writes(), "{out2:?}");
        assert_eq!(out2.dropped, 0);
        assert!(out2.redirected > 0);
        assert_eq!(out2.quarantines, 0);
    }

    #[test]
    fn pipeline_survives_a_driver_panic() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .drain_workers(2)
            .seed(3)
            .build()
            .unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mc.with_pipeline(|m| {
                for i in 0..500u64 {
                    m.submit(i);
                }
                panic!("injected driver crash");
            })
        }));
        assert!(boom.is_err(), "the panic must propagate");
        // Banks and consumers are home again: the front-end still
        // finishes cleanly and accounts for everything submitted.
        let out = mc.finish();
        assert!(out.conserves_writes(), "{out:?}");
        assert_eq!(out.requests, 500);
        assert_eq!(out.banks.len(), 2);
    }
}
