//! Sharded multi-bank memory-controller front-end.
//!
//! Real PCM DIMMs are not one monolithic wear-leveling domain: the
//! controller stripes the physical address space across many banks, each
//! with its own wear-leveling hardware, and services them in parallel.
//! This crate models that front-end on top of the single-domain
//! simulation stack:
//!
//! * [`wlr_base::InterleaveMap`] splits every global block address into a
//!   `(bank, local address)` pair at cache-line, page, or custom striping;
//! * each [`bank::Bank`] is an independent `(wear-leveler, reviver,
//!   device)` stack — a full [`wl_reviver::Simulation`] over its local
//!   space, seeded from its own deterministic RNG stream;
//! * a small DRAM [`wbuf::WriteBuffer`] absorbs hot-line rewrites before
//!   they cost PCM endurance;
//! * bounded per-bank [`queue::WriteQueue`]s coalesce pending writes and
//!   release them in whole-fleet drains, stepped in parallel on the
//!   shared worker pool ([`wlr_base::run_pooled`]);
//! * [`stats`] aggregates cross-bank wear, queue-latency percentiles and
//!   per-bank revival outcomes, and a [`McStopPolicy`] decides when the
//!   memory as a whole is dead.
//!
//! # Determinism
//!
//! The front-end pipeline (buffer, queues, drain scheduling) is a pure
//! function of the request stream, and banks never share state; the
//! per-bank issue sequence is therefore identical whether drains step
//! banks in parallel or sequentially, and each bank's end state is
//! bit-identical to a standalone single-bank simulation replaying the
//! same issue log (see [`McFrontend::reference_sim`]).
//!
//! # Example
//!
//! ```
//! use wlr_mc::McFrontend;
//! use wlr_trace::UniformWorkload;
//!
//! let mut mc = McFrontend::builder()
//!     .banks(4)
//!     .total_blocks(1 << 12)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let mut w = UniformWorkload::new(1 << 12, 7);
//! let out = mc.run(&mut w, 10_000);
//! assert!(out.conserves_writes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod queue;
pub mod stats;
pub mod wbuf;

pub use bank::Bank;
pub use queue::WriteQueue;
pub use stats::{BankReport, LatencyHistogram, McOutcome, McStopPolicy, McStopReason};
pub use wbuf::WriteBuffer;

use wl_reviver::metrics::WearHistogram;
use wl_reviver::sim::SchemeKind;
use wl_reviver::Simulation;
use wlr_base::interleave::{Interleave, InterleaveError, InterleaveMap};
use wlr_base::pool::{run_pooled, PooledJob};
use wlr_base::rng::SplitMix64;
use wlr_base::Geometry;
use wlr_trace::Workload;

/// Per-bank seed streams are derived as `mix(seed, SALT ^ bank)` so the
/// banks' endurance maps and keys are independent of each other and of
/// any single-domain run with the same seed.
const BANK_STREAM_SALT: u64 = 0x4d43_4241_4e4b_0000; // "MCBANK"

/// The shared per-bank simulation configuration; also used to build the
/// standalone reference simulation for determinism checks.
#[derive(Debug, Clone, Copy)]
struct BankConfig {
    local_blocks: u64,
    endurance_mean: f64,
    endurance_cov: f64,
    scheme: SchemeKind,
    gap_interval: u64,
    sample_interval: u64,
    seed: u64,
}

impl BankConfig {
    fn build_sim(&self, bank: usize) -> Simulation {
        let mut b = Simulation::builder()
            .num_blocks(self.local_blocks)
            .endurance_mean(self.endurance_mean)
            .endurance_cov(self.endurance_cov)
            .scheme(self.scheme)
            .gap_interval(self.gap_interval)
            .seed(SplitMix64::mix(self.seed, BANK_STREAM_SALT ^ bank as u64));
        if self.sample_interval != 0 {
            b = b.sample_interval(self.sample_interval);
        }
        b.build()
    }
}

/// Builder for [`McFrontend`]; see [`McFrontend::builder`].
#[derive(Debug)]
pub struct McFrontendBuilder {
    banks: usize,
    total_blocks: u64,
    endurance_mean: f64,
    endurance_cov: f64,
    scheme: SchemeKind,
    gap_interval: u64,
    sample_interval: u64,
    seed: u64,
    interleave: Interleave,
    queue_depth: usize,
    write_buffer_lines: usize,
    parallel: bool,
    record_issue: bool,
    stop_policy: McStopPolicy,
}

impl McFrontendBuilder {
    /// Number of banks (default 4).
    pub fn banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Global PCM capacity in blocks, split evenly across banks (default
    /// 2¹⁴). Must divide into whole interleave rounds and valid per-bank
    /// geometries.
    pub fn total_blocks(mut self, blocks: u64) -> Self {
        self.total_blocks = blocks;
        self
    }

    /// Mean cell endurance per bank (default 10⁴).
    pub fn endurance_mean(mut self, mean: f64) -> Self {
        self.endurance_mean = mean;
        self
    }

    /// Cell-lifetime CoV (default 0.2).
    pub fn endurance_cov(mut self, cov: f64) -> Self {
        self.endurance_cov = cov;
        self
    }

    /// Per-bank controller stack (default [`SchemeKind::ReviverStartGap`]).
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Start-Gap ψ for every bank (default 100).
    pub fn gap_interval(mut self, psi: u64) -> Self {
        self.gap_interval = psi;
        self
    }

    /// Per-bank time-series sample interval (default: the simulation's
    /// own default).
    pub fn sample_interval(mut self, writes: u64) -> Self {
        self.sample_interval = writes;
        self
    }

    /// Experiment seed; each bank derives its own stream from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Striping granularity (default [`Interleave::CacheLine`]).
    pub fn interleave(mut self, interleave: Interleave) -> Self {
        self.interleave = interleave;
        self
    }

    /// Per-bank write-queue depth in distinct addresses (default 64).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// DRAM write-buffer capacity in lines; 0 disables it (default 32).
    pub fn write_buffer_lines(mut self, lines: usize) -> Self {
        self.write_buffer_lines = lines;
        self
    }

    /// Step banks on the shared worker pool during drains (default) or
    /// sequentially in bank order; the results are bit-identical.
    pub fn parallel(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Record every bank's issue log for determinism checks (costs
    /// memory proportional to issued writes; default off).
    pub fn record_issue(mut self, on: bool) -> Self {
        self.record_issue = on;
        self
    }

    /// Global-death policy (default [`McStopPolicy::FirstBankDead`]).
    pub fn stop_policy(mut self, policy: McStopPolicy) -> Self {
        self.stop_policy = policy;
        self
    }

    /// Constructs the front-end.
    ///
    /// # Errors
    ///
    /// [`InterleaveError`] when the bank count or stripe is zero or the
    /// global space does not divide into whole interleave rounds.
    ///
    /// # Panics
    ///
    /// Panics when `total_blocks` is not a valid geometry (a whole number
    /// of pages) or a bank's share is too small for a simulation.
    pub fn build(self) -> Result<McFrontend, InterleaveError> {
        let geo = Geometry::builder()
            .num_blocks(self.total_blocks)
            .build()
            .expect("total_blocks must form a whole number of pages");
        let stripe = self.interleave.stripe_blocks(&geo);
        let map = InterleaveMap::new(self.banks as u64, stripe)?;
        let local_blocks = map.local_space(self.total_blocks)?;
        let cfg = BankConfig {
            local_blocks,
            endurance_mean: self.endurance_mean,
            endurance_cov: self.endurance_cov,
            scheme: self.scheme,
            gap_interval: self.gap_interval,
            sample_interval: self.sample_interval,
            seed: self.seed,
        };
        let banks: Vec<Bank> = (0..self.banks)
            .map(|i| Bank::new(i, cfg.build_sim(i), self.record_issue))
            .collect();
        let queues: Vec<WriteQueue> = (0..self.banks)
            .map(|_| WriteQueue::new(self.queue_depth, local_blocks))
            .collect();
        let wbuf = WriteBuffer::new(self.write_buffer_lines, self.total_blocks);
        Ok(McFrontend {
            map,
            cfg,
            total_blocks: self.total_blocks,
            banks,
            queues,
            wbuf,
            latency: LatencyHistogram::new(),
            tick: 0,
            requests: 0,
            drains: 0,
            parallel: self.parallel,
            stop_policy: self.stop_policy,
            stop: None,
        })
    }
}

/// The multi-bank memory-controller front-end. See the crate docs.
#[derive(Debug)]
pub struct McFrontend {
    map: InterleaveMap,
    cfg: BankConfig,
    total_blocks: u64,
    banks: Vec<Bank>,
    queues: Vec<WriteQueue>,
    wbuf: WriteBuffer,
    latency: LatencyHistogram,
    /// Front-end clock: one tick per submitted request, plus the length
    /// of the longest released batch per drain (banks service their
    /// batches in lockstep parallel).
    tick: u64,
    requests: u64,
    drains: u64,
    parallel: bool,
    stop_policy: McStopPolicy,
    stop: Option<McStopReason>,
}

impl McFrontend {
    /// Starts building a front-end with the default configuration.
    pub fn builder() -> McFrontendBuilder {
        McFrontendBuilder {
            banks: 4,
            total_blocks: 1 << 14,
            endurance_mean: 1e4,
            endurance_cov: 0.2,
            scheme: SchemeKind::ReviverStartGap,
            gap_interval: 100,
            sample_interval: 0,
            seed: 0,
            interleave: Interleave::CacheLine,
            queue_depth: 64,
            write_buffer_lines: 32,
            parallel: true,
            record_issue: false,
            stop_policy: McStopPolicy::FirstBankDead,
        }
    }

    /// The global ↔ per-bank address mapping in use.
    pub fn map(&self) -> &InterleaveMap {
        &self.map
    }

    /// The banks, in bank order.
    pub fn banks(&self) -> &[Bank] {
        &self.banks
    }

    /// Requests submitted so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Current front-end clock value.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The stop reason, once the stop policy has tripped.
    pub fn stopped(&self) -> Option<McStopReason> {
        self.stop
    }

    /// A fresh standalone simulation configured identically to bank
    /// `bank` — replaying that bank's issue log through it must
    /// reproduce the bank's fingerprint bit for bit.
    pub fn reference_sim(&self, bank: usize) -> Simulation {
        self.cfg.build_sim(bank)
    }

    /// Submits one write request for global block `global`. May trigger a
    /// whole-fleet drain when the target bank's queue is full.
    ///
    /// # Panics
    ///
    /// Panics when `global` is outside the configured global space.
    pub fn submit(&mut self, global: u64) {
        assert!(
            global < self.total_blocks,
            "request {global} outside the global space of {} blocks",
            self.total_blocks
        );
        self.requests += 1;
        self.tick += 1;
        if let Some(line) = self.wbuf.admit(global) {
            self.enqueue(line);
        }
    }

    /// Flushes the write buffer, drains every queue, and summarizes the
    /// run. The front-end can keep accepting requests afterwards; the
    /// outcome covers everything submitted so far.
    pub fn finish(&mut self) -> McOutcome {
        let dirty = self.wbuf.flush();
        for line in dirty {
            self.enqueue(line);
        }
        self.drain_all();
        let mut wear = WearHistogram::new();
        let mut revival = wl_reviver::ReviverCounters::default();
        for bank in &self.banks {
            let sim = bank.sim();
            if let Some(c) = sim.reviver_counters() {
                revival.absorb(&c);
            }
            let visible = sim.geometry().num_blocks() as usize;
            wear.merge(&WearHistogram::from_wear(
                &sim.controller().device().wear_snapshot()[..visible],
            ));
        }
        McOutcome {
            requests: self.requests,
            absorbed: self.wbuf.absorbed(),
            coalesced: self.queues.iter().map(WriteQueue::coalesced).sum(),
            issued: self.banks.iter().map(Bank::issued).sum(),
            dropped: self.banks.iter().map(Bank::dropped).sum(),
            drains: self.drains,
            ticks: self.tick,
            stop: self.stop.unwrap_or(McStopReason::TraceComplete),
            banks: self.banks.iter().map(BankReport::from_bank).collect(),
            wear,
            latency: self.latency.clone(),
            revival,
        }
    }

    /// Submits up to `requests` writes drawn from `workload` (stopping
    /// early if the stop policy trips), then [`finish`](Self::finish)es.
    ///
    /// # Panics
    ///
    /// Panics when the workload's address space differs from the
    /// front-end's global space.
    pub fn run(&mut self, workload: &mut dyn Workload, requests: u64) -> McOutcome {
        assert_eq!(
            workload.len(),
            self.total_blocks,
            "workload space must equal the global space"
        );
        for _ in 0..requests {
            if self.stop.is_some() {
                break;
            }
            let addr = workload.next_write();
            self.submit(addr.index());
        }
        self.finish()
    }

    /// Routes a line to its bank queue, draining the whole fleet first if
    /// that queue is full.
    fn enqueue(&mut self, global: u64) {
        let (bank, local) = self.map.split(global);
        if self.queues[bank as usize].is_full() {
            self.drain_all();
        }
        self.queues[bank as usize].push(local, self.tick);
    }

    /// Releases every queue and steps all banks over their batches — in
    /// parallel on the worker pool, or sequentially in bank order; both
    /// produce bit-identical bank states because banks share nothing.
    fn drain_all(&mut self) {
        let longest = self.queues.iter().map(WriteQueue::len).max().unwrap_or(0);
        if longest == 0 {
            return;
        }
        self.drains += 1;
        let drain_start = self.tick;
        let mut batches = Vec::with_capacity(self.queues.len());
        for q in &mut self.queues {
            let (addrs, latencies) = q.take(drain_start);
            for l in latencies {
                self.latency.push(l);
            }
            batches.push(addrs);
        }
        if self.parallel {
            let jobs: Vec<PooledJob<'_, ()>> = self
                .banks
                .iter_mut()
                .zip(batches.iter())
                .map(|(bank, batch)| {
                    let batch = batch.as_slice();
                    Box::new(move || bank.drain(batch)) as PooledJob<'_, ()>
                })
                .collect();
            run_pooled(jobs);
        } else {
            for (bank, batch) in self.banks.iter_mut().zip(batches.iter()) {
                bank.drain(batch);
            }
        }
        self.tick += longest as u64;
        self.check_stop();
    }

    fn check_stop(&mut self) {
        if self.stop.is_some() {
            return;
        }
        let dead: Vec<usize> = self
            .banks
            .iter()
            .filter(|b| !b.alive())
            .map(Bank::id)
            .collect();
        if dead.is_empty() {
            return;
        }
        match self.stop_policy {
            McStopPolicy::FirstBankDead => self.stop = Some(McStopReason::BankDead(dead[0])),
            McStopPolicy::Quorum(frac) => {
                if dead.len() as f64 / self.banks.len() as f64 >= frac {
                    self.stop = Some(McStopReason::QuorumDead(dead.len()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_trace::UniformWorkload;

    #[test]
    fn traffic_splits_across_banks_and_conserves_writes() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .write_buffer_lines(0)
            .seed(3)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 12, 3);
        let out = mc.run(&mut w, 20_000);
        assert_eq!(out.stop, McStopReason::TraceComplete);
        assert!(out.conserves_writes(), "{out:?}");
        assert_eq!(out.requests, 20_000);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.banks.len(), 2);
        for report in &out.banks {
            // Uniform traffic over 2 banks: both get a substantial share.
            assert!(
                report.writes_issued > 6_000,
                "bank {} starved: {}",
                report.bank,
                report.writes_issued
            );
        }
        assert_eq!(out.wear.blocks(), 1 << 12);
        assert!(!out.latency.is_empty());
        assert!(out.drains > 0);
    }

    #[test]
    fn write_buffer_absorbs_hot_line() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .endurance_mean(1e9)
            .write_buffer_lines(4)
            .seed(4)
            .build()
            .unwrap();
        for _ in 0..1_000 {
            mc.submit(17);
        }
        let out = mc.finish();
        assert_eq!(out.absorbed, 999, "all rewrites of the hot line absorb");
        assert_eq!(out.issued, 1, "only the flushed line reaches PCM");
        assert!(out.conserves_writes());
    }

    #[test]
    fn parallel_and_sequential_drains_are_bit_identical() {
        let run = |parallel: bool| {
            let mut mc = McFrontend::builder()
                .banks(4)
                .total_blocks(1 << 12)
                .endurance_mean(2_000.0)
                .gap_interval(8)
                .parallel(parallel)
                .seed(11)
                .build()
                .unwrap();
            let mut w = UniformWorkload::new(1 << 12, 11);
            mc.run(&mut w, 40_000)
        };
        let par = run(true);
        let seq = run(false);
        assert_eq!(par.banks.len(), seq.banks.len());
        for (p, s) in par.banks.iter().zip(&seq.banks) {
            assert_eq!(p.fingerprint, s.fingerprint, "bank {} diverged", p.bank);
            assert_eq!(p.writes_issued, s.writes_issued);
        }
        assert_eq!(par.issued, seq.issued);
        assert_eq!(par.coalesced, seq.coalesced);
        assert_eq!(par.absorbed, seq.absorbed);
    }

    #[test]
    fn first_dead_bank_stops_the_run() {
        let mut mc = McFrontend::builder()
            .banks(4)
            .total_blocks(1 << 10)
            .endurance_mean(300.0)
            .scheme(SchemeKind::EccOnly)
            .seed(5)
            .build()
            .unwrap();
        let mut w = UniformWorkload::new(1 << 10, 5);
        let out = mc.run(&mut w, 10_000_000);
        assert!(
            matches!(out.stop, McStopReason::BankDead(_)),
            "expected a dead bank, got {:?}",
            out.stop
        );
        assert!(out.conserves_writes(), "{out:?}");
        assert!(out.banks.iter().any(|b| !b.alive));
    }

    #[test]
    fn page_interleaving_builds_and_runs() {
        let mut mc = McFrontend::builder()
            .banks(2)
            .total_blocks(1 << 12)
            .interleave(Interleave::Page)
            .endurance_mean(1e9)
            .seed(6)
            .build()
            .unwrap();
        assert_eq!(mc.map().stripe_blocks(), 64);
        let mut w = UniformWorkload::new(1 << 12, 6);
        let out = mc.run(&mut w, 5_000);
        assert!(out.conserves_writes());
    }

    #[test]
    fn indivisible_space_is_rejected() {
        let err = McFrontend::builder()
            .banks(3)
            .total_blocks(1 << 12)
            .interleave(Interleave::Page)
            .build();
        assert!(err.is_err(), "4096 blocks over 3 page-striped banks");
    }
}
