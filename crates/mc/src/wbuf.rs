//! A small DRAM write-buffer model in front of the bank queues.
//!
//! PCM controllers put a DRAM buffer between the last-level cache and the
//! PCM array so that hot lines are rewritten in DRAM instead of burning
//! PCM endurance. This model keeps the `cap` most-recently-admitted
//! distinct global lines: a request that hits the buffer is *absorbed*
//! (no PCM write happens at all); a miss admits the line and, once the
//! buffer is over capacity, evicts the oldest line to its bank queue —
//! FIFO, so eviction order is a pure function of the request stream and
//! the multi-bank run stays deterministic.

use wlr_base::dense::DenseSet;

/// FIFO write buffer over global block addresses.
///
/// Once full (the steady state) the buffer is a flat ring: admitting a
/// new line overwrites the slot at the cursor — whose occupant is by
/// construction the oldest line — so the hot path is one bitset insert,
/// one slot exchange, and one bitset remove, with no deque arithmetic.
#[derive(Debug)]
pub struct WriteBuffer {
    /// Buffered lines. Ring-ordered once `len == cap`: the oldest line
    /// sits at `cursor`. Empty forever when `cap` is zero.
    slots: Vec<u64>,
    /// Next eviction position once the buffer is full.
    cursor: usize,
    present: DenseSet,
    cap: usize,
    absorbed: u64,
}

impl WriteBuffer {
    /// A buffer of `cap` lines over a global space of `space` blocks.
    /// `cap = 0` disables buffering: every request passes straight
    /// through.
    pub fn new(cap: usize, space: u64) -> Self {
        WriteBuffer {
            slots: Vec::with_capacity(cap),
            cursor: 0,
            present: DenseSet::with_capacity(space),
            cap,
            absorbed: 0,
        }
    }

    /// Requests absorbed by buffer hits so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer holds no lines.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Admits a write of `global`. Returns the line the front-end must
    /// now enqueue toward its bank: the request itself when buffering is
    /// disabled, the evicted oldest line when the buffer overflowed, or
    /// `None` when the write was absorbed or buffered without eviction.
    #[inline]
    pub fn admit(&mut self, global: u64) -> Option<u64> {
        if self.cap == 0 {
            return Some(global);
        }
        if !self.present.insert(global) {
            self.absorbed += 1;
            return None;
        }
        if self.slots.len() < self.cap {
            self.slots.push(global);
            return None;
        }
        let oldest = std::mem::replace(&mut self.slots[self.cursor], global);
        self.cursor += 1;
        if self.cursor == self.cap {
            self.cursor = 0;
        }
        self.present.remove(oldest);
        Some(oldest)
    }

    /// Drains every buffered line in FIFO order (end of run: the dirty
    /// lines must reach PCM).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.cursor..]);
        out.extend_from_slice(&self.slots[..self.cursor]);
        for &line in &out {
            self.present.remove(line);
        }
        self.slots.clear();
        self.cursor = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_line_rewrites_are_absorbed() {
        let mut b = WriteBuffer::new(2, 16);
        assert_eq!(b.admit(7), None);
        assert_eq!(b.admit(7), None);
        assert_eq!(b.admit(7), None);
        assert_eq!(b.absorbed(), 2);
        assert_eq!(b.flush(), vec![7]);
    }

    #[test]
    fn overflow_evicts_oldest_fifo() {
        let mut b = WriteBuffer::new(2, 16);
        assert_eq!(b.admit(1), None);
        assert_eq!(b.admit(2), None);
        assert_eq!(b.admit(3), Some(1), "oldest line goes to its bank");
        // The buffer is full, so re-admitting the evicted line evicts in turn.
        assert_eq!(b.admit(1), Some(2), "evicted line is admissible again");
        assert_eq!(b.admit(4), Some(3));
        assert_eq!(b.flush(), vec![1, 4]);
        assert!(b.is_empty());
    }

    #[test]
    fn zero_capacity_bypasses() {
        let mut b = WriteBuffer::new(0, 16);
        assert_eq!(b.admit(5), Some(5));
        assert_eq!(b.admit(5), Some(5));
        assert_eq!(b.absorbed(), 0);
        assert!(b.flush().is_empty());
    }
}
