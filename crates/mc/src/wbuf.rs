//! A small DRAM write-buffer model in front of the bank queues.
//!
//! PCM controllers put a DRAM buffer between the last-level cache and the
//! PCM array so that hot lines are rewritten in DRAM instead of burning
//! PCM endurance. This model keeps the `cap` most-recently-admitted
//! distinct global lines: a request that hits the buffer is *absorbed*
//! (no PCM write happens at all); a miss admits the line and, once the
//! buffer is over capacity, evicts the oldest line to its bank queue —
//! FIFO, so eviction order is a pure function of the request stream and
//! the multi-bank run stays deterministic.

use std::collections::VecDeque;
use wlr_base::dense::DenseSet;

/// FIFO write buffer over global block addresses.
#[derive(Debug)]
pub struct WriteBuffer {
    /// Buffered lines, oldest first. Empty forever when `cap` is zero.
    fifo: VecDeque<u64>,
    present: DenseSet,
    cap: usize,
    absorbed: u64,
}

impl WriteBuffer {
    /// A buffer of `cap` lines over a global space of `space` blocks.
    /// `cap = 0` disables buffering: every request passes straight
    /// through.
    pub fn new(cap: usize, space: u64) -> Self {
        WriteBuffer {
            fifo: VecDeque::with_capacity(cap),
            present: DenseSet::with_capacity(space),
            cap,
            absorbed: 0,
        }
    }

    /// Requests absorbed by buffer hits so far.
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Lines currently buffered.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the buffer holds no lines.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Admits a write of `global`. Returns the line the front-end must
    /// now enqueue toward its bank: the request itself when buffering is
    /// disabled, the evicted oldest line when the buffer overflowed, or
    /// `None` when the write was absorbed or buffered without eviction.
    pub fn admit(&mut self, global: u64) -> Option<u64> {
        if self.cap == 0 {
            return Some(global);
        }
        if self.present.contains(global) {
            self.absorbed += 1;
            return None;
        }
        self.present.insert(global);
        self.fifo.push_back(global);
        if self.fifo.len() > self.cap {
            let oldest = self.fifo.pop_front().expect("buffer over cap is nonempty");
            self.present.remove(oldest);
            return Some(oldest);
        }
        None
    }

    /// Drains every buffered line in FIFO order (end of run: the dirty
    /// lines must reach PCM).
    pub fn flush(&mut self) -> Vec<u64> {
        let out: Vec<u64> = self.fifo.drain(..).collect();
        for &line in &out {
            self.present.remove(line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_line_rewrites_are_absorbed() {
        let mut b = WriteBuffer::new(2, 16);
        assert_eq!(b.admit(7), None);
        assert_eq!(b.admit(7), None);
        assert_eq!(b.admit(7), None);
        assert_eq!(b.absorbed(), 2);
        assert_eq!(b.flush(), vec![7]);
    }

    #[test]
    fn overflow_evicts_oldest_fifo() {
        let mut b = WriteBuffer::new(2, 16);
        assert_eq!(b.admit(1), None);
        assert_eq!(b.admit(2), None);
        assert_eq!(b.admit(3), Some(1), "oldest line goes to its bank");
        // The buffer is full, so re-admitting the evicted line evicts in turn.
        assert_eq!(b.admit(1), Some(2), "evicted line is admissible again");
        assert_eq!(b.admit(4), Some(3));
        assert_eq!(b.flush(), vec![1, 4]);
        assert!(b.is_empty());
    }

    #[test]
    fn zero_capacity_bypasses() {
        let mut b = WriteBuffer::new(0, 16);
        assert_eq!(b.admit(5), Some(5));
        assert_eq!(b.admit(5), Some(5));
        assert_eq!(b.absorbed(), 0);
        assert!(b.flush().is_empty());
    }
}
