//! Degraded-mode survival: quarantine, rescue, and the migrated-line
//! directory.
//!
//! With [`crate::McFrontendBuilder::degraded`] enabled, a bank death is a
//! survivable event instead of a stop condition. The protocol rides the
//! existing lag-one death mirror:
//!
//! 1. A bank that dies mid-drain *parks* the un-issued tail of its batch
//!    (and every later batch the lag window flushes at it) into a shared
//!    [`Wreckage`] buffer instead of dropping it, and evacuates its
//!    integrity oracle's live lines.
//! 2. When the front-end's `sync_bank` observes the death — by which
//!    point the worker has provably consumed everything flushed, so the
//!    wreckage is complete — it quarantines the bank: picks the
//!    least-worn healthy bank as *substitute*, excludes the dead bank
//!    from future steering rotations, and replays the wreckage into the
//!    **directory** (a DRAM global-address → tag map standing in for the
//!    remapped interleave slice).
//! 3. Later batches routed at the quarantined bank resolve through the
//!    substitute chain: their content lands in the directory and their
//!    service cost is charged to the substitute's clock, which is what
//!    makes N−1 (and N−2, …) throughput a measured quantity rather than
//!    a modeling fiction.
//!
//! Transient read errors get a bounded retry-with-backoff at the bank
//! ([`crate::bank::Bank::read_local`]) before surfacing as the typed
//! [`McReadError`]. Chaos commands reach live banks — even ones owned by
//! pinned workers — through per-bank [`ChaosSlot`] mailboxes polled at
//! batch boundaries.
//!
//! When no faults fire, degraded mode is bit-identical to a plain run:
//! ring entries carry the logical bank in their high bits (so a parked
//! tail can be re-keyed later) but banks strip the encoding before
//! issuing, and every other code path is untouched.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use wlr_pcm::FaultPlan;

/// Ring entries in degraded mode carry the *logical* bank in bits 48+ so
/// parked writes can be re-keyed to global addresses at rescue time.
pub(crate) const LOGICAL_SHIFT: u32 = 48;
/// Mask extracting the bank-local address from an encoded ring entry.
pub(crate) const LOCAL_MASK: u64 = (1u64 << LOGICAL_SHIFT) - 1;

/// Directory tags for writes that never reached a bank simulation start
/// here — disjoint from any simulation-issued oracle tag, so a tag's
/// provenance (evacuated content vs redirected write) is recoverable.
pub const DIR_TAG_BASE: u64 = 1 << 63;

/// A chaos command targeted at one live bank. Posted through the bank's
/// [`ChaosSlot`] and applied at its next batch boundary.
#[derive(Debug, Clone)]
pub enum BankChaos {
    /// Kill the bank after it issues `n` more writes (0 = before the
    /// next one). Models the dry-spare-pool / Theorem-2 undiscovered
    /// failure: the bank parks, it does not crash the fleet.
    KillAfter(u64),
    /// Arm additional device faults, with indices relative to the bank's
    /// current access counts (see [`wlr_pcm::FaultInjector::arm`]).
    Faults(FaultPlan),
}

/// Lock-free-checked mailbox through which chaos commands reach a bank
/// that may currently be owned by a pinned worker thread. The drain path
/// pays one relaxed load per batch when the mailbox is idle.
#[derive(Debug, Default)]
pub struct ChaosSlot {
    pending: AtomicBool,
    cmds: Mutex<Vec<BankChaos>>,
}

impl ChaosSlot {
    /// Posts a command; the bank applies it at its next batch boundary.
    pub fn post(&self, cmd: BankChaos) {
        self.cmds.lock().expect("chaos slot poisoned").push(cmd);
        self.pending.store(true, Ordering::Release);
    }

    /// Takes every pending command (empty when none are queued).
    pub(crate) fn take(&self) -> Vec<BankChaos> {
        if !self.pending.swap(false, Ordering::Acquire) {
            return Vec::new();
        }
        std::mem::take(&mut *self.cmds.lock().expect("chaos slot poisoned"))
    }
}

/// What a dying bank leaves behind for the front-end to harvest at
/// quarantine time. Shared (`Arc`) between the bank — which may live on
/// a worker thread — and the front-end; the lag-one protocol guarantees
/// the buffers are complete and quiescent when the front-end reads them.
#[derive(Debug, Default)]
pub struct Wreckage {
    /// Logical-encoded ring entries that were in flight past the death
    /// point: acknowledged writes quarantine must reroute, in order.
    pub(crate) parked: Mutex<Vec<u64>>,
    /// `(local address, tag)` pairs evacuated from the dead bank's
    /// integrity oracle (empty unless integrity tracking is on).
    pub(crate) evacuated: Mutex<Vec<(u64, u64)>>,
}

/// Bounded retry policy for transient read errors at a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt before surfacing the error.
    pub max_retries: u32,
    /// Base spin count for the exponential backoff between attempts.
    pub backoff_spins: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_spins: 64,
        }
    }
}

/// Typed read error surfaced by [`crate::McFrontend::read`] after the
/// bank's bounded retry is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McReadError {
    /// A transient error persisted through every retry attempt.
    Transient {
        /// Physical bank the read was serviced by.
        bank: usize,
        /// Attempts made (initial read + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for McReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McReadError::Transient { bank, attempts } => {
                write!(
                    f,
                    "transient read error on bank {bank} after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for McReadError {}

/// Front-end quarantine state (present only in degraded mode).
#[derive(Debug)]
pub(crate) struct Quarantine {
    /// `substitute[phys]` = the healthy bank elected when `phys` was
    /// quarantined (`None` when no healthy bank remained). Chains resolve
    /// through later deaths.
    pub(crate) substitute: Vec<Option<usize>>,
    /// Global address → tag for every line living in the remapped slice:
    /// evacuated oracle content plus redirected writes. Ordered so
    /// persistence and read-back sweeps are deterministic.
    pub(crate) directory: BTreeMap<u64, u64>,
    /// Next fresh tag for redirected writes (starts at [`DIR_TAG_BASE`]).
    pub(crate) dir_seq: u64,
    /// Banks quarantined so far.
    pub(crate) quarantines: u64,
    /// Oracle lines migrated out of dead banks.
    pub(crate) migrated_lines: u64,
    /// Writes rerouted to the directory (parked rescues + redirected
    /// flushes).
    pub(crate) redirected: u64,
}

impl Quarantine {
    pub(crate) fn new(banks: usize) -> Self {
        Quarantine {
            substitute: vec![None; banks],
            directory: BTreeMap::new(),
            dir_seq: DIR_TAG_BASE,
            quarantines: 0,
            migrated_lines: 0,
            redirected: 0,
        }
    }

    pub(crate) fn next_dir_tag(&mut self) -> u64 {
        self.dir_seq += 1;
        self.dir_seq
    }
}

/// Persistable quarantine state: what [`crate::McFrontend::restore_quarantine`]
/// needs to resume serving a degraded array after a restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineImage {
    /// Whether each physical bank was quarantined.
    pub dead: Vec<bool>,
    /// Elected substitute per bank, `u64::MAX` when none.
    pub substitutes: Vec<u64>,
    /// The directory as sorted `(global address, tag)` pairs.
    pub directory: Vec<(u64, u64)>,
    /// Tag counter for redirected writes.
    pub dir_seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_slot_hands_over_commands_once() {
        let slot = ChaosSlot::default();
        assert!(slot.take().is_empty());
        slot.post(BankChaos::KillAfter(3));
        slot.post(BankChaos::KillAfter(9));
        let cmds = slot.take();
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], BankChaos::KillAfter(3)));
        assert!(slot.take().is_empty(), "drained mailbox stays empty");
    }

    #[test]
    fn dir_tags_are_disjoint_from_sim_tags() {
        let mut q = Quarantine::new(2);
        let t = q.next_dir_tag();
        assert!(t > DIR_TAG_BASE);
    }

    #[test]
    fn logical_encoding_round_trips() {
        let logical = 11u64;
        let local = (1u64 << 40) + 12345;
        let enc = local | (logical << LOGICAL_SHIFT);
        assert_eq!(enc & LOCAL_MASK, local);
        assert_eq!(enc >> LOGICAL_SHIFT, logical);
    }
}
