//! Bounded per-bank write queue with address coalescing.
//!
//! Each bank owns one [`WriteQueue`]. The front-end enqueues bank-local
//! block addresses as requests arrive; a queue holds at most `depth`
//! distinct addresses, and a request to an address already queued is
//! *coalesced* — real memory controllers merge pending writes to the same
//! line, so only the last data ever reaches the array. The queue keeps
//! the **earliest** arrival tick for a coalesced address: the merged
//! write has been waiting since the first request to that line.
//!
//! Entries are `(address, arrival)` pairs in one contiguous `Vec` (the
//! queue only ever fills and then drains completely, so no ring
//! arithmetic is needed, and a push touches a single cache line), and
//! [`WriteQueue::take_into`] hands the whole batch to the caller by
//! buffer *swap* — the steady-state flush path moves no elements and
//! allocates nothing.

use wlr_base::dense::DenseSet;

/// One pending write: bank-local address and its arrival tick.
pub type QueueEntry = (u64, u64);

/// A bounded FIFO of pending bank-local writes with O(1) coalescing.
#[derive(Debug)]
pub struct WriteQueue {
    /// Pending `(address, arrival tick)` pairs in arrival order.
    entries: Vec<QueueEntry>,
    /// Dense membership index over the bank's local address space.
    present: DenseSet,
    depth: usize,
    coalesced: u64,
    enqueued: u64,
}

impl WriteQueue {
    /// A queue of at most `depth` pending writes over a bank-local space
    /// of `local_space` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a zero-depth queue can never accept a
    /// write).
    pub fn new(depth: usize, local_space: u64) -> Self {
        assert!(depth > 0, "write queue depth must be nonzero");
        WriteQueue {
            entries: Vec::with_capacity(depth),
            present: DenseSet::with_capacity(local_space),
            depth,
            coalesced: 0,
            enqueued: 0,
        }
    }

    /// Pending distinct addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue cannot accept a new distinct address.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.depth
    }

    /// Requests coalesced into an already-pending slot so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Distinct addresses ever accepted (drained or still pending).
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Enqueues a write of `local` arriving at tick `now`. Returns `true`
    /// if a new slot was taken, `false` if the write coalesced into a
    /// pending one.
    ///
    /// # Panics
    ///
    /// Panics if called on a full queue with a non-coalescing address;
    /// the front-end drains all banks before that can happen.
    #[inline]
    pub fn push(&mut self, local: u64, now: u64) -> bool {
        if !self.present.insert(local) {
            self.coalesced += 1;
            return false;
        }
        assert!(
            self.entries.len() < self.depth,
            "push on a full write queue"
        );
        self.entries.push((local, now));
        self.enqueued += 1;
        true
    }

    /// Arrival tick of the oldest pending entry, or `None` when empty.
    #[inline]
    pub fn front_arrival(&self) -> Option<u64> {
        self.entries.first().map(|&(_, t)| t)
    }

    /// Empties the queue in arrival order by swapping its entry buffer
    /// with the caller's: after the call, `out` holds the batch and the
    /// queue holds the caller's buffer (cleared). The steady-state flush
    /// path therefore moves no elements and allocates nothing — latency
    /// accounting is the caller's, since it depends on the drain model
    /// (barrier completion vs. the pinned pipeline's service clock).
    pub fn take_into(&mut self, out: &mut Vec<QueueEntry>) {
        out.clear();
        self.present.clear();
        std::mem::swap(&mut self.entries, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_duplicates_keeping_first_arrival() {
        let mut q = WriteQueue::new(4, 16);
        assert!(q.push(3, 1));
        assert!(q.push(5, 2));
        assert!(!q.push(3, 3), "duplicate must coalesce");
        assert_eq!(q.coalesced(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.front_arrival(), Some(1));
        let mut batch = Vec::new();
        q.take_into(&mut batch);
        assert_eq!(batch, vec![(3, 1), (5, 2)]);
        assert!(q.is_empty());
        assert_eq!(q.front_arrival(), None);
    }

    #[test]
    fn take_into_clears_the_handed_buffer() {
        let mut q = WriteQueue::new(2, 8);
        let mut batch = vec![(99, 99)];
        q.push(1, 0);
        q.take_into(&mut batch);
        assert_eq!(batch, vec![(1, 0)], "stale caller contents are discarded");
        q.push(2, 5);
        q.take_into(&mut batch);
        assert_eq!(batch, vec![(2, 5)]);
    }

    #[test]
    fn address_can_requeue_after_drain() {
        let mut q = WriteQueue::new(2, 8);
        q.push(1, 0);
        q.take_into(&mut Vec::new());
        assert!(q.push(1, 1), "drained address is a fresh slot again");
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn full_detection_counts_distinct_only() {
        let mut q = WriteQueue::new(2, 8);
        q.push(0, 0);
        q.push(0, 1); // coalesced, takes no slot
        assert!(!q.is_full());
        q.push(1, 2);
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "full write queue")]
    fn push_on_full_queue_panics() {
        let mut q = WriteQueue::new(1, 8);
        q.push(0, 0);
        q.push(1, 1);
    }
}
