//! Bounded per-bank write queue with address coalescing.
//!
//! Each bank owns one [`WriteQueue`]. The front-end enqueues bank-local
//! block addresses as requests arrive; a queue holds at most `depth`
//! distinct addresses, and a request to an address already queued is
//! *coalesced* — real memory controllers merge pending writes to the same
//! line, so only the last data ever reaches the array. The queue keeps
//! the **earliest** arrival tick for a coalesced address: the merged
//! write has been waiting since the first request to that line.

use std::collections::VecDeque;
use wlr_base::dense::DenseSet;

/// A bounded FIFO of pending bank-local writes with O(1) coalescing.
#[derive(Debug)]
pub struct WriteQueue {
    /// `(local address, arrival tick)` in arrival order.
    slots: VecDeque<(u64, u64)>,
    /// Dense membership index over the bank's local address space.
    present: DenseSet,
    depth: usize,
    coalesced: u64,
    enqueued: u64,
}

impl WriteQueue {
    /// A queue of at most `depth` pending writes over a bank-local space
    /// of `local_space` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a zero-depth queue can never accept a
    /// write).
    pub fn new(depth: usize, local_space: u64) -> Self {
        assert!(depth > 0, "write queue depth must be nonzero");
        WriteQueue {
            slots: VecDeque::with_capacity(depth),
            present: DenseSet::with_capacity(local_space),
            depth,
            coalesced: 0,
            enqueued: 0,
        }
    }

    /// Pending distinct addresses.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the queue cannot accept a new distinct address.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.depth
    }

    /// Requests coalesced into an already-pending slot so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Distinct addresses ever accepted (drained or still pending).
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Enqueues a write of `local` arriving at tick `now`. Returns `true`
    /// if a new slot was taken, `false` if the write coalesced into a
    /// pending one.
    ///
    /// # Panics
    ///
    /// Panics if called on a full queue with a non-coalescing address;
    /// the front-end drains all banks before that can happen.
    pub fn push(&mut self, local: u64, now: u64) -> bool {
        if self.present.contains(local) {
            self.coalesced += 1;
            return false;
        }
        assert!(!self.is_full(), "push on a full write queue");
        self.present.insert(local);
        self.slots.push_back((local, now));
        self.enqueued += 1;
        true
    }

    /// Empties the queue for a drain starting at tick `drain_start`,
    /// returning the pending addresses in arrival order and each entry's
    /// queueing latency in ticks: entry `i` completes at
    /// `drain_start + i`, so its latency is `drain_start + i − arrival`.
    pub fn take(&mut self, drain_start: u64) -> (Vec<u64>, Vec<u64>) {
        let mut addrs = Vec::with_capacity(self.slots.len());
        let mut latencies = Vec::with_capacity(self.slots.len());
        for (i, (local, arrival)) in self.slots.drain(..).enumerate() {
            self.present.remove(local);
            addrs.push(local);
            latencies.push((drain_start + i as u64).saturating_sub(arrival));
        }
        (addrs, latencies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_duplicates_keeping_first_arrival() {
        let mut q = WriteQueue::new(4, 16);
        assert!(q.push(3, 1));
        assert!(q.push(5, 2));
        assert!(!q.push(3, 3), "duplicate must coalesce");
        assert_eq!(q.coalesced(), 1);
        assert_eq!(q.len(), 2);
        let (addrs, lats) = q.take(10);
        assert_eq!(addrs, vec![3, 5]);
        // Entry 0 (addr 3) completes at tick 10, arrived at 1 → latency 9.
        // Entry 1 (addr 5) completes at tick 11, arrived at 2 → latency 9.
        assert_eq!(lats, vec![9, 9]);
        assert!(q.is_empty());
    }

    #[test]
    fn address_can_requeue_after_drain() {
        let mut q = WriteQueue::new(2, 8);
        q.push(1, 0);
        q.take(0);
        assert!(q.push(1, 1), "drained address is a fresh slot again");
        assert_eq!(q.enqueued(), 2);
    }

    #[test]
    fn full_detection_counts_distinct_only() {
        let mut q = WriteQueue::new(2, 8);
        q.push(0, 0);
        q.push(0, 1); // coalesced, takes no slot
        assert!(!q.is_full());
        q.push(1, 2);
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "full write queue")]
    fn push_on_full_queue_panics() {
        let mut q = WriteQueue::new(1, 8);
        q.push(0, 0);
        q.push(1, 1);
    }
}
