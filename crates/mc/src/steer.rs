//! Wear-aware bank steering (PS-WL-style placement biasing).
//!
//! With steering enabled, the front-end inserts a logical→physical bank
//! permutation between the interleave split and the bank stacks: the
//! interleave still computes a deterministic `(logical bank, local
//! address)` pair, but the batch is *serviced* by the physical bank the
//! current permutation assigns. Every epoch (a fixed number of flushed
//! writes) the permutation is recomputed so the logical banks that
//! carried the most traffic land on the physical banks with the least
//! accumulated wear — hot stripes rotate across the array instead of
//! burning one bank down, the probability-sensitive idea of PS-WL
//! applied at bank granularity.
//!
//! The policy is a pure function of the flushed write stream (traffic
//! counts and the front-end's own wear proxy), so a steered run is still
//! bit-for-bit reproducible; it is simply not bit-identical to the
//! *unsteered* mapping, which is why steering defaults to off and hides
//! behind a knob.

/// Epoch-based logical→physical bank permutation.
#[derive(Debug)]
pub struct Steering {
    /// `perm[logical] = physical`.
    perm: Vec<usize>,
    /// Flushed writes per epoch before the permutation is recomputed.
    epoch_len: u64,
    /// Flushed writes since the last recomputation.
    since_epoch: u64,
    /// Per-logical-bank traffic within the current epoch.
    traffic: Vec<u64>,
    /// Cumulative writes steered into each physical bank — the wear
    /// proxy the assignment minimizes against.
    phys_wear: Vec<u64>,
    /// Quarantined physical banks: rotations assign them only the
    /// coldest logical banks (the front-end's substitute chain resolves
    /// any route that still lands on one).
    dead: Vec<bool>,
    /// Permutation recomputations performed.
    rotations: u64,
}

impl Steering {
    /// Identity-permuted steering over `banks` banks, rotating every
    /// `epoch_len` flushed writes.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(banks: usize, epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "steering epoch must be nonzero");
        Steering {
            perm: (0..banks).collect(),
            epoch_len,
            since_epoch: 0,
            traffic: vec![0; banks],
            phys_wear: vec![0; banks],
            dead: vec![false; banks],
            rotations: 0,
        }
    }

    /// Excludes quarantined physical bank `phys` from future rotations:
    /// the assignment pushes it behind every healthy bank, so only the
    /// coldest logical stripes still map there (and the front-end
    /// redirects those through the substitute chain).
    pub fn exclude(&mut self, phys: usize) {
        self.dead[phys] = true;
    }

    /// The physical bank currently servicing `logical`.
    #[inline]
    pub fn route(&self, logical: usize) -> usize {
        self.perm[logical]
    }

    /// The current permutation, `perm[logical] = physical`.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Permutation recomputations so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Records `entries` flushed writes routed from `logical` into
    /// `physical`, and recomputes the permutation when the epoch rolls
    /// over. Deterministic: identical flush streams produce identical
    /// permutation histories.
    pub fn note_flush(&mut self, logical: usize, physical: usize, entries: u64) {
        self.traffic[logical] += entries;
        self.phys_wear[physical] += entries;
        self.since_epoch += entries;
        if self.since_epoch >= self.epoch_len {
            self.rotate();
        }
    }

    /// Assigns the hottest logical banks to the least-worn physical
    /// banks (ties broken by index, so the result is deterministic).
    fn rotate(&mut self) {
        let n = self.perm.len();
        let mut by_heat: Vec<usize> = (0..n).collect();
        by_heat.sort_by_key(|&l| (std::cmp::Reverse(self.traffic[l]), l));
        let mut by_wear: Vec<usize> = (0..n).collect();
        by_wear.sort_by_key(|&p| (self.dead[p], self.phys_wear[p], p));
        for (l, p) in by_heat.into_iter().zip(by_wear) {
            self.perm[l] = p;
        }
        self.traffic.fill(0);
        self.since_epoch = 0;
        self.rotations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_until_first_epoch() {
        let mut s = Steering::new(4, 100);
        assert_eq!(s.permutation(), &[0, 1, 2, 3]);
        s.note_flush(2, 2, 99);
        assert_eq!(s.permutation(), &[0, 1, 2, 3], "epoch not yet full");
        assert_eq!(s.rotations(), 0);
    }

    #[test]
    fn hot_logical_bank_moves_to_least_worn_physical() {
        let mut s = Steering::new(3, 10);
        // Logical 0 carries all the traffic into physical 0.
        s.note_flush(0, 0, 10);
        assert_eq!(s.rotations(), 1);
        // Physical 0 is now the most worn: the hot logical bank 0 must
        // steer away from it, onto the least-worn (index tie → 1).
        assert_eq!(s.route(0), 1);
    }

    #[test]
    fn rotation_is_a_permutation_and_deterministic() {
        let run = || {
            let mut s = Steering::new(8, 64);
            for i in 0..1_000u64 {
                let l = (i % 8) as usize;
                s.note_flush(l, s.route(l), 1 + (l as u64 % 3));
            }
            s.permutation().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "steering must be reproducible");
        let mut seen = a.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>(), "must stay a permutation");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_epoch_panics() {
        let _ = Steering::new(2, 0);
    }

    #[test]
    fn excluded_banks_take_only_the_coldest_stripes() {
        let mut s = Steering::new(3, 10);
        s.exclude(1);
        // Logical 0 is the hottest; logicals 1 and 2 saw no traffic.
        s.note_flush(0, 0, 10);
        assert_eq!(s.rotations(), 1);
        assert_ne!(s.route(0), 1, "hot stripe must avoid the dead bank");
        // The permutation still covers every physical bank exactly once.
        let mut seen = s.permutation().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
