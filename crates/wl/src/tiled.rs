//! Region-tiled Start-Gap — the configuration the Start-Gap paper
//! actually deploys at scale.
//!
//! A single gap line serving 2²⁴ blocks rotates too slowly to level
//! anything; Qureshi et al. therefore split memory into regions of a few
//! hundred lines, each with its own gap and start registers, behind one
//! *global* static randomizer that scatters hot addresses across regions.
//! [`TiledStartGap`] reproduces that: `tiles` independent [`StartGap`]
//! instances over a shared [`AddressRandomizer`], costing one gap line
//! per tile.
//!
//! Device layout: tile `t` owns the contiguous DA range
//! `[t·(tile+1), (t+1)·(tile+1))` — `tile` data lines plus its gap line —
//! so `total_das = len + tiles`.

use crate::randomizer::{AddressRandomizer, RandomizerKind};
use crate::start_gap::StartGap;
use crate::traits::{Migration, WearLeveler};
use wlr_base::{Da, Pa};

/// Builder for [`TiledStartGap`]; see [`TiledStartGap::builder`].
#[derive(Debug)]
pub struct TiledStartGapBuilder {
    len: u64,
    tiles: u64,
    gap_interval: u64,
    randomizer: RandomizerKind,
}

impl TiledStartGapBuilder {
    /// Number of tiles (default 16). Must divide the PA-space size.
    pub fn tiles(mut self, tiles: u64) -> Self {
        self.tiles = tiles;
        self
    }

    /// Writes per gap movement *per tile* (the paper's ψ, default 100).
    pub fn gap_interval(mut self, psi: u64) -> Self {
        self.gap_interval = psi;
        self
    }

    /// The global randomization layer (default Feistel, seed 0).
    pub fn randomizer(mut self, kind: RandomizerKind) -> Self {
        self.randomizer = kind;
        self
    }

    /// Builds the scheme.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is zero or does not divide the space, or under
    /// [`StartGap`]'s builder conditions.
    pub fn build(self) -> TiledStartGap {
        assert!(self.tiles > 0, "need at least one tile");
        assert_eq!(
            self.len % self.tiles,
            0,
            "PA space {} is not a whole number of {} tiles",
            self.len,
            self.tiles
        );
        let tile_len = self.len / self.tiles;
        let tiles = (0..self.tiles)
            .map(|_| {
                StartGap::builder(tile_len)
                    .gap_interval(self.gap_interval)
                    // Tiles are identity inside: the global randomizer
                    // already scattered the addresses.
                    .randomizer(RandomizerKind::Identity)
                    .build()
            })
            .collect();
        TiledStartGap {
            len: self.len,
            tile_len,
            tiles,
            randomizer: self.randomizer.build(self.len),
            rr_cursor: 0,
        }
    }
}

/// Start-Gap tiled into independently-rotating regions behind one global
/// randomizer (see module docs).
///
/// ```
/// use wlr_base::Pa;
/// use wlr_wl::{RandomizerKind, TiledStartGap, WearLeveler};
///
/// let mut wl = TiledStartGap::builder(1024)
///     .tiles(8)
///     .gap_interval(10)
///     .randomizer(RandomizerKind::Feistel { seed: 3 })
///     .build();
/// assert_eq!(wl.total_das(), 1024 + 8); // one gap line per tile
/// let da = wl.map(Pa::new(5));
/// assert_eq!(wl.inverse(da), Some(Pa::new(5)));
/// for _ in 0..10 { wl.record_write(Pa::new(5)); }
/// assert!(wl.pending().is_some());
/// ```
#[derive(Debug)]
pub struct TiledStartGap {
    len: u64,
    tile_len: u64,
    tiles: Vec<StartGap>,
    randomizer: Box<dyn AddressRandomizer>,
    /// Round-robin scan start for serving indebted tiles fairly.
    rr_cursor: usize,
}

impl Clone for TiledStartGap {
    fn clone(&self) -> Self {
        TiledStartGap {
            len: self.len,
            tile_len: self.tile_len,
            tiles: self.tiles.clone(),
            randomizer: self.randomizer.clone_box(),
            rr_cursor: self.rr_cursor,
        }
    }
}

impl TiledStartGap {
    /// Starts building a tiled Start-Gap over `len` physical addresses.
    pub fn builder(len: u64) -> TiledStartGapBuilder {
        TiledStartGapBuilder {
            len,
            tiles: 16,
            gap_interval: 100,
            randomizer: RandomizerKind::Feistel { seed: 0 },
        }
    }

    /// Number of tiles.
    pub fn tiles(&self) -> u64 {
        self.tiles.len() as u64
    }

    #[inline]
    fn split(&self, ra: u64) -> (usize, u64) {
        ((ra / self.tile_len) as usize, ra % self.tile_len)
    }

    /// DA base of tile `t` (each tile owns `tile_len + 1` device blocks).
    #[inline]
    fn tile_base(&self, t: usize) -> u64 {
        t as u64 * (self.tile_len + 1)
    }

    fn first_indebted(&self) -> Option<usize> {
        let n = self.tiles.len();
        (0..n)
            .map(|i| (self.rr_cursor + i) % n)
            .find(|&t| self.tiles[t].pending().is_some())
    }
}

impl WearLeveler for TiledStartGap {
    fn len(&self) -> u64 {
        self.len
    }

    fn total_das(&self) -> u64 {
        self.len + self.tiles.len() as u64
    }

    #[inline]
    fn map(&self, pa: Pa) -> Da {
        assert!(pa.index() < self.len, "{pa} outside PA space {}", self.len);
        let ra = self.randomizer.forward(pa.index());
        let (t, local) = self.split(ra);
        let local_da = self.tiles[t].map(Pa::new(local));
        Da::new(self.tile_base(t) + local_da.index())
    }

    #[inline]
    fn inverse(&self, da: Da) -> Option<Pa> {
        assert!(
            da.index() < self.total_das(),
            "{da} outside DA space {}",
            self.total_das()
        );
        let t = (da.index() / (self.tile_len + 1)) as usize;
        let local_da = da.index() % (self.tile_len + 1);
        let local_pa = self.tiles[t].inverse(Da::new(local_da))?;
        let ra = t as u64 * self.tile_len + local_pa.index();
        Some(Pa::new(self.randomizer.backward(ra)))
    }

    fn record_write(&mut self, pa: Pa) {
        let ra = self.randomizer.forward(pa.index());
        let (t, local) = self.split(ra);
        self.tiles[t].record_write(Pa::new(local));
    }

    fn pending(&self) -> Option<Migration> {
        let t = self.first_indebted()?;
        let base = self.tile_base(t);
        match self.tiles[t].pending()? {
            Migration::Copy { src, dst } => Some(Migration::Copy {
                src: Da::new(base + src.index()),
                dst: Da::new(base + dst.index()),
            }),
            Migration::Swap { a, b } => Some(Migration::Swap {
                a: Da::new(base + a.index()),
                b: Da::new(base + b.index()),
            }),
        }
    }

    fn complete_migration(&mut self) {
        let t = self
            .first_indebted()
            .expect("complete_migration without a pending one");
        self.tiles[t].complete_migration();
        self.rr_cursor = (t + 1) % self.tiles.len();
    }

    fn label(&self) -> String {
        format!("Start-Gap[{}]", self.tiles.len())
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(len: u64, tiles: u64, psi: u64) -> TiledStartGap {
        TiledStartGap::builder(len)
            .tiles(tiles)
            .gap_interval(psi)
            .randomizer(RandomizerKind::Feistel { seed: 9 })
            .build()
    }

    fn assert_bijection(wl: &TiledStartGap) {
        let mut hit = vec![false; wl.total_das() as usize];
        for pa in 0..wl.len() {
            let da = wl.map(Pa::new(pa));
            assert!(!hit[da.as_usize()], "two PAs map to {da}");
            hit[da.as_usize()] = true;
            assert_eq!(wl.inverse(da), Some(Pa::new(pa)));
        }
        let gaps = hit.iter().filter(|&&h| !h).count();
        assert_eq!(gaps as u64, wl.tiles(), "one unmapped gap line per tile");
    }

    #[test]
    fn initial_bijection() {
        assert_bijection(&make(256, 8, 10));
    }

    #[test]
    fn bijection_survives_traffic() {
        let mut wl = make(128, 4, 2);
        for i in 0..2_000u64 {
            wl.record_write(Pa::new((i * 37) % 128));
            while wl.pending().is_some() {
                wl.complete_migration();
            }
        }
        assert_bijection(&wl);
    }

    #[test]
    fn data_preserved() {
        let n = 128u64;
        let mut wl = make(n, 4, 3);
        let mut data: Vec<Option<u64>> = vec![None; wl.total_das() as usize];
        for pa in 0..n {
            data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
        }
        for i in 0..3_000u64 {
            wl.record_write(Pa::new((i * 13) % n));
            while let Some(m) = wl.pending() {
                if let Migration::Copy { src, dst } = m {
                    data[dst.as_usize()] = data[src.as_usize()].take();
                } else {
                    panic!("tiled start-gap emits copies");
                }
                wl.complete_migration();
            }
        }
        for pa in 0..n {
            assert_eq!(data[wl.map(Pa::new(pa)).as_usize()], Some(pa));
        }
    }

    #[test]
    fn tiles_rotate_independently() {
        // All writes land in one tile's addresses: only that tile migrates,
        // and its migrations stay within its DA range.
        let mut wl = make(256, 4, 1);
        // Find 8 PAs that randomize into tile 0.
        let tile0: Vec<u64> = (0..256)
            .filter(|&p| wl.randomizer.forward(p) < 64)
            .take(8)
            .collect();
        assert!(!tile0.is_empty());
        for i in 0..64u64 {
            wl.record_write(Pa::new(tile0[(i % tile0.len() as u64) as usize]));
            while let Some(Migration::Copy { src, dst }) = wl.pending() {
                assert!(src.index() < 65 && dst.index() < 65, "escaped tile 0");
                wl.complete_migration();
            }
        }
    }

    #[test]
    fn round_robin_serves_all_tiles() {
        let mut wl = make(256, 4, 1);
        // Uniform writes arm every tile; drain and check debt clears.
        for i in 0..256u64 {
            wl.record_write(Pa::new(i));
        }
        let mut served = 0;
        while wl.pending().is_some() {
            wl.complete_migration();
            served += 1;
            assert!(served < 1_000, "drain did not terminate");
        }
        assert!(served >= 4, "every tile should have migrated");
    }

    #[test]
    fn label_and_sizes() {
        let wl = make(256, 8, 10);
        assert_eq!(wl.label(), "Start-Gap[8]");
        assert_eq!(wl.total_das(), 264);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn indivisible_tiles_panic() {
        make(100, 3, 1);
    }

    #[test]
    fn fuzzed_bijection() {
        let mut rng = wlr_base::rng::Rng::stream(0x711E, 0);
        for _ in 0..16 {
            let seed = rng.next_u64();
            let mut wl = TiledStartGap::builder(128)
                .tiles(4)
                .gap_interval(2)
                .randomizer(RandomizerKind::Feistel { seed })
                .build();
            for _ in 0..rng.gen_range(300) {
                wl.record_write(Pa::new(rng.gen_range(128)));
                while wl.pending().is_some() {
                    wl.complete_migration();
                }
            }
            let mut hit = vec![false; wl.total_das() as usize];
            for pa in 0..wl.len() {
                let da = wl.map(Pa::new(pa));
                assert!(!hit[da.as_usize()], "two PAs map to {da}");
                hit[da.as_usize()] = true;
                assert_eq!(wl.inverse(da), Some(Pa::new(pa)));
            }
        }
    }
}
