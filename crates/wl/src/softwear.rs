//! SoftWear-style software-only page-sorting wear leveling.
//!
//! Unlike Start-Gap and Security Refresh — whose PA→DA mappings are
//! *algebraic* (start/gap registers, XOR keys) — SoftWear keeps an explicit
//! per-page indirection table, sorts pages by observed write counts, and
//! periodically swaps the hottest page into a cold frame. It is the
//! "software-only" corner of the design space: the mapping state is a
//! table the OS could keep in DRAM, no controller arithmetic required.
//!
//! The reproduction models it as an in-place scheme (`total_das == len`,
//! like Security Refresh) so it composes with the WL-Reviver framework
//! unmodified:
//!
//! * every serviced write bumps a per-PA epoch counter and a per-DA wear
//!   proxy counter;
//! * every `swap_interval` writes an epoch ends: the scheme arms a
//!   [`Migration::Swap`] between the epoch-hottest page's current frame
//!   and the least-worn frame found in a bounded rotating scan window
//!   (the rotation guarantees every frame is periodically considered
//!   without an O(n) sort per epoch);
//! * completing the swap exchanges the two table entries.
//!
//! Hot tracking uses a running arg-max and epoch-stamped counters, so
//! `record_write` is O(1); only the epoch-end cold scan touches
//! `scan_window` entries.

use crate::traits::{Migration, WearLeveler};
use wlr_base::{Da, Pa};

/// Builder for [`SoftWear`]; see [`SoftWear::builder`].
#[derive(Debug)]
pub struct SoftWearBuilder {
    len: u64,
    swap_interval: u64,
    scan_window: u64,
}

impl SoftWearBuilder {
    /// Serviced writes between successive hot↔cold swaps (default 100).
    pub fn swap_interval(mut self, interval: u64) -> Self {
        self.swap_interval = interval;
        self
    }

    /// Frames examined per cold scan (default 16, clamped to the space).
    pub fn scan_window(mut self, window: u64) -> Self {
        self.scan_window = window;
        self
    }

    /// Builds the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty or either interval/window is zero.
    pub fn build(self) -> SoftWear {
        assert!(self.len > 0, "SoftWear needs a nonzero PA space");
        assert!(self.swap_interval > 0, "swap interval must be nonzero");
        assert!(self.scan_window > 0, "scan window must be nonzero");
        let n = self.len as usize;
        SoftWear {
            len: self.len,
            swap_interval: self.swap_interval,
            scan_window: self.scan_window.min(self.len),
            table: (0..self.len).collect(),
            inverse: (0..self.len).collect(),
            wear: vec![0; n],
            epoch_counts: vec![0; n],
            epoch_stamp: vec![0; n],
            epoch_id: 1,
            writes_since_swap: 0,
            hot_pa: 0,
            hot_count: 0,
            cursor: 0,
            debt: 0,
            armed: None,
        }
    }
}

/// The SoftWear scheme. See the module docs for the algorithm.
///
/// ```
/// use wlr_base::Pa;
/// use wlr_wl::{SoftWear, WearLeveler};
///
/// let mut wl = SoftWear::builder(64).swap_interval(4).build();
/// let da = wl.map(Pa::new(3));
/// assert_eq!(wl.inverse(da), Some(Pa::new(3)));
/// for _ in 0..4 {
///     wl.record_write(Pa::new(3));
/// }
/// assert!(matches!(wl.pending(), Some(wlr_wl::Migration::Swap { .. })));
/// wl.complete_migration();
/// ```
#[derive(Debug, Clone)]
pub struct SoftWear {
    len: u64,
    swap_interval: u64,
    scan_window: u64,
    /// PA → DA indirection table (the defining SoftWear state).
    table: Vec<u64>,
    /// DA → PA inverse of `table`.
    inverse: Vec<u64>,
    /// Per-DA software writes absorbed (wear proxy for the cold scan).
    wear: Vec<u64>,
    /// Per-PA writes within the current epoch, valid iff the stamp matches.
    epoch_counts: Vec<u64>,
    epoch_stamp: Vec<u32>,
    epoch_id: u32,
    writes_since_swap: u64,
    /// Running arg-max of `epoch_counts` within the current epoch.
    hot_pa: u64,
    hot_count: u64,
    /// Rotating start of the next cold scan.
    cursor: u64,
    /// Swaps owed (armed-or-awaiting), including the one in `armed`.
    debt: u64,
    armed: Option<(Da, Da)>,
}

impl SoftWear {
    /// Starts building a SoftWear instance over `len` physical addresses.
    pub fn builder(len: u64) -> SoftWearBuilder {
        SoftWearBuilder {
            len,
            swap_interval: 100,
            scan_window: 16,
        }
    }

    /// Writes between successive swaps.
    pub fn swap_interval(&self) -> u64 {
        self.swap_interval
    }

    fn note_write(&mut self, pa: Pa) {
        let i = pa.index() as usize;
        self.wear[self.table[i] as usize] += 1;
        if self.epoch_stamp[i] != self.epoch_id {
            self.epoch_stamp[i] = self.epoch_id;
            self.epoch_counts[i] = 0;
        }
        self.epoch_counts[i] += 1;
        if self.epoch_counts[i] > self.hot_count {
            self.hot_count = self.epoch_counts[i];
            self.hot_pa = pa.index();
        }
        self.writes_since_swap += 1;
    }

    /// Picks the next hot↔cold swap and starts a fresh epoch. Returns
    /// `None` when the space is too small or the hot page already sits on
    /// the coldest frame in the window.
    fn pick_swap(&mut self) -> Option<(Da, Da)> {
        let hot_da = self.table[self.hot_pa as usize];
        // Bounded rotating scan for the least-worn frame.
        let mut cold_da = None;
        let mut cold_wear = u64::MAX;
        for step in 0..self.scan_window {
            let da = (self.cursor + step) % self.len;
            if da == hot_da {
                continue;
            }
            if self.wear[da as usize] < cold_wear {
                cold_wear = self.wear[da as usize];
                cold_da = Some(da);
            }
        }
        self.cursor = (self.cursor + self.scan_window) % self.len;
        // New epoch: stale stamps make all counters read as zero.
        self.epoch_id = self.epoch_id.wrapping_add(1);
        if self.epoch_id == 0 {
            // Guard the stamp trick across u32 wraparound.
            self.epoch_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch_id = 1;
        }
        self.hot_count = 0;
        // Swapping onto an equally-or-more-worn frame is pointless; it
        // can only happen when the whole window is hotter than the hot
        // page's own frame, in which case skipping is the right move.
        cold_da
            .filter(|&c| self.wear[c as usize] < self.wear[hot_da as usize])
            .map(|c| (Da::new(hot_da), Da::new(c)))
    }

    fn arm_next(&mut self) {
        while self.debt > 0 {
            if let Some(pair) = self.pick_swap() {
                self.armed = Some(pair);
                return;
            }
            self.debt -= 1; // degenerate epoch: forgive the swap
        }
    }
}

impl WearLeveler for SoftWear {
    fn len(&self) -> u64 {
        self.len
    }

    fn total_das(&self) -> u64 {
        self.len
    }

    #[inline]
    fn map(&self, pa: Pa) -> Da {
        assert!(pa.index() < self.len, "{pa} outside PA space {}", self.len);
        Da::new(self.table[pa.index() as usize])
    }

    #[inline]
    fn inverse(&self, da: Da) -> Option<Pa> {
        assert!(da.index() < self.len, "{da} outside DA space {}", self.len);
        Some(Pa::new(self.inverse[da.index() as usize]))
    }

    fn record_write(&mut self, pa: Pa) {
        self.note_write(pa);
        if self.writes_since_swap >= self.swap_interval {
            self.writes_since_swap = 0;
            if self.len > 1 {
                self.debt += 1;
                if self.armed.is_none() {
                    self.arm_next();
                }
            }
        }
    }

    fn record_write_fast(&mut self, pa: Pa) -> bool {
        if self.armed.is_some() || self.debt > 0 || self.writes_since_swap + 1 >= self.swap_interval
        {
            return false;
        }
        self.note_write(pa);
        true
    }

    fn pending(&self) -> Option<Migration> {
        self.armed.map(|(a, b)| Migration::Swap { a, b })
    }

    fn complete_migration(&mut self) {
        let (a, b) = self
            .armed
            .take()
            .expect("complete_migration without a pending one");
        let pa_a = self.inverse[a.index() as usize];
        let pa_b = self.inverse[b.index() as usize];
        self.table[pa_a as usize] = b.index();
        self.table[pa_b as usize] = a.index();
        self.inverse[a.index() as usize] = pa_b;
        self.inverse[b.index() as usize] = pa_a;
        self.debt -= 1;
        self.arm_next();
    }

    fn label(&self) -> String {
        "SoftWear".to_string()
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(wl: &SoftWear) {
        let mut hit = vec![false; wl.total_das() as usize];
        for pa in 0..wl.len() {
            let da = wl.map(Pa::new(pa));
            assert!(da.index() < wl.total_das());
            assert!(!hit[da.as_usize()], "two PAs map to {da}");
            hit[da.as_usize()] = true;
            assert_eq!(wl.inverse(da), Some(Pa::new(pa)), "inverse broken at {da}");
        }
        assert!(hit.iter().all(|&h| h), "mapping must be onto");
    }

    fn drive(wl: &mut SoftWear, data: &mut [Option<u64>]) {
        while let Some(m) = wl.pending() {
            match m {
                Migration::Swap { a, b } => data.swap(a.as_usize(), b.as_usize()),
                Migration::Copy { .. } => panic!("SoftWear emits swaps only"),
            }
            wl.complete_migration();
        }
    }

    #[test]
    fn initial_mapping_is_identity_and_bijective() {
        let wl = SoftWear::builder(64).build();
        for pa in 0..64 {
            assert_eq!(wl.map(Pa::new(pa)), Da::new(pa));
        }
        assert_bijection(&wl);
    }

    #[test]
    fn mapping_stays_bijective_through_swaps() {
        let mut wl = SoftWear::builder(32).swap_interval(1).build();
        for step in 0..300 {
            wl.record_write(Pa::new((step * 13) % 32));
            while wl.pending().is_some() {
                wl.complete_migration();
                assert_bijection(&wl);
            }
        }
    }

    #[test]
    fn swaps_preserve_data() {
        let n = 64u64;
        let mut wl = SoftWear::builder(n).swap_interval(2).build();
        let mut data: Vec<Option<u64>> = vec![None; n as usize];
        for pa in 0..n {
            data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
        }
        for step in 0..800u64 {
            wl.record_write(Pa::new(step % 7)); // skewed
            drive(&mut wl, &mut data);
            for pa in 0..n {
                assert_eq!(
                    data[wl.map(Pa::new(pa)).as_usize()],
                    Some(pa),
                    "data for PA {pa} lost at step {step}"
                );
            }
        }
    }

    #[test]
    fn swap_interval_pacing() {
        let mut wl = SoftWear::builder(16).swap_interval(10).build();
        for _ in 0..9 {
            wl.record_write(Pa::new(0));
        }
        assert!(wl.pending().is_none());
        wl.record_write(Pa::new(0));
        assert!(wl.pending().is_some());
    }

    #[test]
    fn hot_page_is_relocated() {
        // Hammer PA 0: over many epochs its frame must keep changing —
        // the defining page-sorting behavior.
        let mut wl = SoftWear::builder(64).swap_interval(4).build();
        let mut frames = std::collections::HashSet::new();
        for i in 0..400u64 {
            let pa = if i % 4 == 3 {
                Pa::new(1 + i % 32)
            } else {
                Pa::new(0)
            };
            wl.record_write(pa);
            while wl.pending().is_some() {
                wl.complete_migration();
            }
            frames.insert(wl.map(Pa::new(0)).index());
        }
        assert!(
            frames.len() > 8,
            "hot page should rotate through many frames, got {}",
            frames.len()
        );
    }

    #[test]
    fn cold_scan_prefers_least_worn_frame() {
        let mut wl = SoftWear::builder(8).swap_interval(4).scan_window(8).build();
        // Wear frames 0..4 heavily via their identity-mapped PAs, but keep
        // PA 0 hottest; frames 4..8 stay cold.
        for _ in 0..4 {
            wl.record_write(Pa::new(0));
        }
        let m = wl.pending().expect("epoch should arm a swap");
        if let Migration::Swap { a, b } = m {
            assert_eq!(a, Da::new(0), "hot side must be PA 0's frame");
            assert!(b.index() >= 1, "cold side must be an untouched frame");
        }
    }

    #[test]
    fn record_write_fast_matches_slow_path() {
        let mut fast = SoftWear::builder(32).swap_interval(5).build();
        let mut slow = SoftWear::builder(32).swap_interval(5).build();
        for i in 0..200u64 {
            let pa = Pa::new((i * 17) % 32);
            if !fast.record_write_fast(pa) {
                fast.record_write(pa);
                while fast.pending().is_some() {
                    fast.complete_migration();
                }
            }
            slow.record_write(pa);
            while slow.pending().is_some() {
                slow.complete_migration();
            }
            assert_eq!(fast.table, slow.table, "divergence at write {i}");
        }
    }

    #[test]
    fn single_block_space_degenerates_gracefully() {
        let mut wl = SoftWear::builder(1).swap_interval(1).build();
        for _ in 0..10 {
            wl.record_write(Pa::new(0));
        }
        assert!(wl.pending().is_none(), "1-block spaces never migrate");
        assert_eq!(wl.map(Pa::new(0)), Da::new(0));
    }

    #[test]
    fn deferred_swaps_accumulate_as_debt() {
        let mut wl = SoftWear::builder(16).swap_interval(2).build();
        // Three epochs without completing anything.
        for i in 0..6 {
            wl.record_write(Pa::new(i % 3));
        }
        assert!(wl.pending().is_some());
        let mut completed = 0;
        while wl.pending().is_some() {
            wl.complete_migration();
            completed += 1;
        }
        assert!(completed >= 2, "deferred epochs owe swaps, got {completed}");
    }

    #[test]
    #[should_panic(expected = "without a pending")]
    fn completing_nothing_panics() {
        SoftWear::builder(8).build().complete_migration();
    }

    #[test]
    fn label_and_sizes() {
        let wl = SoftWear::builder(64).build();
        assert_eq!(wl.label(), "SoftWear");
        assert_eq!(wl.len(), 64);
        assert_eq!(wl.total_das(), 64);
        assert_eq!(wl.swap_interval(), 100);
    }

    #[test]
    fn clone_box_is_independent_and_identical() {
        let mut wl = SoftWear::builder(32).swap_interval(3).build();
        for i in 0..50u64 {
            wl.record_write(Pa::new(i % 5));
            while wl.pending().is_some() {
                wl.complete_migration();
            }
        }
        let mut a = wl.clone_box();
        let mut b = wl.clone_box();
        for i in 0..50u64 {
            let pa = Pa::new(i % 32);
            a.record_write(pa);
            b.record_write(pa);
            while a.pending().is_some() {
                a.complete_migration();
            }
            while b.pending().is_some() {
                b.complete_migration();
            }
            for pa in 0..32 {
                assert_eq!(a.map(Pa::new(pa)), b.map(Pa::new(pa)));
            }
        }
    }

    #[test]
    fn fuzzed_data_never_lost() {
        let mut rng = wlr_base::rng::Rng::stream(0x50F7, 0);
        for _ in 0..16 {
            let n = 64u64;
            let mut wl = SoftWear::builder(n)
                .swap_interval(1 + rng.gen_range(5))
                .build();
            let mut data: Vec<Option<u64>> = vec![None; n as usize];
            for pa in 0..n {
                data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
            }
            for _ in 0..rng.gen_range(400) {
                wl.record_write(Pa::new(rng.gen_range(n)));
                drive(&mut wl, &mut data);
            }
            for pa in 0..n {
                assert_eq!(data[wl.map(Pa::new(pa)).as_usize()], Some(pa));
            }
        }
    }
}
