//! The no-wear-leveling baseline: identity mapping, no migrations.
//!
//! Figure 6's "ECP6" and "PAYG" curves (no `-SG` suffix) run with this
//! scheme: block failures accumulate wherever the workload concentrates
//! writes, which is exactly the early-failure behaviour wear leveling is
//! meant to prevent.

use crate::traits::{Migration, WearLeveler};
use wlr_base::{Da, Pa};

/// Identity PA→DA mapping with no data movement.
///
/// ```
/// use wlr_base::{Da, Pa};
/// use wlr_wl::{NoWearLeveling, WearLeveler};
/// let mut wl = NoWearLeveling::new(16);
/// assert_eq!(wl.map(Pa::new(3)), Da::new(3));
/// wl.record_write(Pa::new(3));
/// assert!(wl.pending().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct NoWearLeveling {
    len: u64,
}

impl NoWearLeveling {
    /// Identity scheme over `len` physical addresses.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "PA space must be nonzero");
        NoWearLeveling { len }
    }
}

impl WearLeveler for NoWearLeveling {
    fn len(&self) -> u64 {
        self.len
    }

    fn total_das(&self) -> u64 {
        self.len
    }

    fn map(&self, pa: Pa) -> Da {
        assert!(pa.index() < self.len, "{pa} outside PA space {}", self.len);
        Da::new(pa.index())
    }

    fn inverse(&self, da: Da) -> Option<Pa> {
        assert!(da.index() < self.len, "{da} outside DA space {}", self.len);
        Some(Pa::new(da.index()))
    }

    fn record_write(&mut self, _pa: Pa) {}

    #[inline]
    fn record_write_fast(&mut self, _pa: Pa) -> bool {
        true
    }

    fn pending(&self) -> Option<Migration> {
        None
    }

    fn complete_migration(&mut self) {
        panic!("NoWearLeveling never has a pending migration");
    }

    fn label(&self) -> String {
        "none".to_string()
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let wl = NoWearLeveling::new(8);
        for i in 0..8 {
            assert_eq!(wl.map(Pa::new(i)), Da::new(i));
            assert_eq!(wl.inverse(Da::new(i)), Some(Pa::new(i)));
        }
        assert_eq!(wl.total_das(), 8);
        assert_eq!(wl.label(), "none");
    }

    #[test]
    fn never_migrates() {
        let mut wl = NoWearLeveling::new(8);
        for i in 0..1000 {
            wl.record_write(Pa::new(i % 8));
        }
        assert!(wl.pending().is_none());
    }

    #[test]
    #[should_panic(expected = "never has a pending")]
    fn complete_panics() {
        NoWearLeveling::new(8).complete_migration();
    }
}
