//! SAWL-style self-adaptive wear-leveling granularity.
//!
//! Fixed-rate schemes pay a constant migration overhead regardless of how
//! hostile the workload actually is: under uniform traffic Start-Gap's ψ
//! writes-per-gap-move are mostly wasted wear, while under a pinned hot
//! line the same ψ may be too slow. SAWL's observation is that the right
//! granularity can be chosen *online* from the observed wear imbalance.
//!
//! [`Adaptive`] wraps any [`WearLeveler`] and paces how fast the inner
//! scheme's write clock advances:
//!
//! * every serviced write updates per-PA write counters (epoch-stamped,
//!   O(1)) plus running `Σc` / `Σc²` aggregates, so the coefficient of
//!   variation of the write distribution — the driver of wear imbalance —
//!   is available in O(1) at any time;
//! * every `epoch_writes` writes the CoV is evaluated against a band:
//!   above `cov_hi` the forwarding rate doubles (inner migrations come
//!   sooner — the effective interval narrows), below `cov_lo` it halves
//!   (the interval widens), always clamped to `[rate_min, rate_max]`;
//! * the rate is applied through a Q16 fixed-point credit accumulator:
//!   each real write adds `rate` credit and every whole credit forwards
//!   one `record_write` to the inner scheme. At rate 4 the inner scheme
//!   ages four write-clocks per write; at rate ¼ only every fourth write
//!   reaches it.
//!
//! The mapping itself is untouched — `map`/`inverse`/`pending`/
//! `complete_migration` delegate — so the wrapper composes with the
//! WL-Reviver framework exactly like the scheme it wraps.

use crate::traits::{Migration, WearLeveler};
use wlr_base::{Da, Pa};

const Q: u64 = 1 << 16;

/// Builder for [`Adaptive`]; see [`Adaptive::builder`].
#[derive(Debug)]
pub struct AdaptiveBuilder<W> {
    inner: W,
    epoch_writes: u64,
    cov_lo: f64,
    cov_hi: f64,
    rate_min: f64,
    rate_max: f64,
}

impl<W: WearLeveler + Clone + 'static> AdaptiveBuilder<W> {
    /// Writes between successive CoV evaluations (default `4 * len`).
    pub fn epoch_writes(mut self, writes: u64) -> Self {
        self.epoch_writes = writes;
        self
    }

    /// CoV band: below `lo` the rate halves, above `hi` it doubles
    /// (default `0.75 .. 1.5`, calibrated so uniform traffic at the
    /// default epoch falls below the band and adversarial skew above it).
    pub fn cov_band(mut self, lo: f64, hi: f64) -> Self {
        self.cov_lo = lo;
        self.cov_hi = hi;
        self
    }

    /// Clamp bounds for the forwarding rate (default `0.25 .. 4.0`).
    pub fn rate_bounds(mut self, min: f64, max: f64) -> Self {
        self.rate_min = min;
        self.rate_max = max;
        self
    }

    /// Builds the wrapper.
    ///
    /// # Panics
    ///
    /// Panics if the epoch is zero, the band is inverted, or the rate
    /// bounds are non-positive or inverted.
    pub fn build(self) -> Adaptive<W> {
        assert!(self.epoch_writes > 0, "adaptation epoch must be nonzero");
        assert!(
            self.cov_lo < self.cov_hi,
            "CoV band must satisfy lo < hi (got {} .. {})",
            self.cov_lo,
            self.cov_hi
        );
        assert!(
            self.rate_min > 0.0 && self.rate_min <= self.rate_max,
            "rate bounds must satisfy 0 < min <= max (got {} .. {})",
            self.rate_min,
            self.rate_max
        );
        let n = self.inner.len() as usize;
        Adaptive {
            epoch_writes: self.epoch_writes,
            cov_lo: self.cov_lo,
            cov_hi: self.cov_hi,
            rate_min_q16: (self.rate_min * Q as f64) as u64,
            rate_max_q16: (self.rate_max * Q as f64) as u64,
            rate_q16: Q,
            credit_q16: 0,
            counts: vec![0; n],
            stamp: vec![0; n],
            epoch_id: 1,
            sum: 0,
            sum_sq: 0,
            writes_in_epoch: 0,
            last_cov: 0.0,
            inner: self.inner,
        }
    }
}

/// A SAWL-style adaptive pacing wrapper over any wear-leveling scheme.
/// See the module docs for the adaptation rule.
///
/// ```
/// use wlr_base::Pa;
/// use wlr_wl::{Adaptive, StartGap, WearLeveler};
///
/// let inner = StartGap::builder(64).gap_interval(8).build();
/// let mut wl = Adaptive::builder(inner).epoch_writes(32).build();
/// let da = wl.map(Pa::new(5));
/// assert_eq!(wl.inverse(da), Some(Pa::new(5)));
/// assert_eq!(wl.rate(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adaptive<W> {
    inner: W,
    epoch_writes: u64,
    cov_lo: f64,
    cov_hi: f64,
    rate_min_q16: u64,
    rate_max_q16: u64,
    /// Current forwarding rate in Q16 fixed point.
    rate_q16: u64,
    /// Fractional write-clock credit owed to the inner scheme.
    credit_q16: u64,
    /// Per-PA writes within the current epoch, valid iff the stamp matches.
    counts: Vec<u64>,
    stamp: Vec<u32>,
    epoch_id: u32,
    /// Running Σ count over the epoch (= writes_in_epoch).
    sum: u64,
    /// Running Σ count² over the epoch, maintained incrementally.
    sum_sq: u128,
    writes_in_epoch: u64,
    last_cov: f64,
}

impl<W: WearLeveler + Clone + 'static> Adaptive<W> {
    /// Starts building an adaptive wrapper around `inner`.
    pub fn builder(inner: W) -> AdaptiveBuilder<W> {
        let epoch = inner.len().saturating_mul(4).max(1);
        AdaptiveBuilder {
            inner,
            epoch_writes: epoch,
            cov_lo: 0.75,
            cov_hi: 1.5,
            rate_min: 0.25,
            rate_max: 4.0,
        }
    }

    /// The current forwarding rate (1.0 = the inner scheme's native pace).
    pub fn rate(&self) -> f64 {
        self.rate_q16 as f64 / Q as f64
    }

    /// The CoV observed at the last epoch boundary.
    pub fn last_cov(&self) -> f64 {
        self.last_cov
    }

    /// Read access to the wrapped scheme.
    pub fn inner(&self) -> &W {
        &self.inner
    }

    fn observe(&mut self, pa: Pa) {
        let i = pa.index() as usize;
        if self.stamp[i] != self.epoch_id {
            self.stamp[i] = self.epoch_id;
            self.counts[i] = 0;
        }
        let c = self.counts[i];
        self.counts[i] = c + 1;
        self.sum += 1;
        self.sum_sq += u128::from(2 * c + 1);
        self.writes_in_epoch += 1;
        if self.writes_in_epoch >= self.epoch_writes {
            self.adapt();
        }
    }

    /// Epoch boundary: evaluate the CoV of the epoch's write distribution
    /// over all `len` PAs (untouched PAs count as zero) and step the rate.
    fn adapt(&mut self) {
        let n = self.inner.len() as f64;
        let mean = self.sum as f64 / n;
        let var = (self.sum_sq as f64 / n - mean * mean).max(0.0);
        let cov = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        self.last_cov = cov;
        if cov > self.cov_hi {
            self.rate_q16 = (self.rate_q16 * 2).min(self.rate_max_q16);
        } else if cov < self.cov_lo {
            self.rate_q16 = (self.rate_q16 / 2).max(self.rate_min_q16);
        }
        self.epoch_id = self.epoch_id.wrapping_add(1);
        if self.epoch_id == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch_id = 1;
        }
        self.sum = 0;
        self.sum_sq = 0;
        self.writes_in_epoch = 0;
    }
}

impl<W: WearLeveler + Clone + 'static> WearLeveler for Adaptive<W> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn total_das(&self) -> u64 {
        self.inner.total_das()
    }

    #[inline]
    fn map(&self, pa: Pa) -> Da {
        self.inner.map(pa)
    }

    #[inline]
    fn inverse(&self, da: Da) -> Option<Pa> {
        self.inner.inverse(da)
    }

    fn record_write(&mut self, pa: Pa) {
        self.observe(pa);
        self.credit_q16 += self.rate_q16;
        while self.credit_q16 >= Q {
            self.credit_q16 -= Q;
            self.inner.record_write(pa);
        }
    }

    fn pending(&self) -> Option<Migration> {
        self.inner.pending()
    }

    fn complete_migration(&mut self) {
        self.inner.complete_migration();
    }

    fn label(&self) -> String {
        format!("Adaptive({})", self.inner.label())
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::start_gap::StartGap;

    fn adaptive_sg(len: u64, psi: u64, epoch: u64) -> Adaptive<StartGap> {
        let inner = StartGap::builder(len).gap_interval(psi).build();
        Adaptive::builder(inner).epoch_writes(epoch).build()
    }

    fn drain(wl: &mut dyn WearLeveler) -> u64 {
        let mut n = 0;
        while wl.pending().is_some() {
            wl.complete_migration();
            n += 1;
        }
        n
    }

    #[test]
    fn delegates_mapping_bijectively() {
        let wl = adaptive_sg(64, 8, 32);
        let mut hit = vec![false; wl.total_das() as usize];
        for pa in 0..wl.len() {
            let da = wl.map(Pa::new(pa));
            assert!(!hit[da.as_usize()]);
            hit[da.as_usize()] = true;
            assert_eq!(wl.inverse(da), Some(Pa::new(pa)));
        }
        assert_eq!(hit.iter().filter(|&&h| !h).count(), 1, "one gap line");
    }

    #[test]
    fn rate_rises_under_pinned_hot_line() {
        let mut wl = adaptive_sg(64, 8, 64);
        for _ in 0..64 * 8 {
            wl.record_write(Pa::new(0));
            drain(&mut wl);
        }
        assert!(
            wl.last_cov() > 1.5,
            "a single hot line is maximally skewed, cov={}",
            wl.last_cov()
        );
        assert_eq!(wl.rate(), 4.0, "rate should clamp at the maximum");
    }

    #[test]
    fn rate_falls_under_uniform_traffic() {
        let mut wl = adaptive_sg(64, 8, 256);
        for i in 0..256u64 * 8 {
            wl.record_write(Pa::new(i % 64)); // perfectly uniform
            drain(&mut wl);
        }
        assert!(
            wl.last_cov() < 0.75,
            "round-robin traffic has near-zero cov, cov={}",
            wl.last_cov()
        );
        assert_eq!(wl.rate(), 0.25, "rate should clamp at the minimum");
    }

    #[test]
    fn high_rate_narrows_the_migration_interval() {
        // At rate 4 the inner ψ=16 behaves like ψ=4.
        let mut wl = adaptive_sg(64, 16, 16);
        // Drive the rate to max with a hot line.
        for _ in 0..16 * 16 {
            wl.record_write(Pa::new(0));
            drain(&mut wl);
        }
        assert_eq!(wl.rate(), 4.0);
        let mut migrations = 0;
        for _ in 0..64 {
            wl.record_write(Pa::new(0));
            migrations += drain(&mut wl);
        }
        assert!(
            migrations >= 12,
            "64 writes at rate 4 under ψ=16 should move ~16 gaps, got {migrations}"
        );
    }

    #[test]
    fn low_rate_widens_the_migration_interval() {
        let mut wl = adaptive_sg(64, 4, 64);
        for i in 0..64u64 * 8 {
            wl.record_write(Pa::new(i % 64));
            drain(&mut wl);
        }
        assert_eq!(wl.rate(), 0.25);
        let mut migrations = 0;
        for i in 0..64u64 {
            wl.record_write(Pa::new(i % 64));
            migrations += drain(&mut wl);
        }
        assert!(
            migrations <= 5,
            "64 writes at rate 1/4 under ψ=4 should move ~4 gaps, got {migrations}"
        );
    }

    #[test]
    fn data_preserved_through_adaptive_migrations() {
        let inner = StartGap::builder(64).gap_interval(4).build();
        let mut wl = Adaptive::builder(inner).epoch_writes(32).build();
        let total = wl.total_das() as usize;
        let mut data: Vec<Option<u64>> = vec![None; total];
        for pa in 0..wl.len() {
            data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
        }
        for step in 0..2_000u64 {
            wl.record_write(Pa::new(step % 7));
            while let Some(m) = wl.pending() {
                match m {
                    Migration::Copy { src, dst } => {
                        data[dst.as_usize()] = data[src.as_usize()].take()
                    }
                    Migration::Swap { a, b } => data.swap(a.as_usize(), b.as_usize()),
                }
                wl.complete_migration();
            }
            for pa in 0..wl.len() {
                assert_eq!(
                    data[wl.map(Pa::new(pa)).as_usize()],
                    Some(pa),
                    "PA {pa} lost at step {step}"
                );
            }
        }
    }

    #[test]
    fn rate_is_clamped_and_steps_by_powers_of_two() {
        let inner = StartGap::builder(16).gap_interval(4).build();
        let mut wl = Adaptive::builder(inner)
            .epoch_writes(8)
            .rate_bounds(0.5, 2.0)
            .build();
        for _ in 0..100 {
            wl.record_write(Pa::new(0));
            drain(&mut wl);
        }
        assert_eq!(wl.rate(), 2.0, "clamped at custom max");
    }

    #[test]
    fn label_names_the_inner_scheme() {
        let wl = adaptive_sg(32, 4, 16);
        assert_eq!(wl.label(), "Adaptive(Start-Gap)");
    }

    #[test]
    fn clone_box_replays_identically() {
        let mut wl = adaptive_sg(32, 4, 16);
        for i in 0..100u64 {
            wl.record_write(Pa::new(i % 5));
            drain(&mut wl);
        }
        let mut a = wl.clone_box();
        let mut b = wl.clone_box();
        for i in 0..200u64 {
            let pa = Pa::new((i * 13) % 32);
            a.record_write(pa);
            b.record_write(pa);
            drain(a.as_mut());
            drain(b.as_mut());
        }
        for pa in 0..32 {
            assert_eq!(a.map(Pa::new(pa)), b.map(Pa::new(pa)));
        }
    }

    #[test]
    #[should_panic(expected = "epoch must be nonzero")]
    fn zero_epoch_panics() {
        let inner = StartGap::builder(16).gap_interval(4).build();
        Adaptive::builder(inner).epoch_writes(0).build();
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_band_panics() {
        let inner = StartGap::builder(16).gap_interval(4).build();
        Adaptive::builder(inner).cov_band(2.0, 1.0).build();
    }
}
