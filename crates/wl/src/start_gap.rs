//! Start-Gap wear leveling (Qureshi et al., MICRO'09).
//!
//! The scheme manages `N` physical addresses over `N + 1` device blocks;
//! the extra block is the *gap line* and never holds live data. Two
//! registers, `start` and `gap`, define the algebraic PA→DA mapping:
//!
//! ```text
//! x  = (randomize(pa) + start) mod N
//! da = x + 1  if x >= gap  else  x
//! ```
//!
//! Every ψ serviced writes (ψ = 100 in the paper) the gap moves one
//! position by copying its logical predecessor into the gap line:
//!
//! * `gap > 0`: copy DA `gap−1` → DA `gap`, then `gap -= 1`;
//! * `gap = 0`: copy DA `N` → DA `0`, then `gap = N`, `start += 1 (mod N)`
//!   — one full rotation shifts every line by one position.
//!
//! After `N + 1` movements every block has hosted the gap exactly once, so
//! writes spread over the whole space; the static randomizer
//! ([`crate::randomizer`]) decorrelates spatially clustered hot lines.
//!
//! This implementation keeps the *exact* register semantics (including the
//! wrap migration) so that the mapping stays a bijection at every
//! intermediate state — a property the WL-Reviver framework's Theorem 3
//! depends on, and which the property tests here verify directly.

use crate::randomizer::{AddressRandomizer, RandomizerKind};
use crate::traits::{Migration, WearLeveler};
use wlr_base::{Da, Pa};

/// Builder for [`StartGap`]; see [`StartGap::builder`].
#[derive(Debug)]
pub struct StartGapBuilder {
    len: u64,
    gap_interval: u64,
    randomizer: RandomizerKind,
}

impl StartGapBuilder {
    /// Number of serviced writes between gap movements (the paper's ψ;
    /// default 100).
    pub fn gap_interval(mut self, psi: u64) -> Self {
        self.gap_interval = psi;
        self
    }

    /// Static randomization layer (default: Feistel with seed 0).
    pub fn randomizer(mut self, kind: RandomizerKind) -> Self {
        self.randomizer = kind;
        self
    }

    /// Builds the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the PA-space size or the gap interval is zero.
    pub fn build(self) -> StartGap {
        assert!(self.len > 0, "Start-Gap needs a nonzero PA space");
        assert!(self.gap_interval > 0, "gap interval must be nonzero");
        StartGap {
            len: self.len,
            start: 0,
            gap: self.len,
            gap_interval: self.gap_interval,
            writes_since_move: 0,
            debt: 0,
            randomizer: self.randomizer.build(self.len),
        }
    }
}

/// The Start-Gap scheme. See the module docs for the algorithm and
/// [`WearLeveler`] for the driving protocol.
///
/// ```
/// use wlr_base::{Da, Pa};
/// use wlr_wl::{RandomizerKind, StartGap, WearLeveler};
///
/// let mut wl = StartGap::builder(8)
///     .gap_interval(1)
///     .randomizer(RandomizerKind::Identity)
///     .build();
/// // Initially the identity (gap parks at DA 8).
/// assert_eq!(wl.map(Pa::new(3)), Da::new(3));
/// // One write arms one gap move: DA 7 -> DA 8.
/// wl.record_write(Pa::new(0));
/// assert!(matches!(
///     wl.pending(),
///     Some(wlr_wl::Migration::Copy { .. })
/// ));
/// wl.complete_migration();
/// assert_eq!(wl.map(Pa::new(7)), Da::new(8));
/// ```
#[derive(Debug)]
pub struct StartGap {
    len: u64,
    start: u64,
    /// Gap position in `[0, len]`; the gap DA holds no live data.
    gap: u64,
    gap_interval: u64,
    writes_since_move: u64,
    /// Gap movements owed but not yet performed (grows while the caller
    /// defers migrations, e.g. WL-Reviver's delayed space acquisition).
    debt: u64,
    randomizer: Box<dyn AddressRandomizer>,
}

impl Clone for StartGap {
    fn clone(&self) -> Self {
        StartGap {
            len: self.len,
            start: self.start,
            gap: self.gap,
            gap_interval: self.gap_interval,
            writes_since_move: self.writes_since_move,
            debt: self.debt,
            randomizer: self.randomizer.clone_box(),
        }
    }
}

impl StartGap {
    /// Starts building a Start-Gap instance over `len` physical addresses.
    pub fn builder(len: u64) -> StartGapBuilder {
        StartGapBuilder {
            len,
            gap_interval: 100,
            randomizer: RandomizerKind::Feistel { seed: 0 },
        }
    }

    /// Current gap device address.
    pub fn gap_da(&self) -> Da {
        Da::new(self.gap)
    }

    /// Current start-register value.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Outstanding (armed but unperformed) gap movements.
    pub fn debt(&self) -> u64 {
        self.debt
    }
}

impl WearLeveler for StartGap {
    fn len(&self) -> u64 {
        self.len
    }

    fn total_das(&self) -> u64 {
        self.len + 1
    }

    #[inline]
    fn map(&self, pa: Pa) -> Da {
        assert!(pa.index() < self.len, "{pa} outside PA space {}", self.len);
        let ra = self.randomizer.forward(pa.index());
        let x = add_mod(ra, self.start, self.len);
        Da::new(if x >= self.gap { x + 1 } else { x })
    }

    #[inline]
    fn inverse(&self, da: Da) -> Option<Pa> {
        assert!(
            da.index() <= self.len,
            "{da} outside DA space {}",
            self.len + 1
        );
        if da.index() == self.gap {
            return None;
        }
        let x = if da.index() > self.gap {
            da.index() - 1
        } else {
            da.index()
        };
        let ra = sub_mod(x, self.start, self.len);
        Some(Pa::new(self.randomizer.backward(ra)))
    }

    fn record_write(&mut self, _pa: Pa) {
        self.writes_since_move += 1;
        if self.writes_since_move >= self.gap_interval {
            self.writes_since_move = 0;
            self.debt += 1;
        }
    }

    #[inline]
    fn record_write_fast(&mut self, _pa: Pa) -> bool {
        // Fast only when no migration is owed and recording this write
        // won't arm one: the gap stands still and `pending()` stays
        // `None` across the recording.
        if self.debt != 0 || self.writes_since_move + 1 >= self.gap_interval {
            return false;
        }
        self.writes_since_move += 1;
        true
    }

    fn pending(&self) -> Option<Migration> {
        if self.debt == 0 {
            return None;
        }
        Some(if self.gap > 0 {
            Migration::Copy {
                src: Da::new(self.gap - 1),
                dst: Da::new(self.gap),
            }
        } else {
            // Wrap movement: the line at DA N slides into DA 0 and the
            // start register advances.
            Migration::Copy {
                src: Da::new(self.len),
                dst: Da::new(0),
            }
        })
    }

    fn complete_migration(&mut self) {
        assert!(self.debt > 0, "complete_migration without a pending one");
        if self.gap > 0 {
            self.gap -= 1;
        } else {
            self.gap = self.len;
            self.start = add_mod(self.start, 1, self.len);
        }
        self.debt -= 1;
    }

    fn label(&self) -> String {
        "Start-Gap".to_string()
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[inline]
fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    let s = a + b;
    if s >= m {
        s - m
    } else {
        s
    }
}

#[inline]
fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + m - b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_base::rng::Rng;

    fn identity_sg(len: u64, psi: u64) -> StartGap {
        StartGap::builder(len)
            .gap_interval(psi)
            .randomizer(RandomizerKind::Identity)
            .build()
    }

    fn assert_bijection(wl: &dyn WearLeveler) {
        let mut hit = vec![false; wl.total_das() as usize];
        for pa in 0..wl.len() {
            let da = wl.map(Pa::new(pa));
            assert!(da.index() < wl.total_das());
            assert!(!hit[da.as_usize()], "two PAs map to {da}");
            hit[da.as_usize()] = true;
            assert_eq!(wl.inverse(da), Some(Pa::new(pa)));
        }
        let gaps = hit.iter().filter(|&&h| !h).count();
        assert_eq!(gaps, 1, "exactly one DA (the gap) must be unmapped");
    }

    #[test]
    fn initial_mapping_is_identity_with_identity_randomizer() {
        let wl = identity_sg(16, 1);
        for pa in 0..16 {
            assert_eq!(wl.map(Pa::new(pa)), Da::new(pa));
        }
        assert_eq!(wl.inverse(Da::new(16)), None, "gap starts at DA N");
    }

    #[test]
    fn bijection_holds_through_full_rotations() {
        let mut wl = identity_sg(8, 1);
        // 3 full rotations = 27 gap movements.
        for step in 0..27 {
            wl.record_write(Pa::new(0));
            assert!(wl.pending().is_some(), "step {step} should arm a move");
            wl.complete_migration();
            assert_bijection(&wl);
        }
    }

    #[test]
    fn one_rotation_shifts_start() {
        let mut wl = identity_sg(8, 1);
        for _ in 0..9 {
            wl.record_write(Pa::new(0));
            wl.complete_migration();
        }
        assert_eq!(wl.start(), 1, "N+1 movements advance start by one");
        assert_eq!(wl.gap_da(), Da::new(8), "gap returns to the end");
    }

    #[test]
    fn gap_interval_pacing() {
        let mut wl = identity_sg(16, 100);
        for _ in 0..99 {
            wl.record_write(Pa::new(0));
        }
        assert!(wl.pending().is_none(), "no move before psi writes");
        wl.record_write(Pa::new(0));
        assert!(wl.pending().is_some(), "100th write arms a move");
    }

    #[test]
    fn debt_accumulates_while_deferred() {
        let mut wl = identity_sg(16, 10);
        for _ in 0..35 {
            wl.record_write(Pa::new(0));
        }
        assert_eq!(wl.debt(), 3);
        wl.complete_migration();
        wl.complete_migration();
        assert_eq!(wl.debt(), 1);
        assert!(wl.pending().is_some());
        wl.complete_migration();
        assert!(wl.pending().is_none());
    }

    #[test]
    #[should_panic(expected = "without a pending")]
    fn completing_nothing_panics() {
        identity_sg(8, 1).complete_migration();
    }

    #[test]
    fn migration_moves_data_correctly() {
        // Model the device as an array indexed by DA and check that the
        // mapping tracks the data through an entire rotation.
        let n = 8u64;
        let mut wl = identity_sg(n, 1);
        let mut data: Vec<Option<u64>> = (0..n).map(Some).collect();
        data.push(None); // gap line
        for _ in 0..(n + 1) * 2 {
            wl.record_write(Pa::new(0));
            if let Some(Migration::Copy { src, dst }) = wl.pending() {
                data[dst.as_usize()] = data[src.as_usize()].take();
            } else {
                panic!("Start-Gap must emit Copy migrations");
            }
            wl.complete_migration();
            for pa in 0..n {
                let da = wl.map(Pa::new(pa));
                assert_eq!(
                    data[da.as_usize()],
                    Some(pa),
                    "data for PA {pa} lost after migration"
                );
            }
            let gap = wl.gap_da();
            assert_eq!(data[gap.as_usize()], None, "gap line must be empty");
        }
    }

    #[test]
    fn randomized_variants_stay_bijective() {
        for kind in [
            RandomizerKind::Feistel { seed: 3 },
            RandomizerKind::Table { seed: 3 },
            RandomizerKind::HalfRestricted { seed: 3 },
        ] {
            let mut wl = StartGap::builder(64)
                .gap_interval(1)
                .randomizer(kind)
                .build();
            for _ in 0..130 {
                wl.record_write(Pa::new(1));
                wl.complete_migration();
            }
            assert_bijection(&wl);
        }
    }

    #[test]
    fn label_and_sizes() {
        let wl = identity_sg(32, 1);
        assert_eq!(wl.label(), "Start-Gap");
        assert_eq!(wl.len(), 32);
        assert_eq!(wl.total_das(), 33);
        assert!(!wl.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside PA space")]
    fn map_out_of_range_panics() {
        identity_sg(8, 1).map(Pa::new(8));
    }

    #[test]
    fn bijection_after_random_walk() {
        // Deterministic sweep over (len, psi, steps, seed) combinations.
        let mut rng = Rng::stream(0xB17E, 0);
        for case in 0..64 {
            let len = 2 + rng.gen_range(62);
            let psi = 1 + rng.gen_range(4);
            let steps = rng.gen_range(200);
            let seed = rng.next_u64();
            let mut wl = StartGap::builder(len)
                .gap_interval(psi)
                .randomizer(RandomizerKind::Feistel { seed })
                .build();
            for _ in 0..steps {
                wl.record_write(Pa::new(0));
                while wl.pending().is_some() {
                    wl.complete_migration();
                }
            }
            let mut hit = vec![false; wl.total_das() as usize];
            for pa in 0..len {
                let da = wl.map(Pa::new(pa));
                assert!(!hit[da.as_usize()], "case {case}: two PAs map to {da}");
                hit[da.as_usize()] = true;
                assert_eq!(wl.inverse(da), Some(Pa::new(pa)));
            }
        }
    }
}
