//! Static invertible address randomization.
//!
//! Start-Gap alone only shifts addresses by one position per gap rotation,
//! so spatially clustered hot lines would march through the space together
//! and wear out a moving front. The Start-Gap paper therefore composes the
//! gap movement with a *static* random bijection of the address space; the
//! WL-Reviver paper's Figure 8 discussion hinges on this component (LLS
//! must restrict it, WL-Reviver keeps it intact).
//!
//! Implementations:
//!
//! * [`IdentityRandomizer`] — no randomization (ablation baseline).
//! * [`TableRandomizer`] — an explicit random permutation plus its inverse
//!   (exact, O(N) memory; what the Start-Gap paper calls RIB).
//! * [`FeistelRandomizer`] — a 4-round Feistel network with cycle-walking
//!   for non-power-of-two domains (O(1) memory; the Start-Gap paper's FPB).
//! * [`HalfRestrictedRandomizer`] — LLS's weakened variant: the first half
//!   of the PA space randomizes only into the second half of the
//!   intermediate space and vice versa (§IV-D), which is what keeps
//!   concentrated writes from spreading across the whole chip under LLS.

use core::fmt;
use wlr_base::rng::{Rng, SplitMix64};

/// An invertible mapping on the block-address domain `[0, len)`.
pub trait AddressRandomizer: fmt::Debug + Send {
    /// Domain size.
    fn len(&self) -> u64;

    /// Whether the domain is empty (never true for valid configurations).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forward mapping; a bijection on `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    fn forward(&self, x: u64) -> u64;

    /// Inverse mapping: `backward(forward(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= len()`.
    fn backward(&self, y: u64) -> u64;

    /// Deep copy of the randomizer, for leveler/simulation snapshots.
    fn clone_box(&self) -> Box<dyn AddressRandomizer>;
}

/// Declarative randomizer choice, for builders and experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomizerKind {
    /// No randomization.
    Identity,
    /// Explicit permutation table seeded from `seed`.
    Table {
        /// Permutation seed.
        seed: u64,
    },
    /// Feistel network seeded from `seed`.
    Feistel {
        /// Key-derivation seed.
        seed: u64,
    },
    /// LLS's half-restricted randomization seeded from `seed`.
    HalfRestricted {
        /// Seed for the two half-permutations.
        seed: u64,
    },
}

impl RandomizerKind {
    /// Instantiates the randomizer for a domain of `len` addresses.
    ///
    /// # Panics
    ///
    /// Panics under the constructors' conditions (e.g. `HalfRestricted`
    /// requires an even `len`).
    pub fn build(self, len: u64) -> Box<dyn AddressRandomizer> {
        match self {
            RandomizerKind::Identity => Box::new(IdentityRandomizer::new(len)),
            RandomizerKind::Table { seed } => Box::new(TableRandomizer::new(len, seed)),
            RandomizerKind::Feistel { seed } => {
                let feistel = FeistelRandomizer::new(len, seed);
                // The network is on Start-Gap's per-write path; at the
                // simulator's scaled domains a memoized table (16 B per
                // address) beats four rounds of mixing plus cycle-walking.
                // Beyond the gate the table cost would dominate, and the
                // O(1)-memory network is the whole point at chip scale.
                if len <= MEMOIZE_MAX_DOMAIN {
                    Box::new(MemoizedRandomizer::new(feistel))
                } else {
                    Box::new(feistel)
                }
            }
            RandomizerKind::HalfRestricted { seed } => {
                Box::new(HalfRestrictedRandomizer::new(len, seed))
            }
        }
    }
}

/// The identity mapping.
///
/// ```
/// use wlr_wl::randomizer::{AddressRandomizer, IdentityRandomizer};
/// let r = IdentityRandomizer::new(8);
/// assert_eq!(r.forward(3), 3);
/// assert_eq!(r.backward(3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IdentityRandomizer {
    len: u64,
}

impl IdentityRandomizer {
    /// Identity over `[0, len)`.
    pub fn new(len: u64) -> Self {
        assert!(len > 0, "randomizer domain must be nonzero");
        IdentityRandomizer { len }
    }
}

impl AddressRandomizer for IdentityRandomizer {
    fn len(&self) -> u64 {
        self.len
    }

    fn forward(&self, x: u64) -> u64 {
        assert!(x < self.len, "address {x} out of domain {}", self.len);
        x
    }

    fn backward(&self, y: u64) -> u64 {
        assert!(y < self.len, "address {y} out of domain {}", self.len);
        y
    }

    fn clone_box(&self) -> Box<dyn AddressRandomizer> {
        Box::new(self.clone())
    }
}

/// An explicit random permutation (Fisher–Yates) with a stored inverse.
///
/// Exact and fast, at 16 bytes per address — fine at the scaled default
/// geometry; use [`FeistelRandomizer`] at paper scale.
#[derive(Debug, Clone)]
pub struct TableRandomizer {
    forward: Vec<u64>,
    backward: Vec<u64>,
}

impl TableRandomizer {
    /// A uniformly random permutation of `[0, len)` from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or exceeds the host's address space.
    pub fn new(len: u64, seed: u64) -> Self {
        assert!(len > 0, "randomizer domain must be nonzero");
        let n = usize::try_from(len).expect("domain too large for a table");
        let mut forward: Vec<u64> = (0..len).collect();
        Rng::stream(seed, 0x7AB1E).shuffle(&mut forward);
        let mut backward = vec![0u64; n];
        for (i, &v) in forward.iter().enumerate() {
            backward[usize::try_from(v).expect("fits")] = i as u64;
        }
        TableRandomizer { forward, backward }
    }
}

impl AddressRandomizer for TableRandomizer {
    fn len(&self) -> u64 {
        self.forward.len() as u64
    }

    fn forward(&self, x: u64) -> u64 {
        self.forward[usize::try_from(x).expect("address out of domain")]
    }

    fn backward(&self, y: u64) -> u64 {
        self.backward[usize::try_from(y).expect("address out of domain")]
    }

    fn clone_box(&self) -> Box<dyn AddressRandomizer> {
        Box::new(self.clone())
    }
}

/// A 4-round balanced Feistel network over the next even-bit power of two,
/// restricted to `[0, len)` by cycle-walking.
///
/// Cycle-walking re-applies the permutation while the value lands outside
/// the domain; because the underlying map is a bijection on the enclosing
/// power of two, the walk always terminates and the restriction is itself
/// a bijection on `[0, len)`.
///
/// ```
/// use wlr_wl::randomizer::{AddressRandomizer, FeistelRandomizer};
/// let r = FeistelRandomizer::new(1000, 9);
/// for x in 0..1000 {
///     assert_eq!(r.backward(r.forward(x)), x);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FeistelRandomizer {
    len: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl FeistelRandomizer {
    /// A Feistel permutation of `[0, len)` keyed from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: u64, seed: u64) -> Self {
        assert!(len > 0, "randomizer domain must be nonzero");
        // Enclosing domain: 2^(2*half_bits) >= len, half_bits >= 1.
        let bits = 64 - (len - 1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let mut sm = SplitMix64::new(seed ^ 0xFE15_7E1D);
        let keys = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        FeistelRandomizer {
            len,
            half_bits,
            keys,
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.half_bits) - 1
    }

    #[inline]
    fn round(&self, r: u64, key: u64) -> u64 {
        SplitMix64::mix(key, r) & self.mask()
    }

    #[inline]
    fn permute_once(&self, x: u64) -> u64 {
        let mut l = x >> self.half_bits;
        let mut r = x & self.mask();
        for &k in &self.keys {
            let (nl, nr) = (r, l ^ self.round(r, k));
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }

    #[inline]
    fn unpermute_once(&self, y: u64) -> u64 {
        let mut l = y >> self.half_bits;
        let mut r = y & self.mask();
        for &k in self.keys.iter().rev() {
            let (nl, nr) = (r ^ self.round(l, k), l);
            l = nl;
            r = nr;
        }
        (l << self.half_bits) | r
    }
}

impl AddressRandomizer for FeistelRandomizer {
    fn len(&self) -> u64 {
        self.len
    }

    fn forward(&self, x: u64) -> u64 {
        assert!(x < self.len, "address {x} out of domain {}", self.len);
        let mut y = self.permute_once(x);
        while y >= self.len {
            y = self.permute_once(y);
        }
        y
    }

    fn backward(&self, y: u64) -> u64 {
        assert!(y < self.len, "address {y} out of domain {}", self.len);
        let mut x = self.unpermute_once(y);
        while x >= self.len {
            x = self.unpermute_once(x);
        }
        x
    }

    fn clone_box(&self) -> Box<dyn AddressRandomizer> {
        Box::new(self.clone())
    }
}

/// Largest domain [`RandomizerKind::build`] will memoize into tables.
const MEMOIZE_MAX_DOMAIN: u64 = 1 << 20;

/// Any randomizer, memoized into forward/backward lookup tables.
///
/// Produces the *identical* bijection as the wrapped randomizer — it is a
/// pure evaluation-speed trade (two `Vec` indexings per mapping instead of
/// whatever the inner randomizer computes), so swapping it in cannot
/// change any simulation outcome.
///
/// ```
/// use wlr_wl::randomizer::{AddressRandomizer, FeistelRandomizer, MemoizedRandomizer};
/// let inner = FeistelRandomizer::new(1000, 9);
/// let memo = MemoizedRandomizer::new(inner.clone());
/// for x in 0..1000 {
///     assert_eq!(memo.forward(x), inner.forward(x));
///     assert_eq!(memo.backward(x), inner.backward(x));
/// }
/// ```
#[derive(Clone)]
pub struct MemoizedRandomizer {
    forward: Vec<u64>,
    backward: Vec<u64>,
    inner: &'static str,
}

impl MemoizedRandomizer {
    /// Tabulates `inner` over its whole domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain exceeds the host's address space.
    pub fn new<R: AddressRandomizer + fmt::Debug>(inner: R) -> Self {
        let len = inner.len();
        let n = usize::try_from(len).expect("domain too large to memoize");
        let mut forward = Vec::with_capacity(n);
        let mut backward = vec![0u64; n];
        for x in 0..len {
            let y = inner.forward(x);
            forward.push(y);
            backward[usize::try_from(y).expect("bijection stays in domain")] = x;
        }
        MemoizedRandomizer {
            forward,
            backward,
            inner: core::any::type_name::<R>(),
        }
    }
}

impl fmt::Debug for MemoizedRandomizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoizedRandomizer")
            .field("len", &self.forward.len())
            .field("inner", &self.inner)
            .finish()
    }
}

impl AddressRandomizer for MemoizedRandomizer {
    fn len(&self) -> u64 {
        self.forward.len() as u64
    }

    fn forward(&self, x: u64) -> u64 {
        let len = self.len();
        assert!(x < len, "address {x} out of domain {len}");
        self.forward[x as usize]
    }

    fn backward(&self, y: u64) -> u64 {
        let len = self.len();
        assert!(y < len, "address {y} out of domain {len}");
        self.backward[y as usize]
    }

    fn clone_box(&self) -> Box<dyn AddressRandomizer> {
        Box::new(self.clone())
    }
}

/// LLS's restricted randomization (paper §IV-D): addresses in the first
/// half of the domain randomize only into the second half and vice versa.
///
/// This models the adaptation the LLS design imposes on Start-Gap, which
/// "keeps concentrated writes in a region from being fully spread" — the
/// root cause of LLS's shorter lifetime in Figure 8.
#[derive(Debug, Clone)]
pub struct HalfRestrictedRandomizer {
    lo: TableRandomizer,
    hi: TableRandomizer,
    half: u64,
}

impl HalfRestrictedRandomizer {
    /// Builds the two half-permutations from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or odd.
    pub fn new(len: u64, seed: u64) -> Self {
        assert!(len > 0, "randomizer domain must be nonzero");
        assert!(
            len.is_multiple_of(2),
            "half-restricted randomizer needs an even domain"
        );
        let half = len / 2;
        HalfRestrictedRandomizer {
            lo: TableRandomizer::new(half, SplitMix64::mix(seed, 0)),
            hi: TableRandomizer::new(half, SplitMix64::mix(seed, 1)),
            half,
        }
    }
}

impl AddressRandomizer for HalfRestrictedRandomizer {
    fn len(&self) -> u64 {
        self.half * 2
    }

    fn forward(&self, x: u64) -> u64 {
        assert!(x < self.len(), "address {x} out of domain {}", self.len());
        if x < self.half {
            self.half + self.lo.forward(x)
        } else {
            self.hi.forward(x - self.half)
        }
    }

    fn backward(&self, y: u64) -> u64 {
        assert!(y < self.len(), "address {y} out of domain {}", self.len());
        if y < self.half {
            self.half + self.hi.backward(y)
        } else {
            self.lo.backward(y - self.half)
        }
    }

    fn clone_box(&self) -> Box<dyn AddressRandomizer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(r: &dyn AddressRandomizer) {
        let n = r.len();
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = r.forward(x);
            assert!(y < n, "forward({x}) = {y} escapes the domain");
            assert!(!seen[y as usize], "forward is not injective at {x}");
            seen[y as usize] = true;
            assert_eq!(r.backward(y), x, "backward(forward({x})) != {x}");
        }
    }

    #[test]
    fn identity_is_bijective() {
        assert_bijection(&IdentityRandomizer::new(33));
    }

    #[test]
    fn table_is_bijective_and_scrambles() {
        let r = TableRandomizer::new(256, 5);
        assert_bijection(&r);
        let moved = (0..256).filter(|&x| r.forward(x) != x).count();
        assert!(
            moved > 200,
            "table permutation left {moved} points moved only"
        );
    }

    #[test]
    fn feistel_is_bijective_on_power_of_two() {
        assert_bijection(&FeistelRandomizer::new(256, 11));
    }

    #[test]
    fn feistel_is_bijective_on_awkward_sizes() {
        for n in [1u64, 2, 3, 5, 100, 1000, 4097] {
            assert_bijection(&FeistelRandomizer::new(n, 13));
        }
    }

    #[test]
    fn feistel_differs_by_seed() {
        let a = FeistelRandomizer::new(1024, 1);
        let b = FeistelRandomizer::new(1024, 2);
        let same = (0..1024).filter(|&x| a.forward(x) == b.forward(x)).count();
        assert!(
            same < 32,
            "seeds produce near-identical permutations ({same})"
        );
    }

    #[test]
    fn feistel_spreads_contiguous_ranges() {
        // A hot contiguous range must not stay contiguous: check that the
        // images of 0..64 in a 4096 domain span a wide spread.
        let r = FeistelRandomizer::new(4096, 17);
        let mut images: Vec<u64> = (0..64).map(|x| r.forward(x)).collect();
        images.sort_unstable();
        let spread = images.last().unwrap() - images.first().unwrap();
        assert!(spread > 2048, "images span only {spread}");
    }

    #[test]
    fn half_restricted_crosses_halves() {
        let r = HalfRestrictedRandomizer::new(128, 23);
        assert_bijection(&r);
        for x in 0..64 {
            assert!(r.forward(x) >= 64, "low address {x} stayed in low half");
        }
        for x in 64..128 {
            assert!(r.forward(x) < 64, "high address {x} stayed in high half");
        }
    }

    #[test]
    #[should_panic(expected = "even domain")]
    fn half_restricted_rejects_odd() {
        HalfRestrictedRandomizer::new(7, 1);
    }

    #[test]
    fn kind_builds_all_variants() {
        for kind in [
            RandomizerKind::Identity,
            RandomizerKind::Table { seed: 1 },
            RandomizerKind::Feistel { seed: 1 },
            RandomizerKind::HalfRestricted { seed: 1 },
        ] {
            let r = kind.build(64);
            assert_bijection(r.as_ref());
        }
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn forward_out_of_domain_panics() {
        FeistelRandomizer::new(10, 1).forward(10);
    }

    #[test]
    fn memoized_matches_inner_exactly() {
        for n in [1u64, 2, 63, 64, 1000, 4097] {
            let inner = FeistelRandomizer::new(n, 29);
            let memo = MemoizedRandomizer::new(inner.clone());
            assert_eq!(memo.len(), inner.len());
            for x in 0..n {
                assert_eq!(memo.forward(x), inner.forward(x));
                assert_eq!(memo.backward(x), inner.backward(x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn memoized_out_of_domain_panics() {
        MemoizedRandomizer::new(FeistelRandomizer::new(10, 1)).forward(10);
    }

    #[test]
    fn feistel_roundtrip_random_domains() {
        let mut rng = Rng::stream(0xF715, 0);
        for _ in 0..128 {
            let len = 1 + rng.gen_range(4999);
            let seed = rng.next_u64();
            let x = rng.gen_range(len);
            let r = FeistelRandomizer::new(len, seed);
            let y = r.forward(x);
            assert!(y < len);
            assert_eq!(r.backward(y), x);
        }
    }

    #[test]
    fn table_roundtrip_random_domains() {
        let mut rng = Rng::stream(0x7AB7, 0);
        for _ in 0..64 {
            let len = 1 + rng.gen_range(1999);
            let seed = rng.next_u64();
            let x = rng.gen_range(len);
            let r = TableRandomizer::new(len, seed);
            assert_eq!(r.backward(r.forward(x)), x);
        }
    }
}
