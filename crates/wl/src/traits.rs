//! The wear-leveler interface assumed by the WL-Reviver framework.
//!
//! §III of the paper: *"WL-Reviver assumes only one fundamental operation
//! common to any of such schemes, which is to migrate data into a memory
//! block."* A scheme therefore exposes:
//!
//! 1. a PA→DA bijection ([`WearLeveler::map`]) and its inverse
//!    ([`WearLeveler::inverse`], Theorem 3 relies on one-to-one mapping);
//! 2. a write-paced migration schedule: the controller reports serviced
//!    software writes ([`WearLeveler::record_write`]), the scheme arms
//!    [`Migration`]s ([`WearLeveler::pending`]), and the controller
//!    acknowledges each performed migration
//!    ([`WearLeveler::complete_migration`]).
//!
//! The two-phase pending/complete protocol is what allows the framework to
//! *delay* a migration when no spare block exists (§III-A "delayed space
//! acquisition") without modifying the scheme.

use core::fmt;
use wlr_base::{Da, Pa};

/// One data-migration operation requested by a wear-leveling scheme.
///
/// Start-Gap copies into its (empty) gap line; Security Refresh swaps a
/// pair of blocks. Theorem 3's "buffer block" is explicit in the former
/// (the copy destination holds no live data) and implicit in the latter
/// (a swap destroys nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Migration {
    /// Copy the contents of `src` into `dst`; after completion the PA that
    /// mapped to `src` maps to `dst`, and `src` becomes the new buffer.
    Copy {
        /// Source device block.
        src: Da,
        /// Destination device block (the current buffer; holds no live data).
        dst: Da,
    },
    /// Exchange the contents of `a` and `b`; after completion the PAs that
    /// mapped to `a` and `b` are interchanged.
    Swap {
        /// First block of the pair.
        a: Da,
        /// Second block of the pair.
        b: Da,
    },
}

/// Up to two device blocks named by a [`Migration`], stored inline.
///
/// A migration touches one block (`Copy`) or two (`Swap`); returning this
/// instead of a `Vec<Da>` keeps [`Migration::write_targets`] and
/// [`Migration::read_sources`] allocation-free on the write hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MigrationDas {
    das: [Da; 2],
    len: u8,
}

impl MigrationDas {
    fn one(da: Da) -> Self {
        MigrationDas {
            das: [da, da],
            len: 1,
        }
    }

    fn two(a: Da, b: Da) -> Self {
        MigrationDas {
            das: [a, b],
            len: 2,
        }
    }

    /// The blocks as a slice (length 1 or 2).
    pub fn as_slice(&self) -> &[Da] {
        &self.das[..self.len as usize]
    }
}

impl core::ops::Deref for MigrationDas {
    type Target = [Da];

    fn deref(&self) -> &[Da] {
        self.as_slice()
    }
}

impl IntoIterator for MigrationDas {
    type Item = Da;
    type IntoIter = core::iter::Take<core::array::IntoIter<Da, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.das.into_iter().take(self.len as usize)
    }
}

impl Migration {
    /// The device blocks this migration writes into.
    pub fn write_targets(&self) -> MigrationDas {
        match *self {
            Migration::Copy { dst, .. } => MigrationDas::one(dst),
            Migration::Swap { a, b } => MigrationDas::two(a, b),
        }
    }

    /// The device blocks this migration reads from.
    pub fn read_sources(&self) -> MigrationDas {
        match *self {
            Migration::Copy { src, .. } => MigrationDas::one(src),
            Migration::Swap { a, b } => MigrationDas::two(a, b),
        }
    }
}

impl fmt::Display for Migration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Migration::Copy { src, dst } => write!(f, "copy {src} -> {dst}"),
            Migration::Swap { a, b } => write!(f, "swap {a} <-> {b}"),
        }
    }
}

/// A PCM wear-leveling scheme (see module docs for the protocol).
///
/// # Contract
///
/// * `map` is a bijection from the `len()` PAs into the `total_das()`
///   device blocks; `inverse(map(pa)) == Some(pa)` at every instant.
/// * `pending()` is stable until `complete_migration()` or the next
///   `record_write` that arms further work; completing with no pending
///   migration panics (a protocol violation).
/// * After `complete_migration()`, `map` reflects the migrated layout.
pub trait WearLeveler: fmt::Debug + Send {
    /// Number of physical addresses (software-visible blocks) managed.
    fn len(&self) -> u64;

    /// Whether the scheme manages an empty space (never true in practice).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of device blocks used, including buffer lines
    /// (`len()` for in-place schemes, `len() + 1` for Start-Gap).
    fn total_das(&self) -> u64;

    /// Translates a physical address to its current device address.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is outside `[0, len())`.
    fn map(&self, pa: Pa) -> Da;

    /// Translates a device address back to the physical address currently
    /// mapped to it, or `None` for an unmapped buffer block (the gap).
    ///
    /// # Panics
    ///
    /// Panics if `da` is outside `[0, total_das())`.
    fn inverse(&self, da: Da) -> Option<Pa>;

    /// Reports one serviced software write to `pa`. May arm migrations.
    fn record_write(&mut self, pa: Pa);

    /// Fast-path variant of [`record_write`](Self::record_write) for the
    /// steady state: records the write and returns `true` only when the
    /// scheme can prove the recording arms no migration and none is
    /// already pending. Returning `false` must leave the scheme's state
    /// untouched; the caller then runs the full record/pending protocol
    /// for this write.
    ///
    /// The default declines, which is always correct; schemes override it
    /// purely as an optimization. A `true` return must be bit-identical
    /// to `record_write(pa)` with `pending()` staying `None` throughout.
    fn record_write_fast(&mut self, _pa: Pa) -> bool {
        false
    }

    /// The migration the scheme wants performed now, if any.
    fn pending(&self) -> Option<Migration>;

    /// Acknowledges that the pending migration's data movement has been
    /// performed; updates the mapping.
    ///
    /// # Panics
    ///
    /// Panics if no migration is pending.
    fn complete_migration(&mut self);

    /// Scheme label for experiment output (e.g. `"Start-Gap"`).
    fn label(&self) -> String;

    /// Deep copy of the scheme's full state — mapping, migration debt,
    /// RNG streams — for simulation snapshots. The copy must behave
    /// bit-identically to the original under the same write sequence.
    fn clone_box(&self) -> Box<dyn WearLeveler>;
}

/// Drives `wl` until no migration is pending, applying each migration with
/// `apply`. Test/bootstrap helper for callers that never defer migrations.
pub fn drain_migrations<W, F>(wl: &mut W, mut apply: F)
where
    W: WearLeveler + ?Sized,
    F: FnMut(Migration),
{
    while let Some(m) = wl.pending() {
        apply(m);
        wl.complete_migration();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_targets_and_sources() {
        let c = Migration::Copy {
            src: Da::new(1),
            dst: Da::new(2),
        };
        assert_eq!(c.write_targets().as_slice(), &[Da::new(2)]);
        assert_eq!(c.read_sources().as_slice(), &[Da::new(1)]);
        let s = Migration::Swap {
            a: Da::new(3),
            b: Da::new(4),
        };
        assert_eq!(s.write_targets().as_slice(), &[Da::new(3), Da::new(4)]);
        assert_eq!(s.read_sources().as_slice(), &[Da::new(3), Da::new(4)]);
        assert_eq!(s.write_targets().into_iter().count(), 2);
        assert_eq!(
            c.read_sources().into_iter().collect::<Vec<_>>(),
            vec![Da::new(1)]
        );
    }

    #[test]
    fn migration_display() {
        let c = Migration::Copy {
            src: Da::new(1),
            dst: Da::new(2),
        };
        assert_eq!(c.to_string(), "copy DA(1) -> DA(2)");
        let s = Migration::Swap {
            a: Da::new(3),
            b: Da::new(4),
        };
        assert_eq!(s.to_string(), "swap DA(3) <-> DA(4)");
    }
}
