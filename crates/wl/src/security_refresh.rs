//! Security Refresh wear leveling (Seong et al., ISCA'10).
//!
//! The address space is split into regions of `2^m` blocks. Each region
//! keeps two random XOR keys — `k0` from the previous *round* and `k1`
//! from the current one — plus a refresh pointer `rp`. A region-local
//! sub-address `d` maps to:
//!
//! ```text
//! d ^ k1   if d has been refreshed this round
//! d ^ k0   otherwise
//! ```
//!
//! Refreshing sub-address `r` swaps the two *physical* blocks `r ^ k0` and
//! `r ^ k1`; because `q = r ^ k0 ^ k1` is the logical partner whose old
//! and new positions are the same pair, one swap refreshes both `r` and
//! `q`, and `d` counts as refreshed iff `min(d, d ^ k0 ^ k1) < rp`. When
//! `rp` sweeps past the region, the round ends: `k0 ← k1` and a fresh
//! random `k1` is drawn.
//!
//! One refresh (one swap) is armed per `refresh_interval` writes serviced
//! in the region. The swap is emitted as [`Migration::Swap`]; data is
//! exchanged in place, which is the "implicit buffer" Theorem 3 of the
//! WL-Reviver paper refers to.

use crate::traits::{Migration, WearLeveler};
use wlr_base::rng::Rng;
use wlr_base::{Da, Pa};

/// Builder for [`SecurityRefresh`]; see [`SecurityRefresh::builder`].
#[derive(Debug)]
pub struct SecurityRefreshBuilder {
    len: u64,
    region_blocks: u64,
    refresh_interval: u64,
    seed: u64,
}

impl SecurityRefreshBuilder {
    /// Region size in blocks; must be a power of two dividing the space
    /// (default: the whole space as one region).
    pub fn region_blocks(mut self, blocks: u64) -> Self {
        self.region_blocks = blocks;
        self
    }

    /// Writes to a region between successive refresh swaps (default 100).
    pub fn refresh_interval(mut self, interval: u64) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Key-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty, the region size is not a power of two,
    /// the space is not a whole number of regions, or the interval is zero.
    pub fn build(self) -> SecurityRefresh {
        assert!(self.len > 0, "Security Refresh needs a nonzero PA space");
        assert!(
            self.region_blocks.is_power_of_two(),
            "region size must be a power of two (got {})",
            self.region_blocks
        );
        assert!(
            self.len.is_multiple_of(self.region_blocks),
            "PA space {} is not a whole number of {}-block regions",
            self.len,
            self.region_blocks
        );
        assert!(
            self.refresh_interval > 0,
            "refresh interval must be nonzero"
        );
        let num_regions = self.len / self.region_blocks;
        let mut rng = Rng::stream(self.seed, 0x5EC5);
        let mut regions = Vec::with_capacity(num_regions as usize);
        for _ in 0..num_regions {
            let mut region = Region {
                k0: 0,
                k1: 0,
                rp: self.region_blocks, // previous round "complete"
                writes: 0,
                debt: 0,
            };
            region.rotate(self.region_blocks, &mut rng);
            regions.push(region);
        }
        SecurityRefresh {
            len: self.len,
            region_blocks: self.region_blocks,
            refresh_interval: self.refresh_interval,
            regions,
            rng,
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    k0: u64,
    k1: u64,
    /// Next sub-address to refresh; invariant: either `rp == region_blocks`
    /// (round finished) or `rp` points at a swappable sub-address
    /// (`rp < rp ^ (k0 ^ k1)`).
    rp: u64,
    writes: u64,
    debt: u64,
}

impl Region {
    fn delta(&self) -> u64 {
        self.k0 ^ self.k1
    }

    /// Has region-local sub-address `d` been refreshed this round?
    #[inline]
    fn refreshed(&self, d: u64) -> bool {
        d.min(d ^ self.delta()) < self.rp
    }

    /// Skips sub-addresses already covered as partners of earlier swaps.
    fn skip_done(&mut self, region_blocks: u64) {
        while self.rp < region_blocks && (self.rp ^ self.delta()) < self.rp {
            self.rp += 1;
        }
    }

    /// Begins a new round: the current key becomes the old key and a fresh
    /// nonzero-delta key is drawn.
    fn rotate(&mut self, region_blocks: u64, rng: &mut Rng) {
        self.k0 = self.k1;
        // Retry until the new key differs from the old one (delta = 0 would
        // make the round a no-op that never terminates when region_blocks
        // is 1, and is a degenerate remap otherwise). For 1-block regions
        // the only key is 0, so accept it and finish rounds trivially.
        if region_blocks == 1 {
            self.k1 = 0;
            self.rp = 0;
            self.skip_done(region_blocks);
            if self.rp == 0 && region_blocks == 1 {
                self.rp = 1; // round trivially complete
            }
            return;
        }
        loop {
            let candidate = rng.gen_range(region_blocks);
            if candidate != self.k0 {
                self.k1 = candidate;
                break;
            }
        }
        self.rp = 0;
        self.skip_done(region_blocks);
    }

    /// Advances past the just-completed swap at `rp`; rotates keys when the
    /// round finishes.
    fn advance(&mut self, region_blocks: u64, rng: &mut Rng) {
        self.rp += 1;
        self.skip_done(region_blocks);
        if self.rp >= region_blocks {
            self.rotate(region_blocks, rng);
        }
    }
}

/// The Security Refresh scheme. See the module docs for the algorithm.
///
/// ```
/// use wlr_base::Pa;
/// use wlr_wl::{SecurityRefresh, WearLeveler};
///
/// let mut wl = SecurityRefresh::builder(64)
///     .region_blocks(16)
///     .refresh_interval(4)
///     .seed(1)
///     .build();
/// let da = wl.map(Pa::new(3));
/// assert_eq!(wl.inverse(da), Some(Pa::new(3)));
/// for _ in 0..4 {
///     wl.record_write(Pa::new(3));
/// }
/// assert!(matches!(wl.pending(), Some(wlr_wl::Migration::Swap { .. })));
/// wl.complete_migration();
/// ```
#[derive(Debug, Clone)]
pub struct SecurityRefresh {
    len: u64,
    region_blocks: u64,
    refresh_interval: u64,
    regions: Vec<Region>,
    rng: Rng,
}

impl SecurityRefresh {
    /// Starts building a Security Refresh instance over `len` physical
    /// addresses.
    pub fn builder(len: u64) -> SecurityRefreshBuilder {
        SecurityRefreshBuilder {
            len,
            region_blocks: len.max(1).next_power_of_two(),
            refresh_interval: 100,
            seed: 0,
        }
    }

    /// Number of regions.
    pub fn num_regions(&self) -> u64 {
        self.regions.len() as u64
    }

    /// Region size in blocks.
    pub fn region_blocks(&self) -> u64 {
        self.region_blocks
    }

    fn split(&self, pa: Pa) -> (usize, u64) {
        let region = (pa.index() / self.region_blocks) as usize;
        let sub = pa.index() % self.region_blocks;
        (region, sub)
    }

    fn first_indebted(&self) -> Option<usize> {
        self.regions.iter().position(|r| r.debt > 0)
    }
}

impl WearLeveler for SecurityRefresh {
    fn len(&self) -> u64 {
        self.len
    }

    fn total_das(&self) -> u64 {
        self.len
    }

    #[inline]
    fn map(&self, pa: Pa) -> Da {
        assert!(pa.index() < self.len, "{pa} outside PA space {}", self.len);
        let (region, sub) = self.split(pa);
        let r = &self.regions[region];
        let key = if r.refreshed(sub) { r.k1 } else { r.k0 };
        Da::new(region as u64 * self.region_blocks + (sub ^ key))
    }

    #[inline]
    fn inverse(&self, da: Da) -> Option<Pa> {
        assert!(da.index() < self.len, "{da} outside DA space {}", self.len);
        let region = (da.index() / self.region_blocks) as usize;
        let dsub = da.index() % self.region_blocks;
        let r = &self.regions[region];
        // The two candidates are refresh partners, so exactly one branch
        // is consistent (see module docs).
        let l1 = dsub ^ r.k1;
        let sub = if r.refreshed(l1) { l1 } else { dsub ^ r.k0 };
        Some(Pa::new(region as u64 * self.region_blocks + sub))
    }

    fn record_write(&mut self, pa: Pa) {
        let (region, _) = self.split(pa);
        let r = &mut self.regions[region];
        r.writes += 1;
        if r.writes >= self.refresh_interval {
            r.writes = 0;
            // A fully-degenerate region (single block) has nothing to swap.
            if self.region_blocks > 1 {
                r.debt += 1;
            }
        }
    }

    fn pending(&self) -> Option<Migration> {
        let idx = self.first_indebted()?;
        let r = &self.regions[idx];
        debug_assert!(r.rp < self.region_blocks, "rp invariant violated");
        let base = idx as u64 * self.region_blocks;
        Some(Migration::Swap {
            a: Da::new(base + (r.rp ^ r.k0)),
            b: Da::new(base + (r.rp ^ r.k1)),
        })
    }

    fn complete_migration(&mut self) {
        let idx = self
            .first_indebted()
            .expect("complete_migration without a pending one");
        let region_blocks = self.region_blocks;
        let r = &mut self.regions[idx];
        r.debt -= 1;
        r.advance(region_blocks, &mut self.rng);
    }

    fn label(&self) -> String {
        "Security-Refresh".to_string()
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(wl: &SecurityRefresh) {
        let mut hit = vec![false; wl.total_das() as usize];
        for pa in 0..wl.len() {
            let da = wl.map(Pa::new(pa));
            assert!(da.index() < wl.total_das());
            assert!(!hit[da.as_usize()], "two PAs map to {da}");
            hit[da.as_usize()] = true;
            assert_eq!(wl.inverse(da), Some(Pa::new(pa)), "inverse broken at {da}");
        }
        assert!(hit.iter().all(|&h| h), "mapping must be onto");
    }

    fn drive(wl: &mut SecurityRefresh, data: &mut [Option<u64>]) {
        while let Some(m) = wl.pending() {
            match m {
                Migration::Swap { a, b } => data.swap(a.as_usize(), b.as_usize()),
                Migration::Copy { .. } => panic!("SR emits swaps only"),
            }
            wl.complete_migration();
        }
    }

    #[test]
    fn initial_mapping_is_bijective() {
        let wl = SecurityRefresh::builder(64)
            .region_blocks(16)
            .seed(5)
            .build();
        assert_bijection(&wl);
        assert_eq!(wl.num_regions(), 4);
    }

    #[test]
    fn mapping_stays_bijective_through_rounds() {
        let mut wl = SecurityRefresh::builder(32)
            .region_blocks(8)
            .refresh_interval(1)
            .seed(7)
            .build();
        for step in 0..200 {
            wl.record_write(Pa::new((step * 13) % 32));
            while wl.pending().is_some() {
                wl.complete_migration();
                assert_bijection(&wl);
            }
        }
    }

    #[test]
    fn swaps_preserve_data() {
        let n = 64u64;
        let mut wl = SecurityRefresh::builder(n)
            .region_blocks(16)
            .refresh_interval(1)
            .seed(11)
            .build();
        // data[da] = the PA whose data lives there.
        let mut data: Vec<Option<u64>> = vec![None; n as usize];
        for pa in 0..n {
            data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
        }
        for step in 0..500u64 {
            wl.record_write(Pa::new(step % n));
            drive(&mut wl, &mut data);
            for pa in 0..n {
                assert_eq!(
                    data[wl.map(Pa::new(pa)).as_usize()],
                    Some(pa),
                    "data for PA {pa} lost at step {step}"
                );
            }
        }
    }

    #[test]
    fn refresh_interval_pacing() {
        let mut wl = SecurityRefresh::builder(16)
            .region_blocks(16)
            .refresh_interval(10)
            .seed(3)
            .build();
        for _ in 0..9 {
            wl.record_write(Pa::new(0));
        }
        assert!(wl.pending().is_none());
        wl.record_write(Pa::new(0));
        assert!(wl.pending().is_some());
    }

    #[test]
    fn regions_track_their_own_writes() {
        let mut wl = SecurityRefresh::builder(32)
            .region_blocks(16)
            .refresh_interval(10)
            .seed(3)
            .build();
        // 9 writes to region 0, 9 to region 1: neither trips.
        for _ in 0..9 {
            wl.record_write(Pa::new(0));
            wl.record_write(Pa::new(16));
        }
        assert!(wl.pending().is_none());
        // The 10th write to region 1 only trips region 1.
        wl.record_write(Pa::new(16));
        let m = wl.pending().expect("region 1 should arm");
        if let Migration::Swap { a, b } = m {
            assert!(a.index() >= 16 && b.index() >= 16, "swap in wrong region");
        }
    }

    #[test]
    fn keys_rotate_at_round_end() {
        let mut wl = SecurityRefresh::builder(8)
            .region_blocks(8)
            .refresh_interval(1)
            .seed(13)
            .build();
        let k1_before = wl.regions[0].k1;
        // A round needs at most region_blocks swaps; drive well past it.
        for _ in 0..64 {
            wl.record_write(Pa::new(0));
            while wl.pending().is_some() {
                wl.complete_migration();
            }
        }
        let r = &wl.regions[0];
        assert_ne!(
            (r.k0, r.k1),
            (k1_before, k1_before),
            "keys should have rotated"
        );
        assert_bijection(&wl);
    }

    #[test]
    fn single_block_regions_degenerate_gracefully() {
        let mut wl = SecurityRefresh::builder(4)
            .region_blocks(1)
            .refresh_interval(1)
            .seed(1)
            .build();
        for pa in 0..4 {
            assert_eq!(wl.map(Pa::new(pa)), Da::new(pa));
        }
        for _ in 0..10 {
            wl.record_write(Pa::new(0));
        }
        assert!(wl.pending().is_none(), "1-block regions never migrate");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_panics() {
        SecurityRefresh::builder(12).region_blocks(12).build();
    }

    #[test]
    #[should_panic(expected = "without a pending")]
    fn completing_nothing_panics() {
        SecurityRefresh::builder(8)
            .region_blocks(8)
            .build()
            .complete_migration();
    }

    #[test]
    fn label_and_sizes() {
        let wl = SecurityRefresh::builder(64).region_blocks(16).build();
        assert_eq!(wl.label(), "Security-Refresh");
        assert_eq!(wl.len(), 64);
        assert_eq!(wl.total_das(), 64);
        assert_eq!(wl.region_blocks(), 16);
    }

    #[test]
    fn data_never_lost_under_random_traffic() {
        let mut rng = wlr_base::rng::Rng::stream(0x5EC2, 0);
        for _ in 0..24 {
            let seed = rng.next_u64();
            let n = 64u64;
            let mut wl = SecurityRefresh::builder(n)
                .region_blocks(16)
                .refresh_interval(3)
                .seed(seed)
                .build();
            let mut data: Vec<Option<u64>> = vec![None; n as usize];
            for pa in 0..n {
                data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
            }
            for _ in 0..rng.gen_range(300) {
                wl.record_write(Pa::new(rng.gen_range(n)));
                drive(&mut wl, &mut data);
            }
            for pa in 0..n {
                assert_eq!(data[wl.map(Pa::new(pa)).as_usize()], Some(pa));
            }
        }
    }
}
