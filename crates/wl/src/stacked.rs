//! Stacking two in-place wear-leveling schemes.
//!
//! Security Refresh's full design (Seong et al., ISCA'10) is *two-level*:
//! an inner instance remaps within sub-regions while an outer instance
//! remaps across the whole space, so that even writes that stay inside one
//! sub-region eventually spread chip-wide. [`Stacked`] composes any two
//! [`WearLeveler`]s whose spaces line up:
//!
//! * the inner scheme maps `PA → intermediate`;
//! * the outer scheme maps `intermediate → DA`;
//! * an inner migration `swap(x, y)` (intermediate space) is executed as
//!   the physical swap `swap(outer(x), outer(y))`;
//! * outer migrations are already physical.
//!
//! Both schemes run unmodified — the same one-operation contract the
//! WL-Reviver framework itself relies on. Stacking requires in-place
//! schemes (`total_das == len`): a gap line's "unmapped" hole has no
//! meaning in the intermediate space.

use crate::traits::{Migration, WearLeveler};
use wlr_base::{Da, Pa};

/// Two wear-leveling schemes composed into one (see module docs).
///
/// ```
/// use wlr_base::Pa;
/// use wlr_wl::{SecurityRefresh, Stacked, WearLeveler};
///
/// // The paper-faithful two-level Security Refresh: small inner regions,
/// // one outer region covering the chip.
/// let inner = SecurityRefresh::builder(1024)
///     .region_blocks(64)
///     .refresh_interval(50)
///     .seed(1)
///     .build();
/// let outer = SecurityRefresh::builder(1024)
///     .region_blocks(1024)
///     .refresh_interval(200)
///     .seed(2)
///     .build();
/// let wl = Stacked::new(Box::new(inner), Box::new(outer));
/// let da = wl.map(Pa::new(17));
/// assert_eq!(wl.inverse(da), Some(Pa::new(17)));
/// ```
#[derive(Debug)]
pub struct Stacked {
    inner: Box<dyn WearLeveler>,
    outer: Box<dyn WearLeveler>,
}

impl Clone for Stacked {
    fn clone(&self) -> Self {
        Stacked {
            inner: self.inner.clone_box(),
            outer: self.outer.clone_box(),
        }
    }
}

impl Stacked {
    /// Composes `inner` (PA → intermediate) with `outer`
    /// (intermediate → DA).
    ///
    /// # Panics
    ///
    /// Panics unless both schemes are in-place (`total_das() == len()`)
    /// and their spaces are equal.
    pub fn new(inner: Box<dyn WearLeveler>, outer: Box<dyn WearLeveler>) -> Self {
        assert_eq!(
            inner.total_das(),
            inner.len(),
            "inner scheme must be in-place to stack (no buffer line)"
        );
        assert_eq!(
            outer.total_das(),
            outer.len(),
            "outer scheme must be in-place to stack (no buffer line)"
        );
        assert_eq!(
            inner.len(),
            outer.len(),
            "stacked schemes must cover the same space"
        );
        Stacked { inner, outer }
    }

    /// The paper-faithful two-level Security Refresh configuration:
    /// an inner level of `inner_region`-block regions refreshing every
    /// `inner_interval` writes, under an outer level spanning the whole
    /// space refreshing every `outer_interval` writes.
    ///
    /// # Panics
    ///
    /// Panics under [`crate::SecurityRefresh`]'s builder conditions.
    pub fn two_level_security_refresh(
        len: u64,
        inner_region: u64,
        inner_interval: u64,
        outer_interval: u64,
        seed: u64,
    ) -> Self {
        let inner = crate::SecurityRefresh::builder(len)
            .region_blocks(inner_region)
            .refresh_interval(inner_interval)
            .seed(seed ^ 0x1EE7)
            .build();
        let outer_region = len & len.wrapping_neg(); // largest pow2 divisor
        let outer = crate::SecurityRefresh::builder(len)
            .region_blocks(outer_region)
            .refresh_interval(outer_interval)
            .seed(seed ^ 0x0DDE)
            .build();
        Stacked::new(Box::new(inner), Box::new(outer))
    }

    /// Translates an intermediate-space migration into physical space.
    fn lift(&self, m: Migration) -> Migration {
        match m {
            Migration::Copy { src, dst } => Migration::Copy {
                src: self.outer.map(Pa::new(src.index())),
                dst: self.outer.map(Pa::new(dst.index())),
            },
            Migration::Swap { a, b } => Migration::Swap {
                a: self.outer.map(Pa::new(a.index())),
                b: self.outer.map(Pa::new(b.index())),
            },
        }
    }
}

impl WearLeveler for Stacked {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn total_das(&self) -> u64 {
        self.outer.total_das()
    }

    #[inline]
    fn map(&self, pa: Pa) -> Da {
        let mid = self.inner.map(pa);
        self.outer.map(Pa::new(mid.index()))
    }

    #[inline]
    fn inverse(&self, da: Da) -> Option<Pa> {
        let mid = self.outer.inverse(da)?;
        self.inner.inverse(Da::new(mid.index()))
    }

    fn record_write(&mut self, pa: Pa) {
        self.inner.record_write(pa);
        let mid = self.inner.map(pa);
        self.outer.record_write(Pa::new(mid.index()));
    }

    fn pending(&self) -> Option<Migration> {
        // Outer migrations first: they are already physical and keep the
        // intermediate→DA view stable for lifting inner ones.
        if let Some(m) = self.outer.pending() {
            return Some(m);
        }
        self.inner.pending().map(|m| self.lift(m))
    }

    fn complete_migration(&mut self) {
        if self.outer.pending().is_some() {
            self.outer.complete_migration();
        } else {
            self.inner.complete_migration();
        }
    }

    fn label(&self) -> String {
        format!("{}+{}", self.inner.label(), self.outer.label())
    }

    fn clone_box(&self) -> Box<dyn WearLeveler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SecurityRefresh;

    fn two_level(len: u64, seed: u64) -> Stacked {
        Stacked::two_level_security_refresh(len, 16, 3, 7, seed)
    }

    fn assert_bijection(wl: &dyn WearLeveler) {
        let mut hit = vec![false; wl.total_das() as usize];
        for pa in 0..wl.len() {
            let da = wl.map(Pa::new(pa));
            assert!(!hit[da.as_usize()], "two PAs map to {da}");
            hit[da.as_usize()] = true;
            assert_eq!(wl.inverse(da), Some(Pa::new(pa)));
        }
        assert!(hit.iter().all(|&h| h));
    }

    fn drive(wl: &mut dyn WearLeveler, data: &mut [Option<u64>]) {
        while let Some(m) = wl.pending() {
            match m {
                Migration::Swap { a, b } => data.swap(a.as_usize(), b.as_usize()),
                Migration::Copy { src, dst } => data[dst.as_usize()] = data[src.as_usize()].take(),
            }
            wl.complete_migration();
        }
    }

    #[test]
    fn initial_mapping_is_bijective() {
        assert_bijection(&two_level(256, 1));
    }

    #[test]
    fn stays_bijective_under_traffic() {
        let mut wl = two_level(128, 2);
        for i in 0..500u64 {
            wl.record_write(Pa::new(i % 128));
            while wl.pending().is_some() {
                wl.complete_migration();
            }
        }
        assert_bijection(&wl);
    }

    #[test]
    fn data_preserved_through_both_levels() {
        let n = 128u64;
        let mut wl = two_level(n, 3);
        let mut data: Vec<Option<u64>> = vec![None; n as usize];
        for pa in 0..n {
            data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
        }
        for i in 0..2_000u64 {
            wl.record_write(Pa::new((i * 31) % n));
            drive(&mut wl, &mut data);
            if i % 100 == 0 {
                for pa in 0..n {
                    assert_eq!(
                        data[wl.map(Pa::new(pa)).as_usize()],
                        Some(pa),
                        "PA {pa} lost at step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn outer_level_spreads_region_local_writes() {
        // Hammer one inner region only; with the outer level active the
        // physically-touched blocks must span more than that region.
        let n = 1024u64;
        let mut wl = two_level(n, 4);
        let mut touched = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            let pa = Pa::new(i % 16); // one 16-block inner region
            wl.record_write(pa);
            touched.insert(wl.map(pa).index());
            while wl.pending().is_some() {
                wl.complete_migration();
            }
        }
        assert!(
            touched.len() > 64,
            "outer level should spread 16 hot blocks over the chip, got {}",
            touched.len()
        );
    }

    #[test]
    fn label_combines_both() {
        assert_eq!(
            two_level(64, 5).label(),
            "Security-Refresh+Security-Refresh"
        );
    }

    #[test]
    #[should_panic(expected = "must cover the same space")]
    fn mismatched_spaces_panic() {
        let a = SecurityRefresh::builder(64).region_blocks(64).build();
        let b = SecurityRefresh::builder(128).region_blocks(128).build();
        Stacked::new(Box::new(a), Box::new(b));
    }

    #[test]
    #[should_panic(expected = "must be in-place")]
    fn gapped_scheme_cannot_stack() {
        let a = crate::StartGap::builder(64).build();
        let b = SecurityRefresh::builder(64).region_blocks(64).build();
        Stacked::new(Box::new(a), Box::new(b));
    }

    #[test]
    fn fuzzed_data_never_lost() {
        let mut rng = wlr_base::rng::Rng::stream(0x57AC, 0);
        for _ in 0..16 {
            let seed = rng.next_u64();
            let n = 128u64;
            let mut wl = two_level(n, seed);
            let mut data: Vec<Option<u64>> = vec![None; n as usize];
            for pa in 0..n {
                data[wl.map(Pa::new(pa)).as_usize()] = Some(pa);
            }
            for _ in 0..rng.gen_range(400) {
                wl.record_write(Pa::new(rng.gen_range(n)));
                drive(&mut wl, &mut data);
            }
            for pa in 0..n {
                assert_eq!(data[wl.map(Pa::new(pa)).as_usize()], Some(pa));
            }
        }
    }
}
