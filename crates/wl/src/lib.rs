//! PCM wear-leveling schemes.
//!
//! The paper's premise (§I-A) is that practical PCM wear-leveling runs in
//! the memory controller with *algebraic* PA→DA mapping functions — no
//! per-block indirection tables — and periodically migrates data so every
//! block absorbs an even share of writes. This crate implements the two
//! state-of-the-art schemes the paper names, behind one trait:
//!
//! * [`start_gap::StartGap`] — Qureshi et al., MICRO'09: one spare *gap*
//!   line rotates through the space, shifting one line's data every ψ
//!   writes, composed with a static address randomizer to break spatial
//!   locality.
//! * [`security_refresh::SecurityRefresh`] — Seong et al., ISCA'10:
//!   region-local XOR remapping with a current and a previous random key;
//!   a refresh pointer gradually re-encrypts the region by *swapping*
//!   block pairs.
//! * [`none::NoWearLeveling`] — identity mapping, no migrations (baseline).
//!
//! The [`traits::WearLeveler`] interface mirrors the paper's framework
//! contract (§III): the only operation a scheme needs from the outside
//! world is "migrate data into a memory block" — surfaced here as
//! [`traits::Migration`] values that the caller executes against the
//! device and then acknowledges with
//! [`traits::WearLeveler::complete_migration`]. The acknowledgement is
//! what lets WL-Reviver *suspend* a migration when it has no spare block
//! available (§III-A) without the scheme ever knowing.
//!
//! # Example
//!
//! ```
//! use wlr_base::Pa;
//! use wlr_wl::prelude::*;
//!
//! let mut wl = StartGap::builder(128)
//!     .gap_interval(4)
//!     .randomizer(RandomizerKind::Feistel { seed: 7 })
//!     .build();
//!
//! // The mapping is a bijection onto 129 device blocks (one gap line).
//! let da = wl.map(Pa::new(5));
//! assert_eq!(wl.inverse(da), Some(Pa::new(5)));
//!
//! // Every 4th serviced write arms one gap movement.
//! for _ in 0..4 {
//!     wl.record_write(Pa::new(0));
//! }
//! let m = wl.pending().expect("a migration is armed");
//! // ... caller copies the data m.src -> m.dst on the device ...
//! wl.complete_migration();
//! assert!(wl.pending().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod none;
pub mod randomizer;
pub mod security_refresh;
pub mod softwear;
pub mod stacked;
pub mod start_gap;
pub mod tiled;
pub mod traits;

pub use adaptive::Adaptive;
pub use none::NoWearLeveling;
pub use randomizer::{
    AddressRandomizer, FeistelRandomizer, HalfRestrictedRandomizer, IdentityRandomizer,
    MemoizedRandomizer, RandomizerKind, TableRandomizer,
};
pub use security_refresh::SecurityRefresh;
pub use softwear::SoftWear;
pub use stacked::Stacked;
pub use start_gap::StartGap;
pub use tiled::TiledStartGap;
pub use traits::{Migration, MigrationDas, WearLeveler};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::adaptive::Adaptive;
    pub use crate::none::NoWearLeveling;
    pub use crate::randomizer::RandomizerKind;
    pub use crate::security_refresh::SecurityRefresh;
    pub use crate::softwear::SoftWear;
    pub use crate::stacked::Stacked;
    pub use crate::start_gap::StartGap;
    pub use crate::tiled::TiledStartGap;
    pub use crate::traits::{Migration, MigrationDas, WearLeveler};
}
