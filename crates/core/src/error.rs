//! Typed failure signals for the revived controller.
//!
//! The seed-state framework signalled "no spare PA" with a private unit
//! struct and treated every other unexpected condition as a panic
//! (`unreachable!`, fuel assertions). Under fault injection those
//! conditions become *reachable* — a power cut mid-chain-repair leaves the
//! repair unfinished, torn metadata can surface a dead block with no link
//! — so they are now typed errors carried through [`crate::WriteResult`]
//! and handled by the simulator instead of aborting the process.

use core::fmt;

/// Why a controller operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReviverError {
    /// The operation needed a spare PA and the pool is empty (delayed
    /// space acquisition kicks in: the next software write is sacrificed
    /// as a failure report).
    NeedSpare,
    /// Power was lost mid-operation: the device dropped the write and
    /// every subsequent one. The controller's persistent metadata is
    /// frozen at the cut; volatile state is rebuilt by
    /// [`crate::reviver::RevivedController::recover`].
    PowerLoss,
    /// A chain repair failed to converge within its fuel budget at this
    /// device address — torn metadata produced a cycle the one-step
    /// machinery cannot untangle. The controller degrades instead of
    /// panicking; recovery re-derives the chains from persisted pointers.
    ChainDiverged {
        /// Device address where the repair gave up.
        da: u64,
    },
    /// A dead block reachable from software carried no link — legal only
    /// as Theorem 2's "undiscovered failure" state; hit during an access
    /// that expected the link to exist.
    UnlinkedDead {
        /// The unlinked dead device address.
        da: u64,
    },
}

impl fmt::Display for ReviverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReviverError::NeedSpare => write!(f, "no spare PA available"),
            ReviverError::PowerLoss => write!(f, "power lost mid-operation"),
            ReviverError::ChainDiverged { da } => {
                write!(f, "chain repair failed to converge at device block {da}")
            }
            ReviverError::UnlinkedDead { da } => {
                write!(f, "software-reachable dead block {da} has no link")
            }
        }
    }
}

impl std::error::Error for ReviverError {}

/// Why a [`crate::reviver::RevivedControllerBuilder`] rejected its knob
/// combination ([`crate::reviver::RevivedControllerBuilder::try_build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuilderError {
    /// `pointer_bytes(0)`: the inverse-pointer section cannot be sized
    /// with zero-width pointers.
    PointerBytesZero,
    /// The requested remap cache is smaller than one cache set.
    CacheTooSmall {
        /// The requested capacity in bytes.
        bytes: usize,
        /// The minimum accepted capacity in bytes.
        min: usize,
    },
    /// The wear-leveler's PA space disagrees with the device geometry.
    PaSpaceMismatch {
        /// PAs the wear-leveler covers.
        wl: u64,
        /// Blocks the geometry exposes.
        geometry: u64,
    },
    /// The device has fewer blocks than the scheme's DA space needs
    /// (missing gap/buffer blocks).
    MissingBufferBlocks {
        /// Blocks the device actually has.
        device: u64,
        /// Blocks the scheme's DA space requires.
        required: u64,
    },
}

impl fmt::Display for BuilderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuilderError::PointerBytesZero => {
                write!(f, "pointer_bytes must be nonzero")
            }
            BuilderError::CacheTooSmall { bytes, min } => {
                write!(
                    f,
                    "remap cache of {bytes} bytes is below the {min}-byte minimum"
                )
            }
            BuilderError::PaSpaceMismatch { wl, geometry } => {
                write!(
                    f,
                    "wear-leveler PA space must match the geometry: {wl} != {geometry}"
                )
            }
            BuilderError::MissingBufferBlocks { device, required } => {
                write!(
                    f,
                    "device lacks the scheme's buffer blocks: {device} < {required}"
                )
            }
        }
    }
}

impl std::error::Error for BuilderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_block() {
        assert_eq!(
            ReviverError::ChainDiverged { da: 42 }.to_string(),
            "chain repair failed to converge at device block 42"
        );
        assert_eq!(
            ReviverError::UnlinkedDead { da: 7 }.to_string(),
            "software-reachable dead block 7 has no link"
        );
        assert!(ReviverError::NeedSpare.to_string().contains("spare"));
        assert!(ReviverError::PowerLoss.to_string().contains("power"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ReviverError::PowerLoss);
        assert!(e.to_string().contains("power"));
    }
}
