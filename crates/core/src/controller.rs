//! The memory-controller interface the simulator drives.
//!
//! A controller owns the PCM device and a wear-leveling scheme and serves
//! software block reads/writes by PA. The four implementations mirror the
//! paper's evaluation matrix:
//!
//! * [`crate::reviver::RevivedController`] — the paper's contribution:
//!   wear leveling keeps running across failures (`*-WLR` curves).
//! * [`crate::freep::FreepController`] — FREE-p adapted with a pre-reserved
//!   remap region (Figure 7); with a 0% reserve it degenerates into the
//!   plain `ECP6-SG` / `PAYG-SG` baseline that halts on the first failure.
//! * [`crate::lls::LlsController`] — the LLS baseline (Figure 8, Table II).
//!
//! Controllers never talk to the OS directly — that is the paper's
//! point. They *return* what should be reported ([`WriteResult`]), and the
//! simulator plays the OS: it retires pages, performs the relocation
//! copies back through the controller, and notifies the controller of the
//! retirement ([`Controller::on_page_retired`]) so WL-Reviver can harvest
//! the page's PAs as virtual spare space.

use core::fmt;
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::PcmDevice;

use crate::error::ReviverError;
use crate::recovery::RecoveryReport;

/// Outcome of a software write request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteResult {
    /// The write was serviced (possibly via a shadow block).
    Ok,
    /// The controller raises an access-error exception for `pa` — the only
    /// OS interface WL-Reviver permits itself. The write's data was *not*
    /// stored; the OS's retirement procedure re-places it.
    ReportFailure(Pa),
    /// The controller asks the OS to retire these specific pages (explicit
    /// space reservation — the extra OS support LLS needs and WL-Reviver
    /// avoids). The triggering write was *not* serviced; retry it after
    /// granting the pages.
    RequestPages(Vec<PageId>),
    /// The write could not be serviced or reported — power was cut
    /// mid-operation, or torn metadata degraded the access. Nothing was
    /// stored; the simulator decides whether to crash-stop or retry after
    /// recovery.
    Dropped(ReviverError),
}

/// Request-level access accounting: the basis of Table II's "average PCM
/// access time for one software-issued request".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Software read/write requests serviced.
    pub requests: u64,
    /// PCM array accesses performed to serve those requests (excludes
    /// wear-leveling migration and failure-bookkeeping traffic, which the
    /// paper accounts separately as scheme overhead).
    pub accesses: u64,
}

impl RequestStats {
    /// Average PCM accesses per software request (1.0 is optimal).
    pub fn avg_access_time(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.accesses as f64 / self.requests as f64
        }
    }
}

/// A memory controller: device + wear leveling + (optionally) a
/// failure-revival strategy.
pub trait Controller: fmt::Debug + Send {
    /// The software-visible geometry.
    fn geometry(&self) -> &Geometry;

    /// Services a software read of `pa`; returns the stored content tag
    /// (0 when content tracking is off or the data is unrecoverable).
    fn read(&mut self, pa: Pa) -> u64;

    /// Services a software write of `tag` to `pa`.
    fn write(&mut self, pa: Pa, tag: u64) -> WriteResult;

    /// Notifies the controller that the OS retired `page` (for any
    /// reason). WL-Reviver harvests the page's PAs as virtual spare space;
    /// baselines ignore it.
    fn on_page_retired(&mut self, page: PageId);

    /// The underlying device, for wear/failure inspection.
    fn device(&self) -> &PcmDevice;

    /// The underlying device, mutably — the fault-injection harness uses
    /// this to restore power and schedule crash points.
    fn device_mut(&mut self) -> &mut PcmDevice;

    /// Dead blocks within the software-visible space, as a fraction of it.
    fn visible_dead_fraction(&self) -> f64 {
        let n = self.geometry().num_blocks();
        self.device().dead_blocks_under(n) as f64 / n as f64
    }

    /// Blocks the controller itself holds back from software use
    /// (FREE-p's remap region, LLS's acquired chunks; 0 for WL-Reviver,
    /// whose reservation happens entirely through OS page retirement).
    fn reserved_blocks(&self) -> u64 {
        0
    }

    /// Whether the wear-leveling scheme is still performing migrations
    /// (baselines freeze it on the first unhidden failure).
    fn wl_active(&self) -> bool;

    /// Whether a migration is currently suspended awaiting spare space
    /// (WL-Reviver's delayed acquisition; always false for baselines).
    fn suspended(&self) -> bool {
        false
    }

    /// Request-level access counters.
    fn request_stats(&self) -> RequestStats;

    /// Resets request-level counters (scopes a measurement window).
    fn reset_request_stats(&mut self);

    /// Controller label for experiment output (e.g. `"ECP6-SG-WLR"`).
    fn label(&self) -> String;

    /// Simulates a power cycle: volatile controller state (caches,
    /// in-flight migration buffers) is lost; PCM-resident state (data,
    /// pointers, the retired-page bitmap) survives; rebuildable state is
    /// reconstructed by scanning, as the paper sketches in §III-A/B.
    /// Default: nothing to lose.
    fn simulate_reboot(&mut self) {}

    /// Recovers from a power cut: restores device power and rebuilds
    /// volatile state from whatever survived, reporting the cost. The
    /// baselines' metadata is modeled as fully persistent (they crash
    /// only at software-write boundaries), so the default is a plain
    /// reboot; WL-Reviver overrides this with its §III-B scan.
    fn recover(&mut self) -> RecoveryReport {
        self.device_mut().restore_power();
        self.simulate_reboot();
        RecoveryReport::default()
    }

    /// Whether `page`'s retirement reached durable storage — the commit
    /// point the simulator's retirement transaction consults after a
    /// crash. Baselines persist retirements synchronously.
    fn retirement_persisted(&self, _page: PageId) -> bool {
        true
    }

    /// The software PA whose data currently lives in device block `da`,
    /// if the controller can tell (used to reconcile silent write
    /// failures). `None` means the block holds no attributable data.
    fn logical_owner(&self, _da: Da) -> Option<Pa> {
        None
    }

    /// Deep copy of the controller's full state (device image, leveler,
    /// link tables, spare pool, caches) for [`Simulation`] snapshots.
    /// The default returns `None` (the controller cannot be forked); all
    /// shipped controllers override it. A returned copy must behave
    /// bit-identically to the original under the same request sequence,
    /// except that attached event sinks are intentionally *not* carried
    /// over (observers are per-run, not part of the simulated state).
    ///
    /// [`Simulation`]: crate::sim::Simulation
    fn fork_box(&self) -> Option<Box<dyn Controller>> {
        None
    }

    /// Downcast to the WL-Reviver controller, when that is what this is
    /// (gives experiments access to the framework's event counters).
    fn as_reviver(&self) -> Option<&crate::reviver::RevivedController> {
        None
    }

    /// Mutable variant of [`Self::as_reviver`] (gives the fault-injection
    /// harness access to `inject_dead` and `restore_from`).
    fn as_reviver_mut(&mut self) -> Option<&mut crate::reviver::RevivedController> {
        None
    }

    /// Downcast to the FREE-p controller, when applicable.
    fn as_freep(&self) -> Option<&crate::freep::FreepController> {
        None
    }

    /// Downcast to the LLS controller, when applicable.
    fn as_lls(&self) -> Option<&crate::lls::LlsController> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_access_time_handles_empty_window() {
        let s = RequestStats::default();
        assert_eq!(s.avg_access_time(), 0.0);
    }

    #[test]
    fn avg_access_time_ratio() {
        let s = RequestStats {
            requests: 100,
            accesses: 150,
        };
        assert!((s.avg_access_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn write_result_equality() {
        assert_eq!(WriteResult::Ok, WriteResult::Ok);
        assert_ne!(WriteResult::Ok, WriteResult::ReportFailure(Pa::new(1)));
        assert_eq!(
            WriteResult::RequestPages(vec![PageId::new(1)]),
            WriteResult::RequestPages(vec![PageId::new(1)])
        );
    }
}
