//! FREE-p adapted with a pre-reserved remap region (paper §IV-C), and —
//! at a 0% reserve — the plain `ECC+WL` baseline of Figures 5 and 6.
//!
//! FREE-p as published acquires free slots incrementally with OS support
//! and records each slot's *device* address directly in the failed block.
//! Because wear-leveling migration would move the slot's data and strand
//! the pointer, the paper adapts it: a fixed fraction of PCM is
//! pre-reserved as the remap region, invisible to software and *outside*
//! the wear-leveling domain, so the direct DA links stay valid. The
//! adapted scheme works with Start-Gap until the reserve runs dry; the
//! first unhidden failure then reaches the wear-leveler, which — like any
//! algebraic-mapping scheme — ceases to function: migrations freeze, the
//! mapping fossilizes, and every further failure costs the OS a page.

use crate::cache::RemapCache;
use crate::controller::{Controller, RequestStats, WriteResult};
use wlr_base::dense::DenseMap;
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::{PcmDevice, WriteOutcome};
use wlr_wl::{Migration, WearLeveler};

/// Event counters for the FREE-p baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreepCounters {
    /// Failed blocks linked to reserved slots.
    pub links: u64,
    /// Failures exposed to the OS (reserve exhausted).
    pub reports: u64,
    /// Reads of blocks whose data was lost with the failure.
    pub garbage_reads: u64,
}

/// Builder for [`FreepController`].
#[derive(Debug)]
pub struct FreepControllerBuilder {
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    reserve_blocks: u64,
    cache_bytes: Option<usize>,
}

impl FreepControllerBuilder {
    /// Attaches a remap cache.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Constructs the controller.
    ///
    /// # Panics
    ///
    /// Panics if the wear-leveler does not match the geometry or the
    /// device lacks the buffer + reserve blocks.
    pub fn build(self) -> FreepController {
        let geo = *self.device.geometry();
        assert_eq!(
            self.wl.len(),
            geo.num_blocks(),
            "wear-leveler PA space must match the geometry"
        );
        let slot_base = self.wl.total_das();
        assert!(
            self.device.total_blocks() >= slot_base + self.reserve_blocks,
            "device lacks reserve blocks: {} < {}",
            self.device.total_blocks(),
            slot_base + self.reserve_blocks
        );
        // Slots handed out from the base upward (LIFO order irrelevant).
        let slots = (slot_base..slot_base + self.reserve_blocks)
            .rev()
            .map(Da::new)
            .collect();
        let total = self.device.total_blocks();
        FreepController {
            geo,
            device: self.device,
            wl: self.wl,
            reserve_blocks: self.reserve_blocks,
            slots,
            links: DenseMap::with_capacity(total),
            frozen: false,
            cache: self.cache_bytes.map(RemapCache::with_capacity_bytes),
            req: RequestStats::default(),
            counters: FreepCounters::default(),
        }
    }
}

/// The FREE-p-adapted controller (see module docs).
///
/// ```
/// use wlr_base::Geometry;
/// use wlr_pcm::{Ecp, PcmDevice};
/// use wlr_wl::{RandomizerKind, StartGap};
/// use wl_reviver::freep::FreepController;
/// use wl_reviver::controller::Controller;
///
/// let geo = Geometry::builder().num_blocks(128).build()?;
/// // 5% reserve: 6 slot blocks + 1 gap line as extra device space.
/// let device = PcmDevice::builder(geo).extra_blocks(7).build();
/// let wl = StartGap::builder(128)
///     .randomizer(RandomizerKind::Feistel { seed: 1 })
///     .build();
/// let ctl = FreepController::builder(device, Box::new(wl), 6).build();
/// assert_eq!(ctl.reserved_blocks(), 6);
/// assert!(ctl.wl_active());
/// # Ok::<(), wlr_base::geometry::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct FreepController {
    geo: Geometry,
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    reserve_blocks: u64,
    /// Free reserved slots (device addresses outside the WL domain).
    slots: Vec<Da>,
    /// failed DA → slot DA (FREE-p's direct link; slots never move).
    links: DenseMap<Da>,
    /// Set when a failure reached the wear-leveler: migrations stop
    /// forever and the mapping fossilizes.
    frozen: bool,
    cache: Option<RemapCache>,
    req: RequestStats,
    counters: FreepCounters,
}

impl Clone for FreepController {
    fn clone(&self) -> Self {
        FreepController {
            geo: self.geo,
            device: self.device.clone(),
            wl: self.wl.clone_box(),
            reserve_blocks: self.reserve_blocks,
            slots: self.slots.clone(),
            links: self.links.clone(),
            frozen: self.frozen,
            cache: self.cache.clone(),
            req: self.req,
            counters: self.counters,
        }
    }
}

impl FreepController {
    /// Starts building a FREE-p controller with `reserve_blocks` slots.
    pub fn builder(
        device: PcmDevice,
        wl: Box<dyn WearLeveler>,
        reserve_blocks: u64,
    ) -> FreepControllerBuilder {
        FreepControllerBuilder {
            device,
            wl,
            reserve_blocks,
            cache_bytes: None,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> FreepCounters {
        self.counters
    }

    /// Remaining free slots in the reserve.
    pub fn free_slots(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Whether wear leveling has been crippled by an unhidden failure.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Resolves a failed block's slot through the cache.
    fn resolve_link(&mut self, da: Da, acct: bool) -> Option<Da> {
        if let Some(c) = &mut self.cache {
            if let Some(s) = c.get(da.index()) {
                return Some(Da::new(s));
            }
        }
        let s = self.links.get(da.index()).copied();
        if let Some(s) = s {
            self.device.read(da); // pointer read from the failed block
            if acct {
                self.req.accesses += 1;
            }
            if let Some(c) = &mut self.cache {
                c.insert(da.index(), s.index());
            }
        }
        s
    }

    /// Writes `tag` to the block the mapping designates, hiding the
    /// failure behind a slot when possible. `Err(())` means the failure
    /// must be exposed (reserve dry): the caller freezes and reports.
    fn write_da(&mut self, da: Da, tag: u64, acct: bool) -> Result<(), ()> {
        let mut target = da;
        // Follow an existing link first.
        if self.device.is_dead(target) {
            match self.resolve_link(target, acct) {
                Some(slot) => target = slot,
                None => return Err(()), // unhidden dead block
            }
        }
        let mut fuel = self.links.len() + self.slots.len() + 4;
        loop {
            assert!(fuel > 0, "slot chain failed to converge at {da}");
            fuel -= 1;
            match self.device.write_tagged(target, tag) {
                WriteOutcome::Ok => {
                    if acct {
                        self.req.accesses += 1;
                    }
                    return Ok(());
                }
                WriteOutcome::AlreadyDead => {
                    // A slot that died earlier in another chain; follow it.
                    match self.resolve_link(target, acct) {
                        Some(next) => {
                            target = next;
                            continue;
                        }
                        None => return Err(()),
                    }
                }
                WriteOutcome::NewFailure => {
                    if acct {
                        self.req.accesses += 1; // the failing write cycled the array
                    }
                    // Fresh failure: link to a new slot. The link is
                    // recorded on the *original* failed block `da` when the
                    // failure is the first in this chain, or re-pointed
                    // from the dying slot otherwise (FREE-p chains slots).
                    let Some(slot) = self.slots.pop() else {
                        return Err(());
                    };
                    self.links.insert(target.index(), slot);
                    self.device.write(target); // store the pointer
                    if let Some(c) = &mut self.cache {
                        c.insert(target.index(), slot.index());
                    }
                    self.counters.links += 1;
                    target = slot;
                }
                // Injected power loss: the write is dropped. Baselines
                // model all their state as persistent, so there is
                // nothing to tear — the request is simply not serviced.
                WriteOutcome::Lost => return Err(()),
            }
        }
    }

    fn migration_read(&mut self, src: Da) -> u64 {
        if !self.device.is_dead(src) {
            self.device.read(src);
            return self.device.tag(src);
        }
        match self.follow_links(src, false) {
            Some(slot) => {
                self.device.read(slot);
                self.device.tag(slot)
            }
            None => {
                self.counters.garbage_reads += 1;
                self.device.read(src);
                self.device.tag(src)
            }
        }
    }

    /// Walks the slot chain from dead block `da` to the first healthy
    /// slot, or `None` if the chain dead-ends (unhidden failure).
    fn follow_links(&mut self, da: Da, acct: bool) -> Option<Da> {
        let mut cur = da;
        let mut fuel = self.links.len() + 2;
        while self.device.is_dead(cur) {
            if fuel == 0 {
                return None;
            }
            fuel -= 1;
            cur = self.resolve_link(cur, acct)?;
        }
        Some(cur)
    }

    /// Performs pending migrations; a failure that cannot be hidden
    /// freezes wear leveling permanently (the paper's central premise).
    fn run_migrations(&mut self) {
        while !self.frozen {
            let Some(m) = self.wl.pending() else { break };
            match m {
                Migration::Copy { src, dst } => {
                    let t = self.migration_read(src);
                    if self.write_da(dst, t, false).is_err() {
                        // Data still lives at src (mapping not advanced);
                        // the scheme is simply dead from here on.
                        self.frozen = true;
                        return;
                    }
                    self.wl.complete_migration();
                }
                Migration::Swap { a, b } => {
                    let ta = self.migration_read(a);
                    let tb = self.migration_read(b);
                    self.wl.complete_migration();
                    let r1 = self.write_da(b, ta, false);
                    let r2 = self.write_da(a, tb, false);
                    if r1.is_err() || r2.is_err() {
                        self.frozen = true;
                        return;
                    }
                }
            }
        }
    }
}

impl Controller for FreepController {
    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn read(&mut self, pa: Pa) -> u64 {
        self.req.requests += 1;
        let da = self.wl.map(pa);
        if !self.device.is_dead(da) {
            self.device.read(da);
            self.req.accesses += 1;
            return self.device.tag(da);
        }
        match self.follow_links(da, true) {
            Some(slot) => {
                self.device.read(slot);
                self.req.accesses += 1;
                self.device.tag(slot)
            }
            None => {
                self.counters.garbage_reads += 1;
                self.device.read(da);
                self.req.accesses += 1;
                0
            }
        }
    }

    fn write(&mut self, pa: Pa, tag: u64) -> WriteResult {
        self.req.requests += 1;
        let da = self.wl.map(pa);
        match self.write_da(da, tag, true) {
            Ok(()) => {
                if !self.frozen {
                    self.wl.record_write(pa);
                    self.run_migrations();
                }
                WriteResult::Ok
            }
            Err(()) => {
                self.frozen = true;
                self.counters.reports += 1;
                WriteResult::ReportFailure(pa)
            }
        }
    }

    fn on_page_retired(&mut self, _page: PageId) {
        // FREE-p gains nothing from retirement: its reserve is fixed.
    }

    fn device(&self) -> &PcmDevice {
        &self.device
    }

    fn device_mut(&mut self) -> &mut PcmDevice {
        &mut self.device
    }

    fn reserved_blocks(&self) -> u64 {
        self.reserve_blocks
    }

    fn wl_active(&self) -> bool {
        !self.frozen
    }

    fn request_stats(&self) -> RequestStats {
        self.req
    }

    fn reset_request_stats(&mut self) {
        self.req = RequestStats::default();
    }

    fn as_freep(&self) -> Option<&FreepController> {
        Some(self)
    }

    fn fork_box(&self) -> Option<Box<dyn Controller>> {
        Some(Box::new(self.clone()))
    }

    fn label(&self) -> String {
        let wl_label = self.wl.label();
        let wl = match wl_label.as_str() {
            "Start-Gap" => "SG",
            "Security-Refresh" => "SR",
            "none" => {
                return if self.reserve_blocks == 0 {
                    self.device.ecc_label()
                } else {
                    format!("{}-FREEp", self.device.ecc_label())
                }
            }
            other => other,
        };
        if self.reserve_blocks == 0 {
            format!("{}-{}", self.device.ecc_label(), wl)
        } else {
            format!("{}-{}-FREEp", self.device.ecc_label(), wl)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_pcm::Ecp;
    use wlr_wl::{NoWearLeveling, RandomizerKind, StartGap};

    const N: u64 = 256;

    fn geo() -> Geometry {
        Geometry::builder().num_blocks(N).build().unwrap()
    }

    fn make(reserve: u64, endurance: f64, psi: u64, seed: u64) -> FreepController {
        let device = PcmDevice::builder(geo())
            .extra_blocks(1 + reserve)
            .endurance_mean(endurance)
            .seed(seed)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = StartGap::builder(N)
            .gap_interval(psi)
            .randomizer(RandomizerKind::Feistel { seed })
            .build();
        FreepController::builder(device, Box::new(wl), reserve).build()
    }

    #[test]
    fn healthy_round_trip() {
        let mut ctl = make(8, 1e9, 5, 1);
        for i in 0..N {
            assert_eq!(ctl.write(Pa::new(i), i + 1), WriteResult::Ok);
        }
        for i in 0..N {
            assert_eq!(ctl.read(Pa::new(i)), i + 1);
        }
        assert!(ctl.wl_active());
    }

    #[test]
    fn failure_hidden_while_slots_last() {
        let mut ctl = make(8, 300.0, 1_000_000, 2);
        let pa = Pa::new(9);
        let mut last = 0;
        for i in 1..30_000u64 {
            assert_eq!(ctl.write(pa, i), WriteResult::Ok, "write {i}");
            last = i;
            if ctl.counters().links > 0 {
                break;
            }
        }
        assert!(ctl.counters().links > 0, "block never failed");
        assert!(ctl.wl_active(), "reserve should hide the failure");
        assert_eq!(ctl.read(pa), last);
        assert_eq!(ctl.free_slots(), 7);
    }

    #[test]
    fn zero_reserve_freezes_on_first_failure() {
        let mut ctl = make(0, 300.0, 5, 3);
        let pa = Pa::new(9);
        let mut reported = false;
        for i in 0..30_000u64 {
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    assert_eq!(rep, pa);
                    reported = true;
                    break;
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(reported);
        assert!(!ctl.wl_active(), "first failure must cripple Start-Gap");
        assert_eq!(ctl.counters().reports, 1);
    }

    #[test]
    fn exhausted_reserve_eventually_freezes() {
        let mut ctl = make(2, 200.0, 1_000_000, 4);
        let mut reports = 0;
        for i in 0..400_000u64 {
            let pa = Pa::new(i % N);
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(_) => {
                    reports += 1;
                    break;
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert_eq!(reports, 1);
        assert!(!ctl.wl_active());
        assert_eq!(ctl.free_slots(), 0);
    }

    #[test]
    fn frozen_map_still_serves_linked_blocks() {
        let mut ctl = make(1, 250.0, 1_000_000, 5);
        // Exhaust the single slot, then freeze on a second failing block.
        let mut frozen_at = None;
        for i in 0..400_000u64 {
            let pa = Pa::new(i % N);
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(_) => {
                    frozen_at = Some(i);
                    break;
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(frozen_at.is_some());
        // Blocks linked before the freeze keep working.
        assert!(ctl.counters().links >= 1);
        let linked_da = ctl.links.keys().next().unwrap();
        let linked_pa = ctl.wl.inverse(Da::new(linked_da)).unwrap();
        assert_eq!(ctl.write(linked_pa, 123), WriteResult::Ok);
        assert_eq!(ctl.read(linked_pa), 123);
    }

    #[test]
    fn works_without_wear_leveling_as_pure_ecc_baseline() {
        let device = PcmDevice::builder(geo())
            .endurance_mean(300.0)
            .seed(6)
            .ecc(Box::new(Ecp::ecp6()))
            .build();
        let mut ctl = FreepController::builder(device, Box::new(NoWearLeveling::new(N)), 0).build();
        assert_eq!(ctl.label(), "ECP6");
        let pa = Pa::new(3);
        let mut reported = false;
        for i in 0..30_000u64 {
            if ctl.write(pa, i) != WriteResult::Ok {
                reported = true;
                break;
            }
        }
        assert!(reported, "no-WL baseline must expose the failure");
    }

    #[test]
    fn labels() {
        assert_eq!(make(0, 1e9, 5, 7).label(), "ECP6-SG");
        assert_eq!(make(8, 1e9, 5, 7).label(), "ECP6-SG-FREEp");
    }

    #[test]
    fn cache_reduces_linked_access_cost() {
        let device = PcmDevice::builder(geo())
            .extra_blocks(1 + 8)
            .endurance_mean(300.0)
            .seed(8)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = StartGap::builder(N)
            .gap_interval(1_000_000)
            .randomizer(RandomizerKind::Feistel { seed: 8 })
            .build();
        let mut ctl = FreepController::builder(device, Box::new(wl), 8)
            .cache_bytes(1024)
            .build();
        let pa = Pa::new(9);
        for i in 0..30_000u64 {
            ctl.write(pa, i);
            if ctl.counters().links > 0 {
                break;
            }
        }
        assert!(ctl.counters().links > 0);
        ctl.read(pa); // warm the cache
        ctl.reset_request_stats();
        ctl.read(pa);
        assert_eq!(ctl.request_stats().accesses, 1);
    }
}
