//! The trace-driven simulation loop.
//!
//! [`Simulation`] wires a workload ([`wlr_trace::Workload`]), the OS model
//! ([`wlr_os::OsMemory`]), a memory controller
//! ([`crate::controller::Controller`]) and the PCM device into the
//! evaluation loop of §IV: software issues writes by application address,
//! the OS translates them, the controller serves them under wear leveling
//! and (optionally) failure revival, and failure reports/page requests
//! flow back through the OS — whose retirement copies are themselves
//! performed through the controller so they wear the PCM.
//!
//! The simulation records a [`crate::metrics::TimeSeries`] and stops on a
//! [`StopCondition`]; an optional integrity oracle tracks the expected
//! content of every application block and cross-checks reads.

use crate::controller::{Controller, WriteResult};
use crate::metrics::{SamplePoint, TimeSeries};
use crate::recovery::RecoveryReport;
use crate::reviver::{ReviverCounters, TraceRingSink};
use wlr_base::dense::DenseMap;
use wlr_base::rng::Rng;
use wlr_base::{AppAddr, Geometry, Pa};
use wlr_os::OsMemory;
use wlr_pcm::{Ecp, ErrorCorrection, FaultPlan, Payg};
use wlr_trace::{UniformWorkload, Workload};
use wlr_wl::RandomizerKind;

/// Which error-correction scheme to configure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EccKind {
    /// ECP with `k` entries per block (the paper's base is ECP6).
    Ecp(u32),
    /// PAYG with a pool of `ratio` entries per block (paper default 0.77).
    Payg {
        /// Global pool entries per block.
        ratio: f64,
    },
}

/// Which controller stack to simulate. The names follow the paper's
/// figure legends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeKind {
    /// Error correction only (`ECP6` / `PAYG` curves): no wear leveling,
    /// every failure costs the OS a page.
    EccOnly,
    /// Error correction + Start-Gap (`ECP6-SG` / `PAYG-SG`): the first
    /// unhidden failure freezes the scheme.
    StartGapOnly,
    /// Error correction + Security Refresh, freezing on the first failure.
    SecurityRefreshOnly,
    /// FREE-p adapted with a pre-reserved remap region of this fraction of
    /// the total PCM (Figure 7).
    Freep {
        /// Reserved fraction of total PCM space (0.05 = the paper's 5%).
        reserve_frac: f64,
    },
    /// The LLS baseline (Figure 8, Table II).
    Lls,
    /// The Zombie-adapted baseline (§I-C): failures hidden behind spare
    /// blocks from incrementally-retired pages, wear leveling frozen from
    /// the first failure.
    Zombie,
    /// WL-Reviver over Start-Gap (`ECP6-SG-WLR` / `PAYG-SG-WLR`).
    ReviverStartGap,
    /// WL-Reviver over Security Refresh (framework-generality ablation).
    ReviverSecurityRefresh,
    /// WL-Reviver over region-tiled Start-Gap (the Start-Gap paper's
    /// practical deployment: one gap line per tile behind a global
    /// randomizer; tile count set by `sg_tiles`).
    ReviverTiledStartGap,
    /// WL-Reviver over the full two-level Security Refresh (inner
    /// sub-region level stacked under a chip-wide outer level).
    ReviverTwoLevelSecurityRefresh,
    /// Error correction + SoftWear page-sorting wear leveling (software
    /// table-mapped, no algebraic mapping), freezing on the first failure.
    SoftWear,
    /// Error correction + SAWL-style adaptive Start-Gap (the migration
    /// interval widens/narrows online from the observed write-skew CoV),
    /// freezing on the first failure.
    AdaptiveStartGap,
    /// WL-Reviver over SoftWear — the table-mapped corner of the
    /// framework's "any scheme" claim.
    ReviverSoftWear,
    /// WL-Reviver over SAWL-style adaptive Start-Gap.
    ReviverAdaptiveStartGap,
}

/// When to stop a run. The run also always stops if the application's
/// memory is exhausted (no pages left) or a hard write cap is reached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// After this many software writes.
    Writes(u64),
    /// When the fraction of dead software-visible blocks reaches this
    /// value (Figure 5 uses 0.30).
    DeadFraction(f64),
    /// When software-usable space drops to this fraction of the PCM.
    UsableBelow(f64),
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The requested [`StopCondition`] was met.
    ConditionMet,
    /// All application pages were dropped: the memory is gone.
    MemoryExhausted,
    /// The safety cap on total writes was hit.
    HardCap,
    /// An injected power loss cut the run short. Call
    /// [`Simulation::recover`] to restore power, rebuild the controller's
    /// volatile state, and continue running.
    PowerLoss,
}

/// Final state of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Software writes issued.
    pub writes_issued: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Final survival fraction of visible blocks.
    pub survival: f64,
    /// Final usable-space fraction.
    pub usable: f64,
}

/// Builder for [`Simulation`]; see [`Simulation::builder`].
#[derive(Debug)]
pub struct SimulationBuilder {
    num_blocks: u64,
    block_bytes: u64,
    page_bytes: u64,
    endurance_mean: f64,
    endurance_cov: f64,
    ecc: EccKind,
    scheme: SchemeKind,
    gap_interval: u64,
    sr_refresh_interval: u64,
    sr_region_blocks: Option<u64>,
    sw_swap_interval: Option<u64>,
    sw_scan_window: u64,
    adaptive_epoch: Option<u64>,
    adaptive_cov_band: (f64, f64),
    lls_groups: u64,
    lls_chunks: u64,
    cache_bytes: Option<usize>,
    os_reserve_pages: u64,
    sample_interval: u64,
    seed: u64,
    workload: Option<Box<dyn Workload>>,
    verify_integrity: bool,
    check_invariants: bool,
    hard_cap: u64,
    sg_randomizer: Option<RandomizerKind>,
    sg_tiles: u64,
    reviver_pointer_bytes: u64,
    reviver_chain_switching: bool,
    reviver_proactive: bool,
    fault_plan: Option<FaultPlan>,
    trace_ring: Option<usize>,
}

impl SimulationBuilder {
    /// Total PCM capacity in blocks (default 2¹⁶ = 4 MB of 64 B blocks).
    /// For [`SchemeKind::Freep`], the pre-reserve is carved out of this.
    pub fn num_blocks(mut self, blocks: u64) -> Self {
        self.num_blocks = blocks;
        self
    }

    /// Mean cell endurance in writes (default 10⁴; the paper's chip is
    /// 10⁸ — see DESIGN.md §3.2 on scaling).
    pub fn endurance_mean(mut self, mean: f64) -> Self {
        self.endurance_mean = mean;
        self
    }

    /// Cell-lifetime CoV (default 0.2, as in the paper).
    pub fn endurance_cov(mut self, cov: f64) -> Self {
        self.endurance_cov = cov;
        self
    }

    /// Error-correction scheme (default ECP6).
    pub fn ecc(mut self, ecc: EccKind) -> Self {
        self.ecc = ecc;
        self
    }

    /// Controller stack (default [`SchemeKind::ReviverStartGap`]).
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.scheme = scheme;
        self
    }

    /// Controller stack by registry name (e.g. `"reviver-sg"`,
    /// `"softwear-wlr"`) or report title (e.g. `"ReviverStartGap"`); the
    /// stack's default knobs from [`crate::registry::SchemeRegistry`]
    /// apply. Callers needing graceful errors resolve through
    /// [`crate::registry::SchemeRegistry::resolve`] themselves.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the valid stacks.
    pub fn stack(mut self, name: &str) -> Self {
        let spec = crate::registry::SchemeRegistry::global()
            .resolve(name)
            .unwrap_or_else(|e| panic!("{e}"));
        self.scheme = spec.kind;
        self
    }

    /// Start-Gap ψ: writes per gap movement (default 100, as in the paper).
    pub fn gap_interval(mut self, psi: u64) -> Self {
        self.gap_interval = psi;
        self
    }

    /// Security Refresh: writes per refresh swap (default 100).
    pub fn sr_refresh_interval(mut self, interval: u64) -> Self {
        self.sr_refresh_interval = interval;
        self
    }

    /// Security Refresh region size in blocks (default: largest power of
    /// two dividing the visible space).
    pub fn sr_region_blocks(mut self, blocks: u64) -> Self {
        self.sr_region_blocks = Some(blocks);
        self
    }

    /// SoftWear: writes per hot↔cold swap (default: the Security Refresh
    /// interval — both are in-place swap cadences).
    pub fn sw_swap_interval(mut self, interval: u64) -> Self {
        self.sw_swap_interval = Some(interval);
        self
    }

    /// SoftWear: frames examined per cold scan (default 16).
    pub fn sw_scan_window(mut self, window: u64) -> Self {
        self.sw_scan_window = window;
        self
    }

    /// Adaptive wrapper: writes per CoV evaluation (default: 4× the
    /// visible space).
    pub fn adaptive_epoch_writes(mut self, writes: u64) -> Self {
        self.adaptive_epoch = Some(writes);
        self
    }

    /// Adaptive wrapper: CoV band — below `lo` the migration interval
    /// widens, above `hi` it narrows (default `0.75 .. 1.5`).
    pub fn adaptive_cov_band(mut self, lo: f64, hi: f64) -> Self {
        self.adaptive_cov_band = (lo, hi);
        self
    }

    /// LLS salvage-group count (default 64).
    pub fn lls_groups(mut self, groups: u64) -> Self {
        self.lls_groups = groups;
        self
    }

    /// LLS maximum chunks; chunk size is `visible/16` (default 16 chunks).
    pub fn lls_chunks(mut self, chunks: u64) -> Self {
        self.lls_chunks = chunks;
        self
    }

    /// Remap cache size in bytes (Table II uses 32 KB; default none).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// OS free-page reserve (default 0).
    pub fn os_reserve_pages(mut self, pages: u64) -> Self {
        self.os_reserve_pages = pages;
        self
    }

    /// Writes between time-series samples (default: visible blocks / 4,
    /// clamped to at least 1024).
    pub fn sample_interval(mut self, writes: u64) -> Self {
        self.sample_interval = writes;
        self
    }

    /// Experiment seed; drives cell lifetimes, keys, and the default
    /// workload.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The write workload. Its address space must equal the application
    /// space (`visible blocks − OS reserve`); defaults to uniform writes.
    pub fn workload(mut self, workload: impl Workload + 'static) -> Self {
        self.workload = Some(Box::new(workload));
        self
    }

    /// As [`Self::workload`] for an already-boxed trait object.
    pub fn workload_boxed(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Enables the data-integrity oracle: every application block's
    /// expected content is tracked and reads are cross-checked (costs
    /// memory and time; used by the tests).
    pub fn verify_integrity(mut self, on: bool) -> Self {
        self.verify_integrity = on;
        self
    }

    /// Enables WL-Reviver's Theorem 1–3 assertions per request (tests).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Safety cap on total writes (default 10¹²).
    pub fn hard_cap(mut self, writes: u64) -> Self {
        self.hard_cap = writes;
        self
    }

    /// Overrides Start-Gap's static randomizer (default: Feistel seeded
    /// by the experiment seed). Ablation knob.
    pub fn sg_randomizer(mut self, kind: RandomizerKind) -> Self {
        self.sg_randomizer = Some(kind);
        self
    }

    /// Tile count for [`SchemeKind::ReviverTiledStartGap`] (default 16).
    pub fn sg_tiles(mut self, tiles: u64) -> Self {
        self.sg_tiles = tiles;
        self
    }

    /// WL-Reviver pointer width in bytes (sizes the inverse-pointer
    /// section; default 4). Ablation knob.
    pub fn reviver_pointer_bytes(mut self, bytes: u64) -> Self {
        self.reviver_pointer_bytes = bytes;
        self
    }

    /// Disables WL-Reviver's one-step-chain switching (ablation).
    pub fn reviver_chain_switching(mut self, on: bool) -> Self {
        self.reviver_chain_switching = on;
        self
    }

    /// Enables WL-Reviver's proactive page acquisition (the §III-A
    /// alternative; ablation).
    pub fn reviver_proactive(mut self, on: bool) -> Self {
        self.reviver_proactive = on;
        self
    }

    /// Attaches a bounded [`TraceRingSink`] of `events` capacity to a
    /// WL-Reviver controller, retaining the newest events for post-mortem
    /// dumps ([`Simulation::trace_dump`]) after a power loss or an
    /// invariant violation. Ignored by non-reviver schemes.
    pub fn trace_ring(mut self, events: usize) -> Self {
        self.trace_ring = Some(events);
        self
    }

    /// Installs a fault-injection schedule on the device (power losses,
    /// silent write failures, transient read errors). An empty plan is
    /// equivalent to none: the fault machinery stays entirely out of the
    /// hot path and runs are bit-identical to fault-free ones.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Constructs the simulation.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (mismatched workload size,
    /// invalid geometry, reserve fractions outside `[0, 1)`).
    pub fn build(self) -> Simulation {
        // Visible space: total minus any FREE-p pre-reserve, page-aligned.
        let bpp = self.page_bytes / self.block_bytes;
        let (visible, reserve_blocks) = match self.scheme {
            SchemeKind::Freep { reserve_frac } => {
                assert!(
                    (0.0..1.0).contains(&reserve_frac),
                    "reserve fraction must be in [0,1)"
                );
                let reserve_pages =
                    ((self.num_blocks as f64 * reserve_frac) / bpp as f64).round() as u64;
                let visible = self.num_blocks - reserve_pages * bpp;
                (visible, reserve_pages * bpp)
            }
            _ => (self.num_blocks - self.num_blocks % bpp, 0),
        };
        assert!(visible >= bpp, "no visible space left after reservation");
        let geo = Geometry::builder()
            .block_bytes(self.block_bytes)
            .page_bytes(self.page_bytes)
            .num_blocks(visible)
            .build()
            .expect("geometry parameters are validated above");

        let ecc: Box<dyn ErrorCorrection> = match self.ecc {
            EccKind::Ecp(k) => Box::new(Ecp::new(k)),
            EccKind::Payg { ratio } => Box::new(Payg::with_ratio(self.num_blocks, ratio)),
        };

        let fault_active = self.fault_plan.as_ref().is_some_and(|p| !p.is_empty());
        let feistel = self
            .sg_randomizer
            .unwrap_or(RandomizerKind::Feistel { seed: self.seed });

        // All stack construction lives in the scheme registry; the builder
        // only prepares the context (knobs + one-shot device ingredients).
        let mut ctx = crate::registry::StackCtx::new(
            self.scheme,
            visible,
            reserve_blocks,
            bpp,
            crate::registry::DeviceParts {
                geo,
                endurance_mean: self.endurance_mean,
                endurance_cov: self.endurance_cov,
                track_contents: self.verify_integrity,
                ecc,
                fault_plan: self.fault_plan,
            },
        );
        ctx.gap_interval = self.gap_interval;
        ctx.sr_refresh_interval = self.sr_refresh_interval;
        ctx.sr_region_blocks = self.sr_region_blocks;
        ctx.sw_swap_interval = self.sw_swap_interval.unwrap_or(self.sr_refresh_interval);
        ctx.sw_scan_window = self.sw_scan_window;
        ctx.adaptive_epoch = self.adaptive_epoch;
        ctx.adaptive_cov_band = self.adaptive_cov_band;
        ctx.lls_groups = self.lls_groups;
        ctx.lls_chunks = self.lls_chunks;
        ctx.cache_bytes = self.cache_bytes;
        ctx.seed = self.seed;
        ctx.sg_randomizer = feistel;
        ctx.sg_tiles = self.sg_tiles;
        ctx.check_invariants = self.check_invariants;
        ctx.reviver_pointer_bytes = self.reviver_pointer_bytes;
        ctx.reviver_chain_switching = self.reviver_chain_switching;
        ctx.reviver_proactive = self.reviver_proactive;

        let controller: Box<dyn Controller> = crate::registry::SchemeRegistry::global()
            .spec_for(self.scheme)
            .build_stack(&mut ctx);

        let mut controller = controller;
        if let Some(r) = controller.as_reviver_mut() {
            if let Some(cap) = self.trace_ring {
                r.add_sink(Box::new(TraceRingSink::new(cap)));
            }
            // Heavyweight JSONL tracing: compiled in only with the
            // `trace-events` feature, armed per run via WLR_TRACE_EVENTS
            // (the path to write).
            #[cfg(feature = "trace-events")]
            if let Ok(path) = std::env::var("WLR_TRACE_EVENTS") {
                if !path.is_empty() {
                    match crate::reviver::JsonlSink::create(&path) {
                        Ok(sink) => r.add_sink(Box::new(sink)),
                        Err(e) => eprintln!("WLR_TRACE_EVENTS: cannot open {path}: {e}"),
                    }
                }
            }
        }

        let os = OsMemory::builder(geo)
            .reserve_pages(self.os_reserve_pages)
            .build();
        let app_blocks = os.app_blocks();
        let workload = match self.workload {
            Some(w) => {
                assert_eq!(
                    w.len(),
                    app_blocks,
                    "workload space ({}) must equal the application space ({app_blocks})",
                    w.len()
                );
                w
            }
            None => Box::new(UniformWorkload::new(app_blocks, self.seed)),
        };

        let sample_interval = if self.sample_interval == 0 {
            (visible / 4).max(1024)
        } else {
            self.sample_interval
        };

        Simulation {
            geo,
            os,
            controller,
            workload,
            writes_issued: 0,
            seq: 0,
            series: TimeSeries::new(),
            sample_interval,
            last_req: (0, 0),
            next_sample: sample_interval,
            expected: if self.verify_integrity {
                Some(Oracle::with_capacity(app_blocks))
            } else {
                None
            },
            verify_rng: Rng::stream(self.seed, 0x07AC1E),
            integrity_errors: 0,
            retirements: 0,
            grants: 0,
            lost_writes: 0,
            hard_cap: self.hard_cap,
            fault_active,
            silent_seen: 0,
        }
    }
}

/// A configured, runnable simulation. See the crate-level example.
#[derive(Debug)]
pub struct Simulation {
    geo: Geometry,
    os: OsMemory,
    controller: Box<dyn Controller>,
    workload: Box<dyn Workload>,
    writes_issued: u64,
    seq: u64,
    series: TimeSeries,
    sample_interval: u64,
    /// `(requests, accesses)` at the previous sample, for windowed
    /// average access time.
    last_req: (u64, u64),
    /// Next write count at which to record a sample. Always strictly
    /// ahead of `writes_issued`; advanced by `sample_interval` each time.
    next_sample: u64,
    /// Integrity oracle: app address → expected tag.
    expected: Option<Oracle>,
    verify_rng: Rng,
    integrity_errors: u64,
    retirements: u64,
    /// Pages granted to the controller (`on_page_retired` calls). Watched
    /// by the batched run loop: together with `retirements` it covers
    /// every way `usable_fraction` can change.
    grants: u64,
    lost_writes: u64,
    hard_cap: u64,
    /// Whether a non-empty fault plan is installed. Gates every piece of
    /// fault bookkeeping (OS snapshots, exemptions, power polling) so
    /// fault-free runs stay bit-identical to the seed engine.
    fault_active: bool,
    /// Silent-failure log entries already reconciled with the oracle.
    silent_seen: usize,
}

/// A frozen image of a [`Simulation`] at one instant, produced by
/// [`Simulation::snapshot`] and instantiated (any number of times) by
/// [`Simulation::fork`].
///
/// The image is self-contained: it owns deep copies of the device, the
/// leveler, the OS page tables, the workload stream position, and every
/// RNG stream, so the original simulation and all forks evolve fully
/// independently. See `DESIGN.md` ("Snapshot/fork") for exactly what is
/// and is not captured.
#[derive(Debug)]
pub struct SimSnapshot {
    geo: Geometry,
    os: OsMemory,
    controller: Box<dyn Controller>,
    workload: Box<dyn Workload>,
    writes_issued: u64,
    seq: u64,
    series: TimeSeries,
    sample_interval: u64,
    last_req: (u64, u64),
    next_sample: u64,
    expected: Option<Oracle>,
    verify_rng: Rng,
    integrity_errors: u64,
    retirements: u64,
    grants: u64,
    lost_writes: u64,
    hard_cap: u64,
    fault_active: bool,
    silent_seen: usize,
}

impl SimSnapshot {
    /// Software writes the captured run had issued at snapshot time.
    pub fn writes_issued(&self) -> u64 {
        self.writes_issued
    }
}

/// The integrity oracle's store: a dense app-address → tag table plus an
/// incrementally-maintained sorted key list. The seed-state engine
/// re-sorted the key set at every sample to make verification traffic
/// deterministic; keeping the list sorted across inserts (most writes hit
/// an existing key and touch only the table) preserves the exact same
/// pick sequence at O(log n) amortized instead of O(n log n) per sample.
#[derive(Debug, Clone)]
struct Oracle {
    map: DenseMap<u64>,
    /// The present keys in ascending order, kept in lockstep with `map`.
    keys: Vec<u64>,
}

impl Oracle {
    fn with_capacity(capacity: u64) -> Self {
        Oracle {
            map: DenseMap::with_capacity(capacity),
            keys: Vec::new(),
        }
    }

    fn insert(&mut self, k: u64, v: u64) {
        if self.map.insert(k, v).is_none() {
            let pos = self.keys.binary_search(&k).unwrap_err();
            self.keys.insert(pos, k);
        }
    }

    fn remove(&mut self, k: u64) {
        if self.map.remove(k).is_some() {
            let pos = self
                .keys
                .binary_search(&k)
                .expect("oracle key list out of sync");
            self.keys.remove(pos);
        }
    }
}

/// How an externally-driven write batch ([`Simulation::run_batch`])
/// ended. `consumed` counts the batch's addresses actually issued
/// (including the one that tripped the exceptional outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every address in the batch was issued.
    Completed,
    /// The application's memory ran out mid-batch; the remaining
    /// addresses were not issued.
    MemoryExhausted {
        /// Addresses issued before (and including) the exhausting write.
        consumed: u64,
    },
    /// An injected power loss fired mid-batch; call
    /// [`Simulation::recover`] before issuing more writes.
    PowerLoss {
        /// Addresses issued before the lights went out.
        consumed: u64,
    },
    /// The safety cap on total writes was hit; the remaining addresses
    /// were not issued.
    HardCap {
        /// Addresses issued before the cap.
        consumed: u64,
    },
}

/// What an application-level read ([`Simulation::read_app`]) observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppRead {
    /// The line was mapped and read cleanly; the payload is its content
    /// tag (0 unless content tracking is on).
    Ok(u64),
    /// The address is not currently mapped by the OS.
    Unmapped,
    /// An injected transient error fired and the block's ECC could not
    /// absorb it. Retryable — the next read of the same line consults the
    /// fault schedule afresh.
    Transient,
}

/// What a single step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    Serviced,
    /// Integrity mode only: the write's page was gone, the data was
    /// dropped. Such a write never records a sample (the seed-state
    /// engine returned before its sample check).
    Discarded,
    Exhausted,
    /// An injected power loss fired during this write: the device is
    /// dropping all writes until [`Simulation::recover`] runs.
    PowerLost,
}

impl Simulation {
    /// Starts building a simulation with the scaled default configuration
    /// (see DESIGN.md §6).
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            num_blocks: 1 << 16,
            block_bytes: 64,
            page_bytes: 4096,
            endurance_mean: 1e4,
            endurance_cov: 0.2,
            ecc: EccKind::Ecp(6),
            scheme: SchemeKind::ReviverStartGap,
            gap_interval: 100,
            sr_refresh_interval: 100,
            sr_region_blocks: None,
            sw_swap_interval: None,
            sw_scan_window: 16,
            adaptive_epoch: None,
            adaptive_cov_band: (0.75, 1.5),
            lls_groups: 64,
            lls_chunks: 16,
            cache_bytes: None,
            os_reserve_pages: 0,
            sample_interval: 0,
            seed: 0,
            workload: None,
            verify_integrity: false,
            check_invariants: false,
            hard_cap: 1_000_000_000_000,
            sg_randomizer: None,
            sg_tiles: 16,
            reviver_pointer_bytes: 4,
            reviver_chain_switching: true,
            reviver_proactive: false,
            fault_plan: None,
            trace_ring: None,
        }
    }

    /// The software-visible geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// The controller under test.
    pub fn controller(&self) -> &dyn Controller {
        self.controller.as_ref()
    }

    /// Mutable controller access (for measurement-window scoping).
    pub fn controller_mut(&mut self) -> &mut dyn Controller {
        self.controller.as_mut()
    }

    /// The OS model.
    pub fn os(&self) -> &OsMemory {
        &self.os
    }

    /// Mutable OS access — restore paths (replaying a persisted
    /// retirement log into a fresh sim) and page-pressure experiments.
    pub fn os_mut(&mut self) -> &mut OsMemory {
        &mut self.os
    }

    /// WL-Reviver event counters, when the controller is a reviver.
    pub fn reviver_counters(&self) -> Option<ReviverCounters> {
        self.controller.as_reviver().map(|r| r.counters())
    }

    /// Renders the retained trace-ring window as JSON lines, when a ring
    /// was attached ([`SimulationBuilder::trace_ring`]). The post-mortem
    /// companion to [`StopReason::PowerLoss`].
    pub fn trace_dump(&self) -> Option<String> {
        self.controller
            .as_reviver()
            .and_then(|r| r.sink::<TraceRingSink>())
            .map(TraceRingSink::dump)
    }

    /// Software writes issued so far.
    pub fn writes_issued(&self) -> u64 {
        self.writes_issued
    }

    /// Recorded metric series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Page retirements observed (all causes).
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// Writes whose data could not be placed anywhere (page dropped with
    /// no replacement, or cascades that gave up).
    pub fn lost_writes(&self) -> u64 {
        self.lost_writes
    }

    /// Integrity-oracle violations observed (0 in a correct system).
    pub fn integrity_errors(&self) -> u64 {
        self.integrity_errors
    }

    /// Current usable fraction of the PCM: visible minus retired pages,
    /// over visible plus controller reserves.
    pub fn usable_fraction(&self) -> f64 {
        let bpp = self.geo.blocks_per_page();
        let visible = self.geo.num_blocks() as f64;
        let retired = (self.os.retired_pages() * bpp) as f64;
        let total = visible + self.controller.reserved_blocks() as f64;
        ((visible - retired) / total).max(0.0)
    }

    /// Wear-distribution quality over the software-visible blocks.
    pub fn wear_report(&self) -> crate::metrics::WearReport {
        let n = self.geo.num_blocks() as usize;
        crate::metrics::WearReport::from_wear(&self.controller.device().wear_snapshot()[..n])
    }

    /// Current survival fraction of visible blocks.
    pub fn survival_fraction(&self) -> f64 {
        1.0 - self.controller.visible_dead_fraction()
    }

    /// Issues exactly one software write drawn from the workload.
    /// Sampling lives in [`Self::maybe_sample`], called by the batched
    /// [`Self::run`] loop.
    fn step(&mut self) -> StepOutcome {
        let addr = self.workload.next_write();
        self.step_addr(addr)
    }

    /// Issues exactly one software write of `addr`, bypassing the
    /// workload — the multi-bank front-end drives each bank's simulation
    /// by queued address through this path.
    fn step_addr(&mut self, addr: AppAddr) -> StepOutcome {
        self.writes_issued += 1;
        self.seq += 1;
        let tag = self.seq;
        // In integrity mode, writes to dropped pages are discarded rather
        // than redirected: a redirect shares a victim page's blocks between
        // two application addresses, which the oracle cannot model (and
        // which real compaction would resolve with separate storage).
        let translated = if self.expected.is_some() {
            if self.os.mapped_app_pages() == 0 {
                None
            } else {
                let t = self.os.translate(addr);
                if t.is_none() {
                    self.lost_writes += 1;
                    return StepOutcome::Discarded;
                }
                t
            }
        } else {
            self.os.translate_or_redirect(addr)
        };
        let Some(pa) = translated else {
            return StepOutcome::Exhausted;
        };
        let placed = self.pa_write(pa, tag, 0);
        if self.fault_active && self.controller.device().power_lost() {
            // The in-flight write is torn by definition: neither its old
            // nor its new content is promised across the crash, so the
            // oracle stops tracking the address (it resumes on the next
            // post-recovery write).
            if let Some(oracle) = &mut self.expected {
                oracle.remove(addr.index());
            }
            self.reconcile_silent_failures();
            return StepOutcome::PowerLost;
        }
        if let Some(oracle) = &mut self.expected {
            // The data survives iff the address still translates (its page
            // was kept or relocated with copies) — and, under fault
            // injection, iff the write actually landed somewhere.
            if self.os.translate(addr).is_some() && (placed || !self.fault_active) {
                oracle.insert(addr.index(), tag);
            } else {
                oracle.remove(addr.index());
            }
        }
        if self.fault_active {
            self.reconcile_silent_failures();
        }
        StepOutcome::Serviced
    }

    /// Records a sample (and oracle spot-checks) if `writes_issued` has
    /// reached the next sample boundary. `discarded` suppresses the
    /// recording but still advances the boundary, matching the seed-state
    /// engine, whose discarded writes skipped the sample check entirely.
    fn maybe_sample(&mut self, discarded: bool) {
        if self.writes_issued < self.next_sample {
            return;
        }
        while self.next_sample <= self.writes_issued {
            let n = self.next_sample.saturating_add(self.sample_interval);
            if n == self.next_sample {
                break; // interval so large the boundary saturated
            }
            self.next_sample = n;
        }
        if !discarded {
            self.record_sample();
            if self.expected.is_some() {
                self.verify_some(32);
            }
        }
    }

    /// Writes `tag` to `pa`, playing the OS on failure reports and page
    /// requests. Retirement copies recurse (bounded by `depth`). Returns
    /// whether the data ended up stored somewhere (always ignored in
    /// fault-free runs, whose oracle keys off translation alone).
    fn pa_write(&mut self, pa: Pa, tag: u64, depth: u8) -> bool {
        if depth > 8 {
            self.lost_writes += 1;
            return false;
        }
        let first = self.controller.write(pa, tag);
        self.pa_write_rest(first, pa, tag, depth)
    }

    /// The write-retry protocol given the first attempt's result —
    /// split out so the steady-state batch loop can issue the first
    /// controller write itself and only pay for this on failure. Handles
    /// up to 4 write attempts in total, exactly like the historical
    /// single-function loop.
    fn pa_write_rest(&mut self, first: WriteResult, pa: Pa, tag: u64, depth: u8) -> bool {
        let mut res = first;
        let mut attempts = 1u8;
        loop {
            match res {
                WriteResult::Ok => return true,
                WriteResult::ReportFailure(rep) => {
                    return self.handle_report(rep, (pa, tag), depth);
                }
                WriteResult::RequestPages(pages) => {
                    for page in pages {
                        let snap = self.fault_active.then(|| self.os.clone());
                        if let Some(ret) = self.os.retire_page(page) {
                            self.retirements += 1;
                            let copies = ret.copies.clone();
                            self.controller.on_page_retired(page);
                            if self.rolled_back_retirement(page, snap) {
                                return false;
                            }
                            self.grants += 1;
                            for (src, dst) in copies {
                                let t = self.controller.read(src);
                                let ok = self.pa_write(dst, t, depth + 1);
                                if self.fault_active && !ok {
                                    self.exempt_pa(dst);
                                }
                            }
                        } else {
                            self.controller.on_page_retired(page);
                            if self.rolled_back_retirement(page, snap) {
                                return false;
                            }
                            self.grants += 1;
                        }
                    }
                    // Retry the original write now that the pages landed.
                }
                WriteResult::Dropped(_) => {
                    // Power cut or degraded metadata: nothing stored,
                    // nothing to report. The run loop notices the power
                    // state; degraded accesses just lose this write.
                    self.lost_writes += 1;
                    return false;
                }
            }
            if attempts == 4 {
                break;
            }
            attempts += 1;
            res = self.controller.write(pa, tag);
        }
        self.lost_writes += 1;
        false
    }

    /// OS exception handler: retire the page, grant it to the controller,
    /// and relocate its data — substituting the freshly-written tag for
    /// the failing block's stale content. Returns whether the fresh data
    /// got placed.
    fn handle_report(&mut self, rep: Pa, fresh: (Pa, u64), depth: u8) -> bool {
        let snap = self.fault_active.then(|| self.os.clone());
        let Some(ret) = self.os.handle_failure(rep) else {
            // Stale report: the page is already gone; so is the data.
            self.lost_writes += 1;
            return false;
        };
        self.controller.on_page_retired(ret.retired);
        if self.rolled_back_retirement(ret.retired, snap) {
            self.lost_writes += 1;
            return false;
        }
        self.retirements += 1;
        self.grants += 1;
        if ret.copies.is_empty() {
            // Pool dry: the application page was dropped.
            self.lost_writes += 1;
            return false;
        }
        let mut fresh_placed = false;
        for (src, dst) in ret.copies {
            let (t, is_fresh) = if src == fresh.0 {
                (fresh.1, true)
            } else {
                (self.controller.read(src), false)
            };
            let ok = self.pa_write(dst, t, depth + 1);
            if is_fresh {
                fresh_placed = ok;
            }
            if self.fault_active && !ok && !is_fresh {
                self.exempt_pa(dst);
            }
        }
        fresh_placed
    }

    /// Retirement transaction check: if a power cut struck before the
    /// retirement's durable commit (`Controller::retirement_persisted`),
    /// the grant never happened as far as recovery is concerned — roll the
    /// OS back to the pre-retirement snapshot so both sides agree. Returns
    /// true when the rollback fired. No-op (and no snapshot is ever taken)
    /// without an active fault plan.
    fn rolled_back_retirement(&mut self, page: wlr_base::PageId, snap: Option<OsMemory>) -> bool {
        if !self.fault_active || self.controller.retirement_persisted(page) {
            return false;
        }
        self.os = snap.expect("snapshot taken when faults are active");
        true
    }

    /// Removes from the oracle the application address currently mapped
    /// to `pa` (a relocation copy that never landed because of an
    /// injected fault). Fault paths only — linear in tracked addresses.
    fn exempt_pa(&mut self, pa: Pa) {
        let Some(oracle) = &self.expected else {
            return;
        };
        let hit = oracle.keys.iter().copied().find(|&k| {
            self.os
                .translate(AppAddr::new(k))
                .is_some_and(|cand| cand == pa)
        });
        if let Some(k) = hit {
            self.expected.as_mut().unwrap().remove(k);
        }
    }

    /// Reconciles newly-logged silent write failures with the oracle: the
    /// device reported those writes as stored but the block died, so
    /// whichever logical address owns the block has lost its data through
    /// no fault of the controller. The owner is resolved through the
    /// controller's current mapping and exempted from verification; the
    /// failure itself surfaces later as a normal (reported) failure when
    /// the block is next touched.
    fn reconcile_silent_failures(&mut self) {
        let log_len = self.controller.device().silent_failures().len();
        while self.silent_seen < log_len {
            let da = self.controller.device().silent_failures()[self.silent_seen];
            self.silent_seen += 1;
            if let Some(pa) = self.controller.logical_owner(da) {
                self.exempt_pa(pa);
            }
        }
    }

    fn record_sample(&mut self) {
        if self
            .series
            .points()
            .last()
            .is_some_and(|p| p.writes == self.writes_issued)
        {
            return; // already sampled at this write count
        }
        let req = self.controller.request_stats();
        let (p_req, p_acc) = self.last_req;
        let d_req = req.requests.saturating_sub(p_req);
        let d_acc = req.accesses.saturating_sub(p_acc);
        self.last_req = (req.requests, req.accesses);
        self.series.push(SamplePoint {
            writes: self.writes_issued,
            survival: self.survival_fraction(),
            usable: self.usable_fraction(),
            avg_access_time: if d_req == 0 {
                0.0
            } else {
                d_acc as f64 / d_req as f64
            },
            wl_active: self.controller.wl_active(),
        });
    }

    /// Simulates a machine power cycle: the OS reloads the retired-page
    /// bitmap (it never forgot it — `OsMemory` is this simulation's OS
    /// state) and the controller reconstructs its volatile state from
    /// PCM-resident metadata. See
    /// [`crate::controller::Controller::simulate_reboot`].
    pub fn simulate_reboot(&mut self) {
        self.controller.simulate_reboot();
    }

    /// Recovers from an injected power loss: restores device power and
    /// has the controller rebuild its volatile state from persistent
    /// metadata, returning the recovery-cost report. Safe to call when
    /// power was never lost (it is then just a reboot). After it returns,
    /// [`Self::run`] can continue the interrupted run.
    pub fn recover(&mut self) -> RecoveryReport {
        let report = self.controller.recover();
        if self.fault_active {
            // Recovery's journal replay may itself have touched blocks;
            // reconcile any silent failures it surfaced.
            self.reconcile_silent_failures();
        }
        report
    }

    /// Reads back `count` random tracked addresses and compares with the
    /// oracle; increments [`Self::integrity_errors`] on mismatch.
    fn verify_some(&mut self, count: usize) {
        let Some(oracle) = &self.expected else {
            return;
        };
        // The key list is kept sorted so verification traffic is
        // deterministic, exactly as the seed-state engine's per-sample
        // sort made it.
        if oracle.keys.is_empty() {
            return;
        }
        let mut picks = Vec::with_capacity(count);
        for _ in 0..count.min(oracle.keys.len()) {
            let k = oracle.keys[self.verify_rng.gen_range(oracle.keys.len() as u64) as usize];
            picks.push(k);
        }
        for k in picks {
            let addr = AppAddr::new(k);
            let Some(pa) = self.os.translate(addr) else {
                continue;
            };
            let want = self.expected.as_ref().unwrap().map[k];
            let got = self.controller.read(pa);
            if got != want {
                self.integrity_errors += 1;
            }
        }
    }

    /// Diagnostic variant of [`Self::verify_all`]: returns each mismatch
    /// as `(app address, expected tag, observed tag)`.
    pub fn find_mismatches(&mut self) -> Vec<(u64, u64, u64)> {
        let pairs: Vec<(u64, u64)> = match &self.expected {
            Some(o) => o.map.iter().map(|(k, &v)| (k, v)).collect(),
            None => return Vec::new(),
        };
        let mut out = Vec::new();
        for (k, want) in pairs {
            let addr = AppAddr::new(k);
            let Some(pa) = self.os.translate(addr) else {
                continue;
            };
            let got = self.controller.read(pa);
            if got != want {
                out.push((k, want, got));
            }
        }
        out
    }

    /// Reads back *every* tracked address (expensive; tests only).
    /// Returns the number of mismatches found in this pass.
    pub fn verify_all(&mut self) -> u64 {
        let pairs: Vec<(u64, u64)> = match &self.expected {
            Some(o) => o.map.iter().map(|(k, &v)| (k, v)).collect(),
            None => return 0,
        };
        let mut errors = 0;
        for (k, want) in pairs {
            let addr = AppAddr::new(k);
            let Some(pa) = self.os.translate(addr) else {
                continue;
            };
            if self.controller.read(pa) != want {
                errors += 1;
            }
        }
        self.integrity_errors += errors;
        errors
    }

    /// Arms an additional fault plan on the *running* simulation. Indices
    /// in `plan` are relative to the device accesses serviced so far (see
    /// [`wlr_pcm::FaultInjector::arm`]), so `power_loss_at_write(0)` cuts
    /// power on the very next device write. Switches the batched run loop
    /// onto its fault-guarded path permanently; a no-op for an empty plan.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        if plan.is_empty() {
            return;
        }
        self.controller.device_mut().arm_faults(plan);
        self.fault_active = true;
    }

    /// Application-level read of `addr`: translate through the OS, read
    /// through the controller, and classify any injected transient error
    /// the block's ECC could not absorb. The returned tag is meaningful
    /// only in integrity-oracle mode (content tracking on); otherwise it
    /// is 0.
    pub fn read_app(&mut self, addr: AppAddr) -> AppRead {
        let Some(pa) = self.os.translate(addr) else {
            return AppRead::Unmapped;
        };
        let before = self
            .controller
            .device()
            .fault_counters()
            .map_or(0, |c| c.transients_uncorrectable);
        let tag = self.controller.read(pa);
        let after = self
            .controller
            .device()
            .fault_counters()
            .map_or(0, |c| c.transients_uncorrectable);
        if after > before {
            AppRead::Transient
        } else {
            AppRead::Ok(tag)
        }
    }

    /// Snapshot of the integrity oracle: every tracked application
    /// address with its expected tag, in ascending address order. Empty
    /// when integrity verification is off. This is what degraded-mode
    /// quarantine evacuates from a dying bank.
    pub fn tracked_lines(&self) -> Vec<(u64, u64)> {
        match &self.expected {
            Some(o) => o.keys.iter().map(|&k| (k, o.map[k])).collect(),
            None => Vec::new(),
        }
    }

    /// Runs until `stop` is met, the memory is exhausted, or the hard cap
    /// is reached. Can be called repeatedly with different conditions to
    /// continue the same run.
    pub fn run(&mut self, stop: StopCondition) -> Outcome {
        let reason = 'outer: loop {
            if self.writes_issued >= self.hard_cap {
                break StopReason::HardCap;
            }
            if self.condition_met(stop) {
                break StopReason::ConditionMet;
            }
            // Batch writes up to the next point where anything must be
            // re-checked: the hard cap, the sample boundary, or a Writes
            // target. Both bounds are strictly ahead (checked above, and
            // `next_sample > writes_issued` is an invariant), so at least
            // one write is issued per iteration. Within a batch the stop
            // condition is re-evaluated only when a watched event says it
            // could have changed.
            let mut limit = self.hard_cap.min(self.next_sample);
            if let StopCondition::Writes(n) = stop {
                limit = limit.min(n);
            }
            let batch = limit - self.writes_issued;
            let mut last = StepOutcome::Serviced;
            match stop {
                StopCondition::Writes(_) => {
                    // Counted by `limit`; nothing else can trip it.
                    for _ in 0..batch {
                        last = self.step();
                        if last == StepOutcome::Exhausted {
                            break 'outer StopReason::MemoryExhausted;
                        }
                        if last == StepOutcome::PowerLost {
                            break 'outer StopReason::PowerLoss;
                        }
                    }
                }
                StopCondition::UsableBelow(_) => {
                    // Usable space moves only when a page retires or the
                    // controller is granted one — watch those counters.
                    let watch = (self.retirements, self.grants);
                    for _ in 0..batch {
                        last = self.step();
                        if last == StepOutcome::Exhausted {
                            break 'outer StopReason::MemoryExhausted;
                        }
                        if last == StepOutcome::PowerLost {
                            break 'outer StopReason::PowerLoss;
                        }
                        if (self.retirements, self.grants) != watch {
                            break;
                        }
                    }
                }
                StopCondition::DeadFraction(f) => {
                    let n = self.geo.num_blocks();
                    let dead = self.controller.device().dead_blocks();
                    if dead as f64 / n as f64 >= f {
                        // Past the total-dead gate the exact visible scan
                        // can flip on any write (the mapping moves), so
                        // fall back to single-stepping.
                        last = self.step();
                        if last == StepOutcome::Exhausted {
                            break 'outer StopReason::MemoryExhausted;
                        }
                        if last == StepOutcome::PowerLost {
                            break 'outer StopReason::PowerLoss;
                        }
                    } else {
                        // Below the gate the condition cannot trip until
                        // another block dies — watch the dead count.
                        for _ in 0..batch {
                            last = self.step();
                            if last == StepOutcome::Exhausted {
                                break 'outer StopReason::MemoryExhausted;
                            }
                            if last == StepOutcome::PowerLost {
                                break 'outer StopReason::PowerLoss;
                            }
                            if self.controller.device().dead_blocks() != dead {
                                break;
                            }
                        }
                    }
                }
            }
            self.maybe_sample(last == StepOutcome::Discarded);
        };
        self.record_sample();
        Outcome {
            writes_issued: self.writes_issued,
            reason,
            survival: self.survival_fraction(),
            usable: self.usable_fraction(),
        }
    }

    /// Issues an externally-supplied sequence of software writes, with
    /// the same sampling bookkeeping as [`Self::run`]. This is the entry
    /// point the multi-bank front-end (`wlr-mc`) uses: the bank's write
    /// stream comes from the controller's per-bank queue, not from the
    /// simulation's own workload. Batch boundaries are invisible — any
    /// partitioning of the same address sequence produces bit-identical
    /// simulation state.
    pub fn run_batch(&mut self, addrs: &[AppAddr]) -> BatchStatus {
        if self.fault_active || self.expected.is_some() {
            return self.run_batch_guarded(addrs);
        }
        // Steady state (no fault plan, no integrity oracle): run in tight
        // spans bounded by the next sample/hard-cap boundary, so the
        // per-write path is counters + translate + controller write. The
        // skipped `maybe_sample` calls are exact no-ops below the
        // boundary, so the state sequence is bit-identical to the guarded
        // loop's.
        let n = addrs.len();
        let mut i = 0usize;
        while i < n {
            if self.writes_issued >= self.hard_cap {
                return BatchStatus::HardCap { consumed: i as u64 };
            }
            let until_cap = self.hard_cap - self.writes_issued;
            let until_sample = self.next_sample.saturating_sub(self.writes_issued).max(1);
            let span = u64::min(until_cap, until_sample).min((n - i) as u64) as usize;
            let end = i + span;
            while i < end {
                let addr = addrs[i];
                self.writes_issued += 1;
                self.seq += 1;
                let tag = self.seq;
                i += 1;
                let Some(pa) = self.os.translate_or_redirect(addr) else {
                    self.maybe_sample(false);
                    return BatchStatus::MemoryExhausted { consumed: i as u64 };
                };
                match self.controller.write(pa, tag) {
                    WriteResult::Ok => {}
                    first => {
                        self.pa_write_rest(first, pa, tag, 0);
                    }
                }
            }
            self.maybe_sample(false);
        }
        BatchStatus::Completed
    }

    /// The fully-guarded per-write batch loop: fault injection and the
    /// integrity oracle need the complete [`Self::step_addr`] protocol
    /// around every write.
    fn run_batch_guarded(&mut self, addrs: &[AppAddr]) -> BatchStatus {
        for (i, &addr) in addrs.iter().enumerate() {
            if self.writes_issued >= self.hard_cap {
                return BatchStatus::HardCap { consumed: i as u64 };
            }
            let out = self.step_addr(addr);
            self.maybe_sample(out == StepOutcome::Discarded);
            match out {
                StepOutcome::Exhausted => {
                    return BatchStatus::MemoryExhausted {
                        consumed: i as u64 + 1,
                    };
                }
                StepOutcome::PowerLost => {
                    return BatchStatus::PowerLoss {
                        consumed: i as u64 + 1,
                    };
                }
                StepOutcome::Serviced | StepOutcome::Discarded => {}
            }
        }
        BatchStatus::Completed
    }

    /// A 64-bit FNV-1a fingerprint of the run's observable end state:
    /// write/retirement counters, the full per-block wear image, dead
    /// blocks, and the OS's retired-page count. Two runs that issued the
    /// same writes through the same configuration fingerprint equal;
    /// any divergence in wear, failure handling or retirement shows up
    /// here. Used by the multi-bank determinism tests.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.writes_issued);
        eat(self.retirements);
        eat(self.grants);
        eat(self.lost_writes);
        eat(self.os.retired_pages());
        let device = self.controller.device();
        eat(device.dead_blocks());
        for w in device.wear_snapshot() {
            eat(u64::from(w));
        }
        h
    }

    /// Freezes the full observable state of the run into a
    /// [`SimSnapshot`]: device block states and wear counters, leveler
    /// state, link tables, spare pool, OS page tables, workload stream
    /// position, the integrity oracle, and every RNG stream. The state
    /// lives in flat tables (`Vec`s and [`wlr_base::dense::DenseMap`]s), so the
    /// snapshot is a handful of bulk memcpys — no per-entry work.
    ///
    /// Event sinks attached to the controller are *not* captured (they
    /// are per-run observers, not simulated state); forks start with an
    /// empty sink stack. Everything that feeds [`Self::fingerprint`] is
    /// captured, and [`Simulation::fork`]-then-replay is bit-identical
    /// to continuing the original run.
    ///
    /// # Panics
    ///
    /// Panics if the controller or workload is a custom type that does
    /// not implement fork support ([`Controller::fork_box`] /
    /// [`Workload::clone_box`]); every shipped implementation does.
    pub fn snapshot(&self) -> SimSnapshot {
        let controller = self
            .controller
            .fork_box()
            .expect("controller does not support snapshot/fork");
        let workload = self
            .workload
            .clone_box()
            .expect("workload does not support snapshot/fork");
        SimSnapshot {
            geo: self.geo,
            os: self.os.clone(),
            controller,
            workload,
            writes_issued: self.writes_issued,
            seq: self.seq,
            series: self.series.clone(),
            sample_interval: self.sample_interval,
            last_req: self.last_req,
            next_sample: self.next_sample,
            expected: self.expected.clone(),
            verify_rng: self.verify_rng.clone(),
            integrity_errors: self.integrity_errors,
            retirements: self.retirements,
            grants: self.grants,
            lost_writes: self.lost_writes,
            hard_cap: self.hard_cap,
            fault_active: self.fault_active,
            silent_seen: self.silent_seen,
        }
    }

    /// Instantiates a fresh, independent simulation from `snap`. The
    /// snapshot is not consumed: one warmed snapshot can fan out
    /// arbitrarily many divergent futures, each continuing from the
    /// identical state. Divergence is injected after forking — swap the
    /// address stream with [`Self::replace_workload`] or arm a fault
    /// plan with [`Self::arm_faults`].
    pub fn fork(snap: &SimSnapshot) -> Simulation {
        Simulation {
            geo: snap.geo,
            os: snap.os.clone(),
            controller: snap
                .controller
                .fork_box()
                .expect("snapshotted controller must support fork"),
            workload: snap
                .workload
                .clone_box()
                .expect("snapshotted workload must support fork"),
            writes_issued: snap.writes_issued,
            seq: snap.seq,
            series: snap.series.clone(),
            sample_interval: snap.sample_interval,
            last_req: snap.last_req,
            next_sample: snap.next_sample,
            expected: snap.expected.clone(),
            verify_rng: snap.verify_rng.clone(),
            integrity_errors: snap.integrity_errors,
            retirements: snap.retirements,
            grants: snap.grants,
            lost_writes: snap.lost_writes,
            hard_cap: snap.hard_cap,
            fault_active: snap.fault_active,
            silent_seen: snap.silent_seen,
        }
    }

    /// Address-space size of the installed workload (the app space it was
    /// built against) — what a [`Self::replace_workload`] replacement
    /// must match.
    pub fn workload_len(&self) -> u64 {
        self.workload.len()
    }

    /// Replaces the address generator mid-run — the seed-divergence hook
    /// for forked futures. The new workload must cover the same
    /// application address space as the old one.
    ///
    /// # Panics
    ///
    /// Panics if `workload.len()` differs from the current workload's.
    pub fn replace_workload(&mut self, workload: Box<dyn Workload>) {
        assert_eq!(
            workload.len(),
            self.workload.len(),
            "replacement workload must cover the same address space"
        );
        self.workload = workload;
    }

    fn condition_met(&self, stop: StopCondition) -> bool {
        match stop {
            StopCondition::Writes(n) => self.writes_issued >= n,
            StopCondition::DeadFraction(f) => {
                // Cheap total-dead pre-check before the exact (O(N)) scan.
                let n = self.geo.num_blocks();
                self.controller.device().dead_blocks() as f64 / n as f64 >= f
                    && self.controller.visible_dead_fraction() >= f
            }
            StopCondition::UsableBelow(f) => self.usable_fraction() <= f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_trace::Benchmark;

    fn quick(scheme: SchemeKind, endurance: f64, seed: u64) -> Simulation {
        Simulation::builder()
            .num_blocks(1 << 12)
            .endurance_mean(endurance)
            .scheme(scheme)
            .seed(seed)
            .sample_interval(5_000)
            .build()
    }

    #[test]
    fn healthy_run_reaches_write_budget() {
        let mut sim = quick(SchemeKind::ReviverStartGap, 1e9, 1);
        let out = sim.run(StopCondition::Writes(20_000));
        assert_eq!(out.reason, StopReason::ConditionMet);
        assert_eq!(out.writes_issued, 20_000);
        assert_eq!(out.survival, 1.0);
        assert_eq!(out.usable, 1.0);
        assert!(!sim.series().is_empty());
    }

    #[test]
    fn ecc_only_loses_space_fast() {
        let mut sim = quick(SchemeKind::EccOnly, 2_000.0, 2);
        let out = sim.run(StopCondition::UsableBelow(0.9));
        assert_eq!(out.reason, StopReason::ConditionMet);
        assert!(out.usable <= 0.9);
        assert!(sim.retirements() > 0);
    }

    #[test]
    fn reviver_outlives_frozen_start_gap() {
        let stop = StopCondition::DeadFraction(0.10);
        let mut base = quick(SchemeKind::StartGapOnly, 2_000.0, 3);
        let base_out = base.run(stop);
        let mut wlr = quick(SchemeKind::ReviverStartGap, 2_000.0, 3);
        let wlr_out = wlr.run(stop);
        assert!(
            wlr_out.writes_issued > base_out.writes_issued,
            "WLR {} should outlast SG {}",
            wlr_out.writes_issued,
            base_out.writes_issued
        );
    }

    #[test]
    fn skewed_workload_accelerates_failure_without_wl() {
        let mk = |scheme| {
            Simulation::builder()
                .num_blocks(1 << 12)
                .endurance_mean(2_000.0)
                // Scaled ψ: preserves the paper's rotations-per-lifetime
                // ratio at scaled endurance (see EXPERIMENTS.md).
                .gap_interval(8)
                .scheme(scheme)
                .seed(4)
                .workload(Benchmark::Ocean.build(1 << 12, 4))
                .sample_interval(5_000)
                .build()
        };
        // The paper's lifetime metric is *lost space*: without revival
        // every block failure retires a whole 64-block page, so the
        // usable-space curve collapses far sooner than under WL-Reviver,
        // which pays one page per ~60 hidden failures and keeps leveling.
        let mut none = mk(SchemeKind::EccOnly);
        let none_out = none.run(StopCondition::UsableBelow(0.9));
        let mut wlr = mk(SchemeKind::ReviverStartGap);
        let wlr_out = wlr.run(StopCondition::UsableBelow(0.9));
        assert!(
            wlr_out.writes_issued > 2 * none_out.writes_issued,
            "leveling must delay space loss substantially: {} vs {}",
            wlr_out.writes_issued,
            none_out.writes_issued
        );
    }

    #[test]
    fn integrity_oracle_clean_under_reviver() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .scheme(SchemeKind::ReviverStartGap)
            .gap_interval(20)
            .seed(5)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.05));
        let errors = sim.verify_all();
        assert_eq!(errors, 0, "data corrupted under WL-Reviver");
        assert_eq!(sim.integrity_errors(), 0);
    }

    #[test]
    fn integrity_oracle_clean_under_reviver_sr() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .scheme(SchemeKind::ReviverSecurityRefresh)
            .sr_refresh_interval(20)
            .seed(6)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.04));
        assert_eq!(sim.verify_all(), 0, "data corrupted under WLR+SR");
    }

    #[test]
    fn freep_reserve_postpones_freeze() {
        let mk = |frac| {
            Simulation::builder()
                .num_blocks(1 << 10)
                .endurance_mean(2_000.0)
                .scheme(SchemeKind::Freep { reserve_frac: frac })
                .seed(7)
                .sample_interval(2_000)
                .build()
        };
        let mut none = mk(0.0);
        none.run(StopCondition::Writes(3_000_000));
        let mut some = mk(0.10);
        some.run(StopCondition::Writes(3_000_000));
        // With a reserve the scheme should still be leveling when the 0%
        // variant has long frozen (or at least have frozen later).
        let frozen_at = |sim: &Simulation| {
            sim.series()
                .points()
                .iter()
                .find(|p| !p.wl_active)
                .map(|p| p.writes)
        };
        match (frozen_at(&none), frozen_at(&some)) {
            (Some(a), Some(b)) => assert!(b > a, "reserve should delay freeze: {b} vs {a}"),
            (Some(_), None) => {} // reserve never froze: even better
            (None, _) => panic!("0% reserve never froze in 3M writes"),
        }
    }

    #[test]
    fn lls_acquires_chunks_and_survives() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 12)
            .endurance_mean(2_000.0)
            .scheme(SchemeKind::Lls)
            .seed(8)
            .sample_interval(5_000)
            .build();
        let out = sim.run(StopCondition::DeadFraction(0.05));
        assert!(out.writes_issued > 0);
        // LLS gives up software space for its chunks.
        assert!(sim.os().retired_pages() > 0, "no chunks were acquired");
        assert!(sim.usable_fraction() < 1.0);
    }

    #[test]
    fn usable_accounts_for_freep_reserve() {
        let sim = Simulation::builder()
            .num_blocks(1 << 12)
            .scheme(SchemeKind::Freep { reserve_frac: 0.10 })
            .seed(9)
            .build();
        // 10% pre-reserved: usable starts near 90%.
        let u = sim.usable_fraction();
        assert!((u - 0.90).abs() < 0.02, "initial usable {u}");
    }

    #[test]
    fn series_samples_are_recorded() {
        let mut sim = quick(SchemeKind::ReviverStartGap, 1e9, 10);
        sim.run(StopCondition::Writes(25_000));
        assert!(sim.series().len() >= 5);
        let last = sim.series().points().last().unwrap();
        assert_eq!(last.writes, 25_000);
        assert!((last.avg_access_time - 1.0).abs() < 0.05);
    }

    #[test]
    fn hard_cap_stops_runaway() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1e9)
            .scheme(SchemeKind::ReviverStartGap)
            .seed(11)
            .hard_cap(5_000)
            .build();
        let out = sim.run(StopCondition::DeadFraction(0.3));
        assert_eq!(out.reason, StopReason::HardCap);
        assert_eq!(out.writes_issued, 5_000);
    }

    #[test]
    fn no_switching_mode_preserves_data_with_longer_chains() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .gap_interval(10)
            .scheme(SchemeKind::ReviverStartGap)
            .reviver_chain_switching(false)
            .seed(15)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.10));
        assert_eq!(sim.verify_all(), 0, "ablation mode corrupted data");
        let ctl = sim.controller().as_reviver().unwrap();
        let max_chain = ctl.chain_lengths().into_iter().max().unwrap_or(0);
        assert!(
            max_chain >= 2,
            "no-switching mode should grow chains (max {max_chain})"
        );
    }

    #[test]
    fn switching_mode_keeps_chains_at_one_step() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .gap_interval(10)
            .scheme(SchemeKind::ReviverStartGap)
            .seed(15)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.10));
        let ctl = sim.controller().as_reviver().unwrap();
        assert!(ctl.chain_lengths().into_iter().all(|l| l <= 1));
    }

    #[test]
    fn proactive_acquisition_never_fakes_reports() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .gap_interval(5)
            .scheme(SchemeKind::ReviverStartGap)
            .reviver_proactive(true)
            .seed(16)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.10));
        let ctl = sim.controller().as_reviver().unwrap();
        assert_eq!(
            ctl.counters().fake_reports,
            0,
            "proactive mode must not sacrifice writes"
        );
        assert!(ctl.counters().suspensions > 0, "suspensions still happen");
        assert_eq!(sim.verify_all(), 0);
    }

    #[test]
    fn reboot_preserves_data_and_revival() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .gap_interval(10)
            .scheme(SchemeKind::ReviverStartGap)
            .seed(20)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        // Wear in deep enough that links and retired pages exist.
        sim.run(StopCondition::DeadFraction(0.05));
        let links_before = sim.controller().as_reviver().unwrap().linked_blocks();
        assert!(links_before > 20, "need real state before rebooting");
        for round in 1..=3 {
            if !sim.controller().suspended() {
                sim.simulate_reboot();
            }
            assert_eq!(sim.verify_all(), 0, "data lost across reboot {round}");
            let target = sim.writes_issued() + 30_000;
            sim.run(StopCondition::Writes(target));
            assert_eq!(sim.verify_all(), 0, "corruption after reboot {round}");
        }
        let ctl = sim.controller().as_reviver().unwrap();
        assert_eq!(ctl.counters().reboots, 3);
        assert!(
            ctl.linked_blocks() >= links_before,
            "links must persist across power cycles"
        );
    }

    #[test]
    fn tiled_start_gap_revives_cleanly() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .gap_interval(10)
            .sg_tiles(4)
            .scheme(SchemeKind::ReviverTiledStartGap)
            .seed(18)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.08));
        assert_eq!(sim.verify_all(), 0, "tiled SG corrupted data");
        assert!(sim.controller().device().dead_blocks() > 50);
    }

    #[test]
    fn two_level_sr_revives_cleanly() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .sr_refresh_interval(10)
            .scheme(SchemeKind::ReviverTwoLevelSecurityRefresh)
            .seed(19)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.06));
        assert_eq!(sim.verify_all(), 0, "two-level SR corrupted data");
    }

    #[test]
    fn table_randomizer_variant_works() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1_500.0)
            .gap_interval(10)
            .scheme(SchemeKind::ReviverStartGap)
            .sg_randomizer(wlr_wl::RandomizerKind::Table { seed: 3 })
            .seed(17)
            .verify_integrity(true)
            .check_invariants(true)
            .sample_interval(2_000)
            .build();
        sim.run(StopCondition::DeadFraction(0.06));
        assert_eq!(sim.verify_all(), 0);
    }

    #[test]
    #[should_panic(expected = "must equal the application space")]
    fn mismatched_workload_panics() {
        Simulation::builder()
            .num_blocks(1 << 12)
            .workload(wlr_trace::UniformWorkload::new(17, 0))
            .build();
    }

    /// Regression for the oracle's verification-order contract: the
    /// incrementally-maintained key list must at every point equal the
    /// seed-state engine's collect-then-`sort_unstable` of the key set,
    /// or verification picks (and thus whole oracle runs) silently
    /// diverge across engines.
    #[test]
    fn oracle_key_list_tracks_sorted_key_set() {
        use std::collections::HashMap;
        let mut oracle = Oracle::with_capacity(512);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = Rng::stream(0x0AC1E, 0);
        for i in 0..20_000u64 {
            let k = rng.gen_range(512);
            if rng.gen_range(4) == 0 {
                oracle.remove(k);
                model.remove(&k);
            } else {
                oracle.insert(k, i);
                model.insert(k, i);
            }
            if i % 997 == 0 {
                let mut sorted: Vec<u64> = model.keys().copied().collect();
                sorted.sort_unstable();
                assert_eq!(oracle.keys, sorted, "key list diverged at op {i}");
            }
        }
        assert_eq!(oracle.map.len(), model.len());
        for (k, &v) in &model {
            assert_eq!(oracle.map.get(*k), Some(&v));
        }
    }

    /// Externally-driven batches must be bit-identical to the same
    /// addresses flowing through the simulation's own workload, and
    /// invariant to how the sequence is partitioned into batches — the
    /// contract the multi-bank front-end's determinism rests on.
    #[test]
    fn run_batch_matches_workload_driven_run() {
        let mk = || {
            Simulation::builder()
                .num_blocks(1 << 10)
                .endurance_mean(1_500.0)
                .gap_interval(10)
                .scheme(SchemeKind::ReviverStartGap)
                .seed(33)
                .sample_interval(2_000)
                .build()
        };
        let mut on_workload = mk();
        on_workload.run(StopCondition::Writes(40_000));

        // Reproduce the default workload's stream out-of-band.
        let app_blocks = mk().os().app_blocks();
        let mut src = wlr_trace::UniformWorkload::new(app_blocks, 33);
        let addrs: Vec<AppAddr> = (0..40_000).map(|_| src.next_write()).collect();

        let mut whole = mk();
        assert_eq!(whole.run_batch(&addrs), BatchStatus::Completed);
        assert_eq!(whole.fingerprint(), on_workload.fingerprint());
        assert_eq!(whole.writes_issued(), on_workload.writes_issued());

        // Any partitioning of the same sequence is invisible.
        let mut chunked = mk();
        for chunk in addrs.chunks(777) {
            assert_eq!(chunked.run_batch(chunk), BatchStatus::Completed);
        }
        assert_eq!(chunked.fingerprint(), whole.fingerprint());
        assert_eq!(chunked.series().len(), whole.series().len());
    }

    #[test]
    fn run_batch_respects_hard_cap() {
        let mut sim = Simulation::builder()
            .num_blocks(1 << 10)
            .endurance_mean(1e9)
            .scheme(SchemeKind::ReviverStartGap)
            .seed(34)
            .hard_cap(1_000)
            .build();
        let addrs: Vec<AppAddr> = (0..2_000).map(|i| AppAddr::new(i % 64)).collect();
        assert_eq!(
            sim.run_batch(&addrs),
            BatchStatus::HardCap { consumed: 1_000 }
        );
        assert_eq!(sim.writes_issued(), 1_000);
    }

    #[test]
    fn fingerprint_distinguishes_different_histories() {
        let mk = |seed| {
            Simulation::builder()
                .num_blocks(1 << 10)
                .endurance_mean(1_500.0)
                .scheme(SchemeKind::ReviverStartGap)
                .seed(seed)
                .build()
        };
        let mut a = mk(1);
        let mut b = mk(1);
        let mut c = mk(2);
        a.run(StopCondition::Writes(30_000));
        b.run(StopCondition::Writes(30_000));
        c.run(StopCondition::Writes(30_000));
        assert_eq!(a.fingerprint(), b.fingerprint(), "same history must match");
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "different seeds must differ"
        );
    }

    /// The batched engine must sample at exactly the same write counts as
    /// per-write `is_multiple_of` checking, across every stop kind.
    #[test]
    fn batched_sampling_lands_on_exact_boundaries() {
        for stop in [
            StopCondition::Writes(23_000),
            StopCondition::DeadFraction(0.05),
            StopCondition::UsableBelow(0.95),
        ] {
            let mut sim = Simulation::builder()
                .num_blocks(1 << 10)
                .endurance_mean(1_500.0)
                .scheme(SchemeKind::ReviverStartGap)
                .gap_interval(10)
                .seed(21)
                .sample_interval(3_000)
                .build();
            let out = sim.run(stop);
            for p in sim.series().points() {
                assert!(
                    p.writes % 3_000 == 0 || p.writes == out.writes_issued,
                    "off-boundary sample at {} under {stop:?}",
                    p.writes
                );
            }
            assert!(sim.series().len() >= 2, "no samples under {stop:?}");
        }
    }
}
