//! Persistent controller metadata and the crash-recovery report.
//!
//! On real hardware the revival framework's durable state lives in the
//! PCM itself: each failed block stores its virtual-shadow pointer (plus a
//! status bit), retired pages are recorded in a bitmap, and an in-flight
//! migration's lines sit in a small battery-backed journal so a power cut
//! mid-migration loses nothing. [`PersistedMeta`] models exactly that
//! durable subset — the controller mirrors every *committed* metadata
//! write into it, and [`crate::reviver::RevivedController::recover`]
//! rebuilds all volatile tables (inverse pointers, the spare-PA pool,
//! pointer-section layout, the remap cache) from it after a simulated
//! reboot.
//!
//! The mirror is updated only when the corresponding device write actually
//! commits (i.e. the device was powered): a write the injector dropped
//! leaves the mirror at its pre-crash value, which is how torn states —
//! a half-completed virtual-shadow switch, a link whose pointer write
//! never landed — arise and get exercised.

use std::collections::VecDeque;
use wlr_base::dense::DenseMap;
use wlr_base::{Da, Pa};

/// Magic/version tag leading a serialized [`PersistedMeta`] image.
const META_MAGIC: u64 = 0x574C_524D_4554_4131; // "WLRMETA1"

/// The serialized image was torn or corrupt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornMeta(pub String);

impl core::fmt::Display for TornMeta {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "torn persisted metadata: {}", self.0)
    }
}

impl std::error::Error for TornMeta {}

/// The controller state that survives a power cut.
#[derive(Debug, Clone)]
pub struct PersistedMeta {
    /// Failed DA → virtual shadow PA, as actually committed to the failed
    /// blocks themselves (§III-B: the pointer is written *into* the dead
    /// block).
    pub ptr: DenseMap<Pa>,
    /// The retired-page bitmap (§III-A).
    pub retired: Vec<bool>,
    /// In-flight migration lines `(post-mapping target, data)` — the
    /// battery-backed migration journal. Replayed by recovery.
    pub journal: VecDeque<(Da, u64)>,
}

impl PersistedMeta {
    /// Empty metadata for a device of `total_blocks` blocks and
    /// `num_pages` software-visible pages.
    pub fn new(total_blocks: u64, num_pages: u64) -> Self {
        PersistedMeta {
            ptr: DenseMap::with_capacity(total_blocks),
            retired: vec![false; num_pages as usize],
            journal: VecDeque::new(),
        }
    }

    /// Serializes to a little-endian `u64` image (the layout a firmware
    /// scan of the PCM metadata region would produce).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut words: Vec<u64> = Vec::with_capacity(
            5 + 2 * self.ptr.len() + self.retired.len().div_ceil(64) + 2 * self.journal.len(),
        );
        words.push(META_MAGIC);
        words.push(self.ptr.capacity());
        words.push(self.ptr.len() as u64);
        words.push(self.retired.len() as u64);
        words.push(self.journal.len() as u64);
        for (da, &v) in self.ptr.iter() {
            words.push(da);
            words.push(v.index());
        }
        let mut word = 0u64;
        for (i, &r) in self.retired.iter().enumerate() {
            if r {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                words.push(word);
                word = 0;
            }
        }
        if !self.retired.len().is_multiple_of(64) {
            words.push(word);
        }
        for &(da, tag) in &self.journal {
            words.push(da.index());
            words.push(tag);
        }
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Parses a serialized image, rejecting torn (truncated or
    /// inconsistent) data — the graceful-suspension path for a corrupt
    /// metadata region.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TornMeta> {
        if !bytes.len().is_multiple_of(8) {
            return Err(TornMeta("image is not a whole number of words".into()));
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        let mut it = words.iter().copied();
        let mut next = |what: &str| {
            it.next()
                .ok_or_else(|| TornMeta(format!("truncated {what}")))
        };
        if next("magic")? != META_MAGIC {
            return Err(TornMeta("bad magic".into()));
        }
        let cap = next("ptr capacity")?;
        let ptr_len = next("ptr length")?;
        let pages = next("page count")? as usize;
        let journal_len = next("journal length")?;
        let mut ptr = DenseMap::with_capacity(cap);
        for _ in 0..ptr_len {
            let da = next("ptr key")?;
            let v = next("ptr value")?;
            if da >= cap || v >= cap {
                return Err(TornMeta(format!("pointer {da}->{v} outside device")));
            }
            ptr.insert(da, Pa::new(v));
        }
        let mut retired = vec![false; pages];
        for chunk in 0..pages.div_ceil(64) {
            let word = next("retired bitmap")?;
            for bit in 0..64 {
                let i = chunk * 64 + bit;
                if i < pages {
                    retired[i] = word & (1 << bit) != 0;
                }
            }
        }
        let mut journal = VecDeque::with_capacity(journal_len as usize);
        for _ in 0..journal_len {
            let da = next("journal target")?;
            let tag = next("journal tag")?;
            if da >= cap {
                return Err(TornMeta(format!("journal target {da} outside device")));
            }
            journal.push_back((Da::new(da), tag));
        }
        if it.next().is_some() {
            return Err(TornMeta("trailing garbage".into()));
        }
        Ok(PersistedMeta {
            ptr,
            retired,
            journal,
        })
    }
}

/// What a [`crate::reviver::RevivedController::recover`] pass did — the
/// recovery-cost record the robustness bench aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// PCM blocks scanned to rebuild volatile state (retired-page
    /// sections plus every persisted link).
    pub blocks_scanned: u64,
    /// Links rebuilt from persisted failed-block pointers.
    pub links_recovered: u64,
    /// Persisted pointers discarded as torn (their grant never committed,
    /// or their block is not actually dead).
    pub torn_links_dropped: u64,
    /// Half-completed virtual-shadow switches detected (two blocks
    /// claiming one shadow) and repaired by reassigning the orphan.
    pub torn_switch_repairs: u64,
    /// Inverse-pointer entries rebuilt.
    pub inv_rebuilt: u64,
    /// Spare PAs recovered by scanning retired pages.
    pub spares_recovered: u64,
    /// Journaled migration lines replayed.
    pub migration_replays: u64,
    /// Unlinked software-accessible dead blocks healed with a spare.
    pub healed_links: u64,
    /// Such blocks left unhealed for lack of spares (they heal lazily on
    /// the next touch, or via a failure report).
    pub unhealed_dead: u64,
    /// Whether the controller came back suspended (replay needed a spare
    /// that does not exist yet).
    pub suspended: bool,
    /// Whether an unrepairable torn state forced a link to be dropped
    /// (the block re-enters the undiscovered-failure path).
    pub degraded: bool,
}

impl RecoveryReport {
    /// Accumulates another report (bench aggregation across crash points).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.blocks_scanned += other.blocks_scanned;
        self.links_recovered += other.links_recovered;
        self.torn_links_dropped += other.torn_links_dropped;
        self.torn_switch_repairs += other.torn_switch_repairs;
        self.inv_rebuilt += other.inv_rebuilt;
        self.spares_recovered += other.spares_recovered;
        self.migration_replays += other.migration_replays;
        self.healed_links += other.healed_links;
        self.unhealed_dead += other.unhealed_dead;
        self.suspended |= other.suspended;
        self.degraded |= other.degraded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PersistedMeta {
        let mut m = PersistedMeta::new(300, 5);
        m.ptr.insert(3, Pa::new(130));
        m.ptr.insert(250, Pa::new(131));
        m.retired[2] = true;
        m.retired[4] = true;
        m.journal.push_back((Da::new(9), 777));
        m.journal.push_back((Da::new(10), 778));
        m
    }

    #[test]
    fn round_trips_through_bytes() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = PersistedMeta::from_bytes(&bytes).expect("clean image parses");
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.retired, m.retired);
        assert_eq!(back.journal, m.journal);
        assert_eq!(
            back.ptr.iter().collect::<Vec<_>>(),
            m.ptr.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_meta_round_trips() {
        let m = PersistedMeta::new(64, 1);
        let back = PersistedMeta::from_bytes(&m.to_bytes()).unwrap();
        assert!(back.ptr.is_empty());
        assert_eq!(back.retired, vec![false]);
        assert!(back.journal.is_empty());
    }

    #[test]
    fn truncated_image_is_torn() {
        let bytes = sample().to_bytes();
        for cut in [0, 8, 16, bytes.len() - 8, bytes.len() - 1] {
            assert!(
                PersistedMeta::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn bad_magic_and_garbage_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(PersistedMeta::from_bytes(&bytes).is_err());
        let mut ok = sample().to_bytes();
        ok.extend_from_slice(&[0u8; 8]);
        assert!(
            PersistedMeta::from_bytes(&ok).is_err(),
            "trailing garbage must be rejected"
        );
    }

    #[test]
    fn out_of_range_pointer_rejected() {
        let mut m = PersistedMeta::new(300, 5);
        m.ptr.insert(3, Pa::new(130));
        let mut bytes = m.to_bytes();
        // Patch the pointer value (word 6: magic, cap, len, pages,
        // journal, key, value) to exceed the capacity.
        let off = 6 * 8;
        bytes[off..off + 8].copy_from_slice(&10_000u64.to_le_bytes());
        let err = PersistedMeta::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("outside device"), "{err}");
    }

    #[test]
    fn report_absorb_accumulates() {
        let mut a = RecoveryReport {
            blocks_scanned: 10,
            links_recovered: 2,
            ..Default::default()
        };
        let b = RecoveryReport {
            blocks_scanned: 5,
            migration_replays: 3,
            suspended: true,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.blocks_scanned, 15);
        assert_eq!(a.links_recovered, 2);
        assert_eq!(a.migration_replays, 3);
        assert!(a.suspended);
        assert!(!a.degraded);
    }
}
