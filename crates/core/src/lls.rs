//! The LLS baseline (Jiang et al., TACO 2013), as characterized in §II
//! and §IV-D of the WL-Reviver paper.
//!
//! LLS also keeps wear leveling alive across failures, but differs from
//! WL-Reviver in exactly the four ways the paper measures:
//!
//! 1. **Explicit OS support**: reserved space is acquired from the OS in
//!    large *chunks* (64 MB on the paper's 1 GB chip — 1/16 of the space;
//!    scaled here to 1/16 of the block count), emitted as
//!    [`WriteResult::RequestPages`].
//! 2. **Salvage groups**: a failed block may only use a backup block of
//!    its own group (`da mod groups`), so one hot group exhausts its slots
//!    while others idle — forcing early chunk acquisitions and wasting
//!    reserved space.
//! 3. **Adapted randomization**: integrating Start-Gap requires
//!    restricting its static randomizer to map each half of the PA space
//!    into the other half ([`wlr_wl::HalfRestrictedRandomizer`]), which
//!    keeps concentrated writes from spreading chip-wide — the cause of
//!    LLS's shorter lifetime in Figure 8.
//! 4. **Bitmap indirection**: each access to a failed block reads the
//!    failed block, a bitmap block, and the backup — three PCM accesses
//!    uncached, versus WL-Reviver's two.
//!
//! Backup blocks live outside the wear-leveling domain (the paper: idle
//! reserved blocks "do not participate in wear leveling"), modeled here as
//! a private device region beyond the scheme's DA space; acquiring a chunk
//! simultaneously asks the OS to retire an equal amount of software space,
//! which is where the usable-space staircase of Figure 8 comes from.

use crate::cache::RemapCache;
use crate::controller::{Controller, RequestStats, WriteResult};
use std::collections::VecDeque;
use wlr_base::dense::DenseMap;
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::{PcmDevice, WriteOutcome};
use wlr_wl::{Migration, WearLeveler};

/// Event counters for the LLS baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlsCounters {
    /// Failed blocks linked to backup slots.
    pub links: u64,
    /// Chunks acquired from the OS.
    pub chunks: u64,
    /// Failures exposed to the OS after all chunks were consumed.
    pub reports: u64,
    /// Reads of blocks whose data was lost with the failure.
    pub garbage_reads: u64,
}

/// Builder for [`LlsController`].
#[derive(Debug)]
pub struct LlsControllerBuilder {
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    chunk_blocks: u64,
    max_chunks: u64,
    groups: u64,
    cache_bytes: Option<usize>,
}

impl LlsControllerBuilder {
    /// Reservation chunk size in blocks (default: 1/16 of the space).
    pub fn chunk_blocks(mut self, blocks: u64) -> Self {
        self.chunk_blocks = blocks;
        self
    }

    /// Maximum chunks LLS may acquire (default 16 — the whole space).
    pub fn max_chunks(mut self, chunks: u64) -> Self {
        self.max_chunks = chunks;
        self
    }

    /// Number of salvage groups (default 64).
    pub fn groups(mut self, groups: u64) -> Self {
        self.groups = groups;
        self
    }

    /// Attaches a remap cache.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Constructs the controller.
    ///
    /// # Panics
    ///
    /// Panics on mismatched geometry, a chunk size that is not a whole
    /// number of pages, or a device lacking the backup region.
    pub fn build(self) -> LlsController {
        let geo = *self.device.geometry();
        assert_eq!(
            self.wl.len(),
            geo.num_blocks(),
            "wear-leveler PA space must match the geometry"
        );
        assert!(self.chunk_blocks > 0, "chunk size must be nonzero");
        assert_eq!(
            self.chunk_blocks % geo.blocks_per_page(),
            0,
            "chunks must be whole pages"
        );
        assert!(self.groups > 0, "need at least one salvage group");
        let backup_base = self.wl.total_das();
        assert!(
            self.device.total_blocks() >= backup_base + self.chunk_blocks * self.max_chunks,
            "device lacks the backup region"
        );
        let total = self.device.total_blocks();
        LlsController {
            geo,
            device: self.device,
            wl: self.wl,
            chunk_blocks: self.chunk_blocks,
            max_chunks: self.max_chunks,
            groups: self.groups,
            backup_base,
            chunks_acquired: 0,
            group_free: vec![VecDeque::new(); self.groups as usize],
            links: DenseMap::with_capacity(total),
            frozen: false,
            chunk_wanted: false,
            next_victim_page: geo.num_pages(),
            cache: self.cache_bytes.map(RemapCache::with_capacity_bytes),
            req: RequestStats::default(),
            counters: LlsCounters::default(),
        }
    }
}

/// The LLS controller (see module docs).
#[derive(Debug)]
pub struct LlsController {
    geo: Geometry,
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    chunk_blocks: u64,
    max_chunks: u64,
    groups: u64,
    backup_base: u64,
    chunks_acquired: u64,
    /// Free backup slots per salvage group.
    group_free: Vec<VecDeque<Da>>,
    /// failed DA → backup DA.
    links: DenseMap<Da>,
    frozen: bool,
    /// Set when a failure needs a chunk; the next write surfaces the
    /// request to the OS.
    chunk_wanted: bool,
    /// Next software page to hand to the OS when reserving a chunk
    /// (descending from the top of the PA space).
    next_victim_page: u64,
    cache: Option<RemapCache>,
    req: RequestStats,
    counters: LlsCounters,
}

impl Clone for LlsController {
    fn clone(&self) -> Self {
        LlsController {
            geo: self.geo,
            device: self.device.clone(),
            wl: self.wl.clone_box(),
            chunk_blocks: self.chunk_blocks,
            max_chunks: self.max_chunks,
            groups: self.groups,
            backup_base: self.backup_base,
            chunks_acquired: self.chunks_acquired,
            group_free: self.group_free.clone(),
            links: self.links.clone(),
            frozen: self.frozen,
            chunk_wanted: self.chunk_wanted,
            next_victim_page: self.next_victim_page,
            cache: self.cache.clone(),
            req: self.req,
            counters: self.counters,
        }
    }
}

impl LlsController {
    /// Starts building an LLS controller; `wl` should use
    /// [`wlr_wl::RandomizerKind::HalfRestricted`] per the paper.
    pub fn builder(device: PcmDevice, wl: Box<dyn WearLeveler>) -> LlsControllerBuilder {
        let blocks = device.geometry().num_blocks();
        let bpp = device.geometry().blocks_per_page();
        let chunk_blocks = (blocks / 16).max(bpp);
        LlsControllerBuilder {
            device,
            wl,
            chunk_blocks,
            max_chunks: (blocks / chunk_blocks).min(16),
            groups: 64,
            cache_bytes: None,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> LlsCounters {
        self.counters
    }

    /// Chunks acquired so far.
    pub fn chunks_acquired(&self) -> u64 {
        self.chunks_acquired
    }

    /// Whether wear leveling has been crippled (all chunks consumed and a
    /// failure left unhidden).
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Read access to the wear-leveler (for inspection and tooling).
    pub fn wear_leveler(&self) -> &dyn WearLeveler {
        self.wl.as_ref()
    }

    /// Force-fails device block `da` without wearing it (Table II setup).
    pub fn inject_dead(&mut self, da: Da) {
        self.device.inject_dead(da);
    }

    /// The page list the OS must retire to grant the next chunk, or
    /// `None` if LLS is out of chunks (or out of software pages).
    fn next_chunk_pages(&self) -> Option<Vec<PageId>> {
        if self.chunks_acquired >= self.max_chunks {
            return None;
        }
        let pages_per_chunk = self.chunk_blocks / self.geo.blocks_per_page();
        if self.next_victim_page < pages_per_chunk {
            return None;
        }
        Some(
            (self.next_victim_page - pages_per_chunk..self.next_victim_page)
                .map(PageId::new)
                .collect(),
        )
    }

    /// Commits the chunk after the OS granted its pages: backup slots are
    /// dealt round-robin into the salvage groups.
    fn commit_chunk(&mut self) {
        let start = self.backup_base + self.chunks_acquired * self.chunk_blocks;
        for i in 0..self.chunk_blocks {
            let group = (i % self.groups) as usize;
            self.group_free[group].push_back(Da::new(start + i));
        }
        self.chunks_acquired += 1;
        let pages_per_chunk = self.chunk_blocks / self.geo.blocks_per_page();
        self.next_victim_page -= pages_per_chunk;
        self.chunk_wanted = false;
        self.counters.chunks += 1;
    }

    fn group_of(&self, da: Da) -> usize {
        (da.index() % self.groups) as usize
    }

    /// Resolves a failed block's backup. A cache miss costs two extra PCM
    /// reads: the failed block and the bitmap.
    fn resolve_link(&mut self, da: Da, acct: bool) -> Option<Da> {
        if let Some(c) = &mut self.cache {
            if let Some(b) = c.get(da.index()) {
                return Some(Da::new(b));
            }
        }
        let b = self.links.get(da.index()).copied();
        if let Some(b) = b {
            self.device.read(da); // the failed block
            self.device.read(Da::new(self.backup_base)); // the bitmap
            if acct {
                self.req.accesses += 2;
            }
            if let Some(c) = &mut self.cache {
                c.insert(da.index(), b.index());
            }
        }
        b
    }

    /// Takes a free backup slot for `group`. `Err(true)` = a chunk is
    /// needed (retryable after the OS grants it); `Err(false)` = LLS is
    /// out of reservable space.
    fn take_slot(&mut self, group: usize) -> Result<Da, bool> {
        if let Some(slot) = self.group_free[group].pop_front() {
            return Ok(slot);
        }
        if self.next_chunk_pages().is_some() {
            self.chunk_wanted = true;
            Err(true)
        } else {
            Err(false)
        }
    }

    /// Links `target` to a fresh same-group backup slot and returns it.
    fn link_to_slot(&mut self, target: Da, group: usize) -> Result<Da, bool> {
        let slot = self.take_slot(group)?;
        self.links.insert(target.index(), slot);
        self.device.write(target); // pointer + bitmap update
        if let Some(c) = &mut self.cache {
            c.insert(target.index(), slot.index());
        }
        self.counters.links += 1;
        Ok(slot)
    }

    /// Writes to the block the mapping designates. `Err(true)` = a chunk
    /// is needed (retryable); `Err(false)` = unhideable failure.
    fn write_da(&mut self, da: Da, tag: u64, acct: bool) -> Result<(), bool> {
        let mut target = da;
        let group = self.group_of(da);
        if self.device.is_dead(target) {
            match self.resolve_link(target, acct) {
                Some(b) => target = b,
                // Dead and unlinked: the failure was discovered earlier
                // while no slot was available; link it now.
                None => target = self.link_to_slot(target, group)?,
            }
        }
        let mut fuel = self.chunk_blocks * self.max_chunks + 2;
        loop {
            assert!(fuel > 0, "backup chain failed to converge at {da}");
            fuel -= 1;
            match self.device.write_tagged(target, tag) {
                WriteOutcome::Ok => {
                    if acct {
                        self.req.accesses += 1;
                    }
                    return Ok(());
                }
                WriteOutcome::AlreadyDead => match self.resolve_link(target, acct) {
                    Some(next) => target = next,
                    None => target = self.link_to_slot(target, group)?,
                },
                WriteOutcome::NewFailure => {
                    if acct {
                        self.req.accesses += 1;
                    }
                    // A fresh failure needs a same-group backup slot.
                    target = self.link_to_slot(target, group)?;
                }
                // Injected power loss: drop the write, expose nothing.
                WriteOutcome::Lost => return Err(false),
            }
        }
    }

    fn migration_read(&mut self, src: Da) -> u64 {
        if !self.device.is_dead(src) {
            self.device.read(src);
            return self.device.tag(src);
        }
        match self.follow_links(src, false) {
            Some(b) => {
                self.device.read(b);
                self.device.tag(b)
            }
            None => {
                self.counters.garbage_reads += 1;
                self.device.read(src);
                self.device.tag(src)
            }
        }
    }

    /// Walks the backup chain from dead block `da` to the first healthy
    /// backup, or `None` if the chain dead-ends.
    fn follow_links(&mut self, da: Da, acct: bool) -> Option<Da> {
        let mut cur = da;
        let mut fuel = self.links.len() + 2;
        while self.device.is_dead(cur) {
            if fuel == 0 {
                return None;
            }
            fuel -= 1;
            cur = self.resolve_link(cur, acct)?;
        }
        Some(cur)
    }

    fn run_migrations(&mut self) {
        while !self.frozen && !self.chunk_wanted {
            let Some(m) = self.wl.pending() else { break };
            match m {
                Migration::Copy { src, dst } => {
                    let t = self.migration_read(src);
                    match self.write_da(dst, t, false) {
                        Ok(()) => self.wl.complete_migration(),
                        Err(true) => return, // chunk_wanted set; retry later
                        Err(false) => {
                            self.frozen = true;
                            return;
                        }
                    }
                }
                Migration::Swap { a, b } => {
                    let ta = self.migration_read(a);
                    let tb = self.migration_read(b);
                    self.wl.complete_migration();
                    let r1 = self.write_da(b, ta, false);
                    let r2 = self.write_da(a, tb, false);
                    if matches!(r1, Err(false)) || matches!(r2, Err(false)) {
                        self.frozen = true;
                        return;
                    }
                    if r1.is_err() || r2.is_err() {
                        return;
                    }
                }
            }
        }
    }
}

impl Controller for LlsController {
    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn read(&mut self, pa: Pa) -> u64 {
        self.req.requests += 1;
        let da = self.wl.map(pa);
        if !self.device.is_dead(da) {
            self.device.read(da);
            self.req.accesses += 1;
            return self.device.tag(da);
        }
        match self.follow_links(da, true) {
            Some(b) => {
                self.device.read(b);
                self.req.accesses += 1;
                self.device.tag(b)
            }
            None => {
                self.counters.garbage_reads += 1;
                self.device.read(da);
                self.req.accesses += 1;
                0
            }
        }
    }

    fn write(&mut self, pa: Pa, tag: u64) -> WriteResult {
        self.req.requests += 1;
        if self.chunk_wanted {
            // Surface the pending chunk request before anything else.
            if let Some(pages) = self.next_chunk_pages() {
                return WriteResult::RequestPages(pages);
            }
            self.chunk_wanted = false;
        }
        let da = self.wl.map(pa);
        match self.write_da(da, tag, true) {
            Ok(()) => {
                if !self.frozen {
                    self.wl.record_write(pa);
                    self.run_migrations();
                }
                WriteResult::Ok
            }
            Err(true) => {
                // Need a chunk; the write was not serviced — the simulator
                // retries it after granting the pages.
                let pages = self
                    .next_chunk_pages()
                    .expect("chunk_wanted implies availability");
                WriteResult::RequestPages(pages)
            }
            Err(false) => {
                self.frozen = true;
                self.counters.reports += 1;
                WriteResult::ReportFailure(pa)
            }
        }
    }

    fn on_page_retired(&mut self, page: PageId) {
        // Chunk grants arrive as retirements of the requested pages; the
        // chunk commits when its last page lands.
        if self.chunk_wanted {
            let pages_per_chunk = self.chunk_blocks / self.geo.blocks_per_page();
            let lo = self.next_victim_page - pages_per_chunk;
            if page.index() >= lo && page.index() < self.next_victim_page && page.index() == lo {
                self.commit_chunk();
            }
        }
        // Failure-triggered retirements (post-freeze) carry no benefit.
    }

    fn device(&self) -> &PcmDevice {
        &self.device
    }

    fn device_mut(&mut self) -> &mut PcmDevice {
        &mut self.device
    }

    fn reserved_blocks(&self) -> u64 {
        // The space cost of acquired chunks is already visible as retired
        // software pages; counting it here would double-book it.
        0
    }

    fn wl_active(&self) -> bool {
        !self.frozen
    }

    fn request_stats(&self) -> RequestStats {
        self.req
    }

    fn reset_request_stats(&mut self) {
        self.req = RequestStats::default();
    }

    fn as_lls(&self) -> Option<&LlsController> {
        Some(self)
    }

    fn fork_box(&self) -> Option<Box<dyn Controller>> {
        Some(Box::new(self.clone()))
    }

    fn label(&self) -> String {
        format!("{}-SG-LLS", self.device.ecc_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_pcm::Ecp;
    use wlr_wl::{RandomizerKind, StartGap};

    const N: u64 = 512; // 8 pages

    fn geo() -> Geometry {
        Geometry::builder().num_blocks(N).build().unwrap()
    }

    fn make(endurance: f64, psi: u64, seed: u64) -> LlsController {
        let device = PcmDevice::builder(geo())
            .extra_blocks(1 + N) // gap + full backup region (16 chunks of N/16)
            .endurance_mean(endurance)
            .seed(seed)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = StartGap::builder(N)
            .gap_interval(psi)
            .randomizer(RandomizerKind::HalfRestricted { seed })
            .build();
        LlsController::builder(device, Box::new(wl))
            .groups(8)
            .build()
    }

    /// Drives a write, granting chunk requests like the simulator would.
    fn os_write(ctl: &mut LlsController, pa: Pa, tag: u64) -> WriteResult {
        for _ in 0..4 {
            match ctl.write(pa, tag) {
                WriteResult::RequestPages(pages) => {
                    for p in pages {
                        ctl.on_page_retired(p);
                    }
                }
                other => return other,
            }
        }
        panic!("chunk grant loop did not settle");
    }

    #[test]
    fn healthy_round_trip() {
        let mut ctl = make(1e9, 5, 1);
        for i in 0..N {
            assert_eq!(ctl.write(Pa::new(i), i + 1), WriteResult::Ok);
        }
        for i in 0..N {
            assert_eq!(ctl.read(Pa::new(i)), i + 1);
        }
    }

    #[test]
    fn first_failure_requests_a_chunk() {
        let mut ctl = make(300.0, 1_000_000, 2);
        let pa = Pa::new(9);
        let mut requested = false;
        for i in 0..30_000u64 {
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::RequestPages(pages) => {
                    // One chunk = chunk_blocks/bpp pages from the top.
                    assert_eq!(
                        pages.len() as u64,
                        (N / 16) / 64 + u64::from(!(N / 16).is_multiple_of(64))
                    );
                    for p in pages {
                        ctl.on_page_retired(p);
                    }
                    requested = true;
                }
                other => panic!("should request, got {other:?}"),
            }
            if requested && ctl.counters().links > 0 {
                break;
            }
        }
        assert!(requested);
        assert_eq!(ctl.chunks_acquired(), 1);
        assert!(ctl.counters().links > 0);
        assert!(ctl.wl_active(), "LLS survives failures");
    }

    #[test]
    fn linked_block_round_trips() {
        let mut ctl = make(300.0, 1_000_000, 3);
        let pa = Pa::new(9);
        let mut last = 0;
        for i in 1..30_000u64 {
            match os_write(&mut ctl, pa, i) {
                WriteResult::Ok => last = i,
                other => panic!("unexpected {other:?}"),
            }
            if ctl.counters().links > 0 {
                break;
            }
        }
        assert!(ctl.counters().links > 0);
        assert_eq!(ctl.read(pa), last);
    }

    #[test]
    fn failed_access_costs_three_uncached() {
        let mut ctl = make(300.0, 1_000_000, 4);
        let pa = Pa::new(9);
        for i in 0..30_000u64 {
            os_write(&mut ctl, pa, i);
            if ctl.counters().links > 0 {
                break;
            }
        }
        ctl.reset_request_stats();
        ctl.read(pa);
        assert_eq!(
            ctl.request_stats().accesses,
            3,
            "failed block + bitmap + backup"
        );
    }

    #[test]
    fn cache_cuts_failed_access_to_one() {
        let device = PcmDevice::builder(geo())
            .extra_blocks(1 + N)
            .endurance_mean(300.0)
            .seed(5)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = StartGap::builder(N)
            .gap_interval(1_000_000)
            .randomizer(RandomizerKind::HalfRestricted { seed: 5 })
            .build();
        let mut ctl = LlsController::builder(device, Box::new(wl))
            .groups(8)
            .cache_bytes(1024)
            .build();
        let pa = Pa::new(9);
        for i in 0..30_000u64 {
            os_write(&mut ctl, pa, i);
            if ctl.counters().links > 0 {
                break;
            }
        }
        ctl.read(pa); // warm
        ctl.reset_request_stats();
        ctl.read(pa);
        assert_eq!(ctl.request_stats().accesses, 1);
    }

    #[test]
    fn group_exhaustion_forces_second_chunk() {
        // With one group, every failure competes for the same slots; with
        // a tiny chunk the second chunk comes quickly.
        let device = PcmDevice::builder(geo())
            .extra_blocks(1 + N)
            .endurance_mean(150.0)
            .seed(6)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = StartGap::builder(N)
            .gap_interval(20)
            .randomizer(RandomizerKind::HalfRestricted { seed: 6 })
            .build();
        let mut ctl = LlsController::builder(device, Box::new(wl))
            .chunk_blocks(64)
            .max_chunks(8)
            .groups(64)
            .build();
        let mut i = 0u64;
        while ctl.chunks_acquired() < 2 && i < 2_000_000 {
            i += 1;
            let pa = Pa::new(i % (N / 2)); // hammer the lower half
            match os_write(&mut ctl, pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(_) => break,
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(
            ctl.chunks_acquired() >= 2,
            "only {} chunks after {i} writes",
            ctl.chunks_acquired()
        );
    }

    #[test]
    fn label() {
        assert_eq!(make(1e9, 5, 7).label(), "ECP6-SG-LLS");
    }
}
