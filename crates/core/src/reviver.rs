//! The WL-Reviver framework (paper §III).
//!
//! [`RevivedController`] interposes between an unmodified wear-leveling
//! scheme and the PCM device so that the scheme keeps operating after
//! block failures:
//!
//! * **Linking** (§III-B): a failed block stores a pointer to a *virtual
//!   shadow block* — a reserved PA — and the scheme's own PA→DA mapping
//!   resolves that PA to the current *shadow block*. Data migration moves
//!   the shadow; the failed-DA→PA link never needs rewriting.
//! * **Space acquisition** (§III-A): reserved PAs come from OS pages
//!   retired through the standard access-error exception. The framework
//!   holds the unlinked PAs in registers (modeled as a queue) and only
//!   reports a failure to the OS when the pool is empty.
//! * **Delayed acquisition**: if a *migration* needs a spare and none is
//!   available, the migration is suspended (its data parked in the
//!   controller's migration buffer) and the next *software write* is
//!   reported to the OS as a failure — possibly a fake one — to obtain a
//!   page. Reads keep being served (from the buffer if necessary), which
//!   is why the paper sacrifices writes rather than reads.
//! * **One-step chains** (§III-B, Figures 2–3): whenever a two-step chain
//!   forms — a shadow dies while serving a write, or a migration lands a
//!   virtual shadow's mapping on another failed block — the framework
//!   switches the two failed blocks' virtual shadows, leaving one of them
//!   on a PA–DA *loop* (no shadow, provably unreachable).
//! * **Inverse pointers** (Figure 4): the last PAs of each retired page
//!   index blocks storing virtual-shadow→failed-block pointers, needed to
//!   find the chain head during the Figure 3 switch. Their reads/writes
//!   are charged to the device like any other access.
//!
//! Theorems 1–3 of the paper are encoded as runtime invariants
//! ([`RevivedControllerBuilder::check_invariants`] mode) and exercised by this
//! module's tests and the cross-crate integration suite.

use crate::cache::RemapCache;
use crate::controller::{Controller, RequestStats, WriteResult};
use crate::error::ReviverError;
use crate::recovery::{PersistedMeta, RecoveryReport};
use std::collections::VecDeque;
use wlr_base::dense::{DenseMap, DenseSet};
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::{CrashPoint, PcmDevice, WriteOutcome};
use wlr_wl::{Migration, WearLeveler};

/// Event counters exposed for the experiments and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReviverCounters {
    /// Failed blocks linked to virtual shadow blocks.
    pub links: u64,
    /// Virtual-shadow switches performed to restore one-step chains.
    pub switches: u64,
    /// Migrations suspended for lack of spare PAs.
    pub suspensions: u64,
    /// Software writes sacrificed as (possibly fake) failure reports.
    pub fake_reports: u64,
    /// Genuine failure reports raised because a software write's own
    /// failure handling ran out of spares.
    pub real_reports: u64,
    /// Pages harvested for spare PAs.
    pub spare_grants: u64,
    /// Inverse-pointer writes skipped for lack of resources (rebuildable
    /// by a scan, per the paper).
    pub meta_skips: u64,
    /// Migration reads of blocks holding no live data.
    pub garbage_reads: u64,
    /// Simulated power cycles survived.
    pub reboots: u64,
    /// In-flight migration lines lost to power cycles. With the
    /// battery-backed migration journal this stays 0 — buffered lines are
    /// replayed by recovery, not lost — but the counter is kept for
    /// journal-ablation experiments.
    pub reboot_lost_migrations: u64,
    /// Chain walks aborted for lack of fuel (torn metadata produced a
    /// cycle); the access degraded instead of panicking.
    pub chain_aborts: u64,
}

/// Builder for [`RevivedController`].
#[derive(Debug)]
pub struct RevivedControllerBuilder {
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    cache_bytes: Option<usize>,
    check_invariants: bool,
    pointer_bytes: u64,
    chain_switching: bool,
    proactive_acquisition: bool,
}

impl RevivedControllerBuilder {
    /// Attaches a remap cache of `bytes` capacity (Table II uses 32 KB).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Enables Theorem 1–3 invariant assertions after every request
    /// (testing aid; expensive on large devices).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Pointer width used to size the inverse-pointer section (default 4,
    /// the paper's 32-bit pointers: 16 per 64 B block).
    pub fn pointer_bytes(mut self, bytes: u64) -> Self {
        self.pointer_bytes = bytes;
        self
    }

    /// Disables the one-step-chain switching of §III-B (ablation): chains
    /// are allowed to grow and every access walks them to the end. Data
    /// remains correct; access time degrades — which is the design point
    /// the paper's Figures 2–3 machinery exists to avoid.
    pub fn chain_switching(mut self, on: bool) -> Self {
        self.chain_switching = on;
        self
    }

    /// Switches to the §III-A alternative the paper rejects: when a
    /// migration needs spare space, *proactively* request a page from the
    /// OS (a new interrupt type) instead of suspending and sacrificing
    /// the next software write as a (possibly fake) failure report.
    pub fn proactive_acquisition(mut self, on: bool) -> Self {
        self.proactive_acquisition = on;
        self
    }

    /// Constructs the controller.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's PA space does not match the geometry or the
    /// device lacks the scheme's buffer blocks.
    pub fn build(self) -> RevivedController {
        let geo = *self.device.geometry();
        assert_eq!(
            self.wl.len(),
            geo.num_blocks(),
            "wear-leveler PA space must match the geometry"
        );
        assert!(
            self.device.total_blocks() >= self.wl.total_das(),
            "device lacks the scheme's buffer blocks: {} < {}",
            self.device.total_blocks(),
            self.wl.total_das()
        );
        let ppb = (geo.block_bytes() / self.pointer_bytes).max(1);
        // Dense tables: failed-DA keys are bounded by the device size,
        // PA keys by the visible space — both known here.
        let total = self.device.total_blocks();
        RevivedController {
            geo,
            device: self.device,
            wl: self.wl,
            ptr: DenseMap::with_capacity(total),
            inv: DenseMap::with_capacity(geo.num_blocks()),
            spares: VecDeque::new(),
            ptr_slot: DenseMap::with_capacity(geo.num_blocks()),
            retired: vec![false; geo.num_pages() as usize],
            suspended: false,
            mig_buf: VecDeque::new(),
            cache: self.cache_bytes.map(RemapCache::with_capacity_bytes),
            req: RequestStats::default(),
            counters: ReviverCounters::default(),
            check: self.check_invariants,
            ptrs_per_block: ppb,
            switching: self.chain_switching,
            proactive: self.proactive_acquisition,
            in_write_da: 0,
            pending_meta: Vec::new(),
            section_pas: DenseSet::with_capacity(geo.num_blocks()),
            persist: PersistedMeta::new(total, geo.num_pages()),
            degraded: false,
            undiscovered: DenseSet::with_capacity(total),
        }
    }
}

/// A memory controller running any [`WearLeveler`] under the WL-Reviver
/// framework: failures are hidden behind shadow blocks and the scheme's
/// migrations continue unmodified.
///
/// See the crate-level example for end-to-end use with the simulator; the
/// controller can also be driven directly:
///
/// ```
/// use wlr_base::{Geometry, Pa, PageId};
/// use wlr_pcm::{Ecp, PcmDevice};
/// use wlr_wl::{RandomizerKind, StartGap};
/// use wl_reviver::controller::{Controller, WriteResult};
/// use wl_reviver::reviver::RevivedController;
///
/// let geo = Geometry::builder().num_blocks(128).build()?;
/// let device = PcmDevice::builder(geo)
///     .extra_blocks(1) // Start-Gap's gap line
///     .endurance_mean(500.0)
///     .ecc(Box::new(Ecp::ecp6()))
///     .track_contents(true)
///     .build();
/// let wl = StartGap::builder(128)
///     .gap_interval(10)
///     .randomizer(RandomizerKind::Feistel { seed: 1 })
///     .build();
/// let mut ctl = RevivedController::builder(device, Box::new(wl)).build();
///
/// // Hammer one address until the controller must involve the OS.
/// let mut reported = None;
/// for i in 0..100_000u64 {
///     match ctl.write(Pa::new(7), i) {
///         WriteResult::Ok => {}
///         WriteResult::ReportFailure(pa) => { reported = Some(pa); break; }
///         other => unreachable!("unexpected write result: {other:?}"),
///     }
/// }
/// // Play the OS: retire the page, granting the framework its PAs.
/// let pa = reported.expect("a failure eventually surfaces");
/// ctl.on_page_retired(geo.page_of(pa));
/// assert!(ctl.spare_pas() > 0);
/// # Ok::<(), wlr_base::geometry::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct RevivedController {
    geo: Geometry,
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    /// failed DA → its virtual shadow PA (stored *in* the failed block on
    /// real hardware, plus a status bit).
    ptr: DenseMap<Pa>,
    /// virtual shadow PA → failed DA (the inverse pointers of Figure 4).
    inv: DenseMap<Da>,
    /// Unlinked reserved PAs (the current/last registers of §III-A,
    /// generalized to a queue across multiple retired pages).
    spares: VecDeque<Pa>,
    /// Reserved PA → the pointer-section PA whose block stores its
    /// inverse pointer.
    ptr_slot: DenseMap<Pa>,
    /// Retired-page bitmap (§III-A; persisted across reboots on hardware).
    retired: Vec<bool>,
    suspended: bool,
    /// Outstanding migration writes `(post-mapping target, data)`; data
    /// lives in controller registers while a migration is suspended.
    mig_buf: VecDeque<(Da, u64)>,
    cache: Option<RemapCache>,
    req: RequestStats,
    counters: ReviverCounters,
    check: bool,
    ptrs_per_block: u64,
    /// One-step-chain switching enabled (§III-B; off only for ablation).
    switching: bool,
    /// Proactive page acquisition (§III-A alternative; ablation only).
    proactive: bool,
    /// Number of active chain-repair frames (metadata writes defer while
    /// this is nonzero).
    in_write_da: u32,
    /// Deferred inverse-pointer writes awaiting a quiescent flush point.
    pending_meta: Vec<Pa>,
    /// Pointer-section PAs (their blocks hold live inverse-pointer data).
    section_pas: DenseSet,
    /// The durable metadata mirror: what the PCM (and the battery-backed
    /// migration journal) actually hold. Updated only when the
    /// corresponding device write commits; the sole source of truth for
    /// [`Self::recover`].
    persist: PersistedMeta,
    /// Set when an access hit torn metadata it could not repair (fuel
    /// exhaustion, unlinked dead read outside check mode).
    degraded: bool,
    /// Dead blocks the controller legitimately does not know about yet —
    /// Theorem 2's "undiscovered failure" state: injected failures not
    /// yet touched, and blocks recovery could not heal for lack of
    /// spares. Exempt from the Theorem 1 reachability invariant; cleared
    /// when the block gets linked.
    undiscovered: DenseSet,
}

impl RevivedController {
    /// Starts building a revived controller over `device` driving `wl`.
    pub fn builder(device: PcmDevice, wl: Box<dyn WearLeveler>) -> RevivedControllerBuilder {
        RevivedControllerBuilder {
            device,
            wl,
            cache_bytes: None,
            check_invariants: false,
            pointer_bytes: 4,
            chain_switching: true,
            proactive_acquisition: false,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> ReviverCounters {
        self.counters
    }

    /// Unlinked spare PAs currently available.
    pub fn spare_pas(&self) -> u64 {
        self.spares.len() as u64
    }

    /// Number of failed blocks currently linked to virtual shadows.
    pub fn linked_blocks(&self) -> u64 {
        self.ptr.len() as u64
    }

    /// Number of linked blocks currently on PA–DA loops (no shadow).
    pub fn loop_blocks(&self) -> u64 {
        self.ptr
            .iter()
            .filter(|&(da, &v)| self.wl.map(v).index() == da)
            .count() as u64
    }

    /// Diagnostic view of a failed block's chain: its virtual shadow PA,
    /// the shadow block it currently resolves to, and whether that shadow
    /// is itself dead. `None` if `da` is not linked.
    pub fn chain_info(&self, da: Da) -> Option<(Pa, Da, bool)> {
        let v = *self.ptr.get(da.index())?;
        let sda = self.wl.map(v);
        Some((v, sda, self.device.is_dead(sda)))
    }

    /// The lowest-indexed page not yet retired (proactive-acquisition
    /// ablation's nomination), or `None` when everything is retired.
    fn pick_page_to_request(&self) -> Option<PageId> {
        self.retired
            .iter()
            .position(|&r| !r)
            .map(|i| PageId::new(i as u64))
    }

    /// Length of every linked block's chain (steps to a healthy block or
    /// a loop), for the chain-switching ablation's statistics.
    pub fn chain_lengths(&self) -> Vec<u32> {
        self.ptr
            .keys()
            .map(|d| {
                let mut cur = Da::new(d);
                let mut steps = 0u32;
                while let Some(&v) = self.ptr.get(cur.index()) {
                    let next = self.wl.map(v);
                    steps += 1;
                    if next == cur || !self.device.is_dead(next) {
                        break;
                    }
                    cur = next;
                    if steps > self.ptr.len() as u32 + 1 {
                        break;
                    }
                }
                steps
            })
            .collect()
    }

    /// Cache hit ratio, if a remap cache is configured.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        self.cache.as_ref().map(|c| c.hit_ratio())
    }

    /// Read access to the wear-leveler (for inspection and tooling).
    pub fn wear_leveler(&self) -> &dyn WearLeveler {
        self.wl.as_ref()
    }

    /// Force-fails device block `da` without wearing it — the setup knob
    /// for fixed-failure-ratio measurements (Table II). The failure is
    /// "undiscovered": the framework links it on the next touch, exactly
    /// like an organic failure detected at write time.
    pub fn inject_dead(&mut self, da: Da) {
        self.device.inject_dead(da);
        // Idempotent: re-injecting a block that is already linked (or
        // already recorded as undiscovered) changes nothing.
        if !self.ptr.contains_key(da.index()) {
            self.undiscovered.insert(da.index());
        }
    }

    // ----- device helpers ---------------------------------------------

    #[inline]
    fn dev_read(&mut self, da: Da, acct: bool) {
        self.device.read(da);
        if acct {
            self.req.accesses += 1;
        }
    }

    #[inline]
    fn dev_write(&mut self, da: Da, tag: u64, acct: bool) -> WriteOutcome {
        let out = self.device.write_tagged(da, tag);
        if acct {
            self.req.accesses += 1;
        }
        out
    }

    // ----- linking primitives -----------------------------------------

    fn take_spare(&mut self) -> Result<Pa, ReviverError> {
        self.spares.pop_front().ok_or(ReviverError::NeedSpare)
    }

    /// [`Self::take_spare`], but when the pool is dry the dead block the
    /// spare was meant to link parks in Theorem 2's undiscovered-failure
    /// state (it is discovered but *unlinked*, which is structurally the
    /// same thing: the chain heals on the next touch after a grant, and
    /// [`Self::link`] lifts the mark).
    fn take_spare_or_park(&mut self, dead: Da) -> Result<Pa, ReviverError> {
        match self.take_spare() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.undiscovered.insert(dead.index());
                Err(e)
            }
        }
    }

    /// Writes failed block `da`'s stored pointer, mirroring `v` into the
    /// persisted metadata iff the device write committed (a write the
    /// fault injector dropped leaves the durable pointer at its old
    /// value — the torn states recovery must untangle).
    fn commit_ptr(&mut self, da: Da, v: Pa) {
        if self.device.write(da) != WriteOutcome::Lost {
            self.persist.ptr.insert(da.index(), v);
        }
    }

    /// Links failed block `da` to virtual shadow `v`.
    fn link(&mut self, da: Da, v: Pa) {
        debug_assert!(self.device.is_dead(da), "only failed blocks are linked");
        self.undiscovered.remove(da.index());
        self.ptr.insert(da.index(), v);
        self.inv.insert(v.index(), da);
        if let Some(c) = &mut self.cache {
            c.insert(da.index(), v.index());
        }
        // The pointer is written into the failed block itself (§III-B);
        // the block is dead so the write stores metadata, not data.
        self.device.crash_point(CrashPoint::MidLink);
        self.commit_ptr(da, v);
        self.meta_write(v);
        self.counters.links += 1;
    }

    /// Replaces `da`'s virtual shadow `v_old` with a fresh one, returning
    /// the old PA to the spare pool (degenerate self-loop escape).
    fn relink(&mut self, da: Da, v_new: Pa, v_old: Pa) {
        self.ptr.insert(da.index(), v_new);
        self.inv.remove(v_old.index());
        self.inv.insert(v_new.index(), da);
        self.spares.push_back(v_old);
        if let Some(c) = &mut self.cache {
            c.insert(da.index(), v_new.index());
        }
        self.commit_ptr(da, v_new);
        self.meta_write(v_new);
        self.meta_write(v_old);
    }

    /// Switches the virtual shadows of two failed blocks (Figures 2(d)
    /// and 3(b)), restoring one-step chains and leaving one block on a
    /// PA–DA loop. The two pointer rewrites are not atomic: a power cut
    /// between them persists `d0`'s new pointer but not `d1`'s, leaving
    /// both blocks claiming the same shadow — the torn-switch state
    /// [`Self::recover`] detects and repairs.
    fn switch(&mut self, d0: Da, d1: Da) {
        let v0 = self.ptr[d0.index()];
        let v1 = self.ptr[d1.index()];
        self.ptr.insert(d0.index(), v1);
        self.ptr.insert(d1.index(), v0);
        self.inv.insert(v1.index(), d0);
        self.inv.insert(v0.index(), d1);
        if let Some(c) = &mut self.cache {
            c.insert(d0.index(), v1.index());
            c.insert(d1.index(), v0.index());
        }
        // Rewrite both stored pointers and both inverse pointers.
        self.commit_ptr(d0, v1);
        self.device.crash_point(CrashPoint::MidSwitch);
        self.commit_ptr(d1, v0);
        self.meta_write(v0);
        self.meta_write(v1);
        self.counters.switches += 1;
    }

    /// Resolves the virtual shadow pointer of failed block `da`, through
    /// the cache when configured. A miss costs one PCM read (the pointer
    /// lives in the failed block).
    fn resolve_ptr(&mut self, da: Da, acct: bool) -> Option<Pa> {
        if let Some(c) = &mut self.cache {
            if let Some(v) = c.get(da.index()) {
                return Some(Pa::new(v));
            }
        }
        let v = self.ptr.get(da.index()).copied();
        if let Some(v) = v {
            self.dev_read(da, acct); // pointer read
            if let Some(c) = &mut self.cache {
                c.insert(da.index(), v.index());
            }
        }
        v
    }

    /// Best-effort write of the inverse pointer for reserved PA `v` into
    /// its pointer-section block.
    ///
    /// Pointer-section blocks are ordinary PCM blocks: writing them can
    /// discover failures that need the full linking/repair machinery. But
    /// several reserved PAs share one section block, so a metadata write
    /// issued *while a chain repair is already in progress* could walk the
    /// very chain being repaired (re-entrancy). Metadata writes are
    /// therefore deferred onto a queue while any [`Self::write_da`] frame
    /// is active and flushed at top level ([`Self::flush_meta`]) — the
    /// hardware analogue being that pointer updates are posted writes.
    /// Exhaustion only bumps a counter: the paper notes inverse pointers
    /// are rebuildable by scanning.
    fn meta_write(&mut self, v: Pa) {
        if self.in_write_da > 0 {
            self.pending_meta.push(v);
        } else {
            self.do_meta_write(v);
        }
    }

    fn do_meta_write(&mut self, v: Pa) {
        let Some(slot) = self.ptr_slot.get(v.index()).copied() else {
            // `v` predates any grant (possible only in hand-built tests).
            self.counters.meta_skips += 1;
            return;
        };
        let da = self.wl.map(slot);
        if self.write_da(da, 0, false).is_err() {
            self.counters.meta_skips += 1;
        }
    }

    /// Drains deferred metadata writes. Called wherever no chain repair is
    /// in flight. Each flush round may enqueue more (its own links), but
    /// every link consumes a spare, so the loop terminates.
    fn flush_meta(&mut self) {
        // Each flushed item can enqueue more (links consume spares,
        // repairs enqueue rewrites), so budget generously — and when the
        // budget runs out, give up on the remainder instead of failing:
        // inverse pointers are rebuildable by scanning (paper §III-B).
        let mut fuel = self.pending_meta.len() + 4 * (self.spares.len() + self.ptr.len()) + 256;
        while let Some(v) = self.pending_meta.pop() {
            if fuel == 0 {
                self.counters.meta_skips += self.pending_meta.len() as u64 + 1;
                self.pending_meta.clear();
                return;
            }
            fuel -= 1;
            self.do_meta_write(v);
        }
    }

    /// Reads the inverse-pointer block covering reserved PA `v`
    /// (accounting only; the simulator's `inv` map is authoritative).
    fn meta_read(&mut self, v: Pa) {
        if let Some(slot) = self.ptr_slot.get(v.index()).copied() {
            let da = self.wl.map(slot);
            self.device.read(da);
        }
    }

    #[inline]
    fn is_reserved(&self, pa: Pa) -> bool {
        self.retired[self.geo.page_of(pa).as_usize()]
    }

    /// Indexes a retired page's PAs: the trailing pointer-section blocks
    /// go into `section_pas`, every shadow PA gets its inverse-pointer
    /// slot, and the shadow PAs are returned. The split is a pure
    /// function of geometry and pointer width, so recovery re-derives it
    /// from the persisted bitmap alone (Figure 4: 4 blocks of 16 pointers
    /// cover 60 shadows per 64-block page).
    fn index_grant(&mut self, page: PageId) -> Vec<Pa> {
        let bpp = self.geo.blocks_per_page();
        let section = bpp.div_ceil(self.ptrs_per_block + 1).clamp(1, bpp - 1);
        let pas: Vec<Pa> = self.geo.page_pas(page).collect();
        let (shadows, slots) = pas.split_at((bpp - section) as usize);
        for &slot in slots {
            self.section_pas.insert(slot.index());
        }
        for (i, &v) in shadows.iter().enumerate() {
            self.ptr_slot
                .insert(v.index(), slots[i / self.ptrs_per_block as usize]);
        }
        shadows.to_vec()
    }

    // ----- the write chain (core of §III-B) ---------------------------

    /// Serves a write destined by the current mapping for `da`,
    /// discovering failures, linking, and keeping chains at one step.
    /// Metadata writes triggered inside are deferred (see
    /// [`Self::meta_write`]) to keep chain repair non-re-entrant.
    fn write_da(&mut self, da: Da, tag: u64, acct: bool) -> Result<(), ReviverError> {
        self.in_write_da += 1;
        let r = self.write_da_inner(da, tag, acct);
        self.in_write_da -= 1;
        r
    }

    fn write_da_inner(&mut self, mut da: Da, tag: u64, acct: bool) -> Result<(), ReviverError> {
        if !self.device.is_dead(da) {
            match self.dev_write(da, tag, acct) {
                WriteOutcome::Ok => return Ok(()),
                WriteOutcome::NewFailure => {} // fall through: fresh failure
                WriteOutcome::Lost => return Err(ReviverError::PowerLoss),
                WriteOutcome::AlreadyDead => unreachable!("checked alive"),
            }
        }
        // `da` is dead. Ensure it is linked.
        if !self.ptr.contains_key(da.index()) {
            let v = self.take_spare_or_park(da)?;
            self.link(da, v);
        }
        // Follow/repair the chain until the data lands on a healthy block.
        let mut fuel = self.spares.len() + self.ptr.len() + 8;
        loop {
            if fuel == 0 {
                // Reachable only through torn metadata: degrade, don't
                // panic — recovery re-derives the chains.
                self.degraded = true;
                return Err(ReviverError::ChainDiverged { da: da.index() });
            }
            fuel -= 1;
            let v = match self.resolve_ptr(da, acct) {
                Some(v) => v,
                None => return Err(ReviverError::UnlinkedDead { da: da.index() }),
            };
            let sda = self.wl.map(v);
            if sda == da {
                // `da` is on a PA–DA loop: it has no shadow. Give it a
                // fresh virtual shadow; the old PA returns to the pool.
                let v2 = self.take_spare()?;
                self.relink(da, v2, v);
                continue;
            }
            if !self.device.is_dead(sda) {
                match self.dev_write(sda, tag, acct) {
                    WriteOutcome::Ok => return Ok(()),
                    WriteOutcome::NewFailure => {
                        // Scenario 1 (Fig. 2c): the shadow died serving
                        // this write. Link it and switch virtual shadows
                        // (or, in the no-switching ablation, keep walking
                        // the now-longer chain).
                        let v2 = self.take_spare_or_park(sda)?;
                        self.link(sda, v2);
                        if self.switching {
                            self.switch(da, sda);
                        } else {
                            da = sda;
                        }
                        continue;
                    }
                    WriteOutcome::Lost => return Err(ReviverError::PowerLoss),
                    WriteOutcome::AlreadyDead => unreachable!("checked alive"),
                }
            }
            // The shadow is already dead: a two-step chain has formed.
            if !self.ptr.contains_key(sda.index()) {
                let v2 = self.take_spare_or_park(sda)?;
                self.link(sda, v2);
            }
            if self.switching {
                self.switch(da, sda);
            } else {
                da = sda;
            }
        }
    }

    // ----- migrations ---------------------------------------------------

    /// Whether the block `src` (about to be migrated out of) holds live
    /// data under the *current* (pre-migration) mapping. See the comment
    /// at the call site in [`Self::run_migrations`].
    fn src_data_is_live(&self, src: Da) -> bool {
        let Some(p) = self.safe_inverse(src) else {
            return false; // unmapped buffer block
        };
        if !self.is_reserved(p) {
            return true; // software data
        }
        match self.inv.get(p.index()) {
            // Linked virtual shadow: the block is its head's shadow and
            // holds the head's data — unless the head *is* this block
            // (a PA–DA loop), which holds nothing.
            Some(&d0) => d0 != src,
            // Unlinked reserved PA: a spare (garbage) or a pointer-section
            // block (live metadata).
            None => self.section_pas.contains(p.index()),
        }
    }

    /// Reads the data a migration must move out of `src`, walking the
    /// chain if `src` is failed (one step under switching; possibly more
    /// in the no-switching ablation). Returns the data and whether the
    /// walk ended at a healthy block — chains ending in a PA–DA loop or
    /// an unlinked dead block hold no live data.
    fn migration_read(&mut self, src: Da) -> (u64, bool) {
        if !self.device.is_dead(src) {
            self.dev_read(src, false);
            return (self.device.tag(src), true);
        }
        let mut cur = src;
        let mut fuel = self.ptr.len() + 2;
        loop {
            if fuel == 0 {
                self.counters.garbage_reads += 1;
                return (self.device.tag(cur), false);
            }
            fuel -= 1;
            match self.ptr.get(cur.index()).copied() {
                Some(v) => {
                    self.dev_read(cur, false); // pointer read
                    let next = self.wl.map(v);
                    if next == cur {
                        // Loop block: nothing behind it.
                        self.counters.garbage_reads += 1;
                        return (self.device.tag(cur), false);
                    }
                    if !self.device.is_dead(next) {
                        self.dev_read(next, false);
                        return (self.device.tag(next), true);
                    }
                    cur = next;
                }
                None => {
                    self.counters.garbage_reads += 1;
                    self.dev_read(cur, false);
                    return (self.device.tag(cur), false);
                }
            }
        }
    }

    /// Mirrors a migration-buffer push into the battery-backed journal
    /// (no device write: the journal is controller NVM, not PCM).
    fn journal_push(&mut self, target: Da, tag: u64) {
        if self.device.powered() {
            self.persist.journal.push_back((target, tag));
        }
    }

    /// Mirrors a migration-buffer pop (the line's data committed).
    fn journal_pop(&mut self) {
        if self.device.powered() {
            self.persist.journal.pop_front();
        }
    }

    /// Performs all pending migrations, suspending (and parking data in
    /// the migration buffer) if a spare PA is needed and none exists.
    ///
    /// Power-gated: the wear-leveler's mapping registers are persistent,
    /// so no migration may start (and no mapping may advance) once the
    /// device has lost power — post-cut execution must not perturb
    /// durable state.
    fn run_migrations(&mut self) {
        while !self.suspended && self.device.powered() {
            if self.mig_buf.is_empty() {
                let Some(m) = self.wl.pending() else { break };
                if self.check {
                    if let Migration::Copy { dst, .. } = m {
                        // Theorem 3: the scheme only copies into its
                        // (unmapped) buffer block, never onto live data —
                        // in particular never onto a PA–DA loop.
                        assert!(
                            self.wl.inverse(dst).is_none(),
                            "scheme migrated into mapped block {dst}"
                        );
                    }
                }
                // `(source block, post-migration target)` for each moved PA.
                let moves: [Option<(Da, Da)>; 2] = match m {
                    Migration::Copy { src, dst } => [Some((src, dst)), None],
                    Migration::Swap { a, b } => [Some((a, b)), Some((b, a))],
                };
                for (src, target) in moves.into_iter().flatten() {
                    let (tag, ended_live) = self.migration_read(src);
                    // Only *live* data is rewritten at the target. A
                    // reserved PA's block holds live data only when the PA
                    // is a linked virtual shadow of a *non-loop* block
                    // (the chain head's data) or a pointer-section block
                    // (metadata). Unlinked spares and loop-block shadows
                    // carry garbage — and writing garbage is worse than
                    // wasted wear: if this very migration makes the other
                    // moved PA's chain resolve into `target`, the stale
                    // write would clobber freshly-placed live data (the
                    // aliasing hazard dissected in the tests).
                    if ended_live && self.src_data_is_live(src) {
                        self.mig_buf.push_back((target, tag));
                        self.journal_push(target, tag);
                    }
                }
                // Advance the mapping; the writes below then resolve
                // chains under the post-migration mapping, and reads
                // during any suspension are served from the buffer.
                self.wl.complete_migration();
                self.device.crash_point(CrashPoint::MidMigration);
            }
            while let Some(&(target, tag)) = self.mig_buf.front() {
                match self.write_da(target, tag, false) {
                    Ok(()) => {
                        self.mig_buf.pop_front();
                        self.journal_pop();
                        self.flush_meta();
                        self.fix_chain_after_migration(target);
                    }
                    Err(ReviverError::NeedSpare) => {
                        self.suspended = true;
                        self.counters.suspensions += 1;
                        return;
                    }
                    // Power cut (or torn chain): stop here. The journaled
                    // lines are replayed by recovery.
                    Err(_) => return,
                }
            }
        }
    }

    /// The Figure 3 repair: after a migration, if the PA now mapping to
    /// `target` is a linked virtual shadow and `target` is failed, a
    /// two-step chain has formed — switch the chain head's virtual shadow.
    fn fix_chain_after_migration(&mut self, target: Da) {
        if !self.switching {
            return; // ablation: chains are allowed to grow
        }
        let Some(p) = self.wl.inverse(target) else {
            return;
        };
        if !self.is_reserved(p) {
            return;
        }
        let Some(&d0) = self.inv.get(p.index()) else {
            return;
        };
        // Locating the chain head requires reading the inverse pointer.
        self.meta_read(p);
        if d0 == target || !self.device.is_dead(target) {
            return;
        }
        debug_assert!(
            self.ptr.contains_key(target.index()),
            "dead migration target must have been linked by write_da"
        );
        self.switch(d0, target);
    }

    // ----- invariants (Theorems 1–3 as runtime checks) ------------------

    /// Asserts the framework's structural invariants. Enabled per request
    /// via [`RevivedControllerBuilder::check_invariants`]; also callable
    /// directly from tests.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn assert_invariants(&self) {
        for (da_idx, &v) in self.ptr.iter() {
            let da = Da::new(da_idx);
            assert!(self.device.is_dead(da), "linked block {da} is not dead");
            assert!(
                self.is_reserved(v),
                "virtual shadow {v} of {da} is not in a retired page"
            );
            assert_eq!(
                self.inv.get(v.index()),
                Some(&da),
                "inverse pointer of {v} is inconsistent"
            );
            let sda = self.wl.map(v);
            // One-step chains (Theorem 1): for a *software-accessible*
            // failed block the shadow is healthy, or the block is on a
            // PA–DA loop and holds no data. A head whose own PA has been
            // retired (e.g. the page sacrificed by the very report that
            // ran the spares dry) may transiently carry a dead shadow; it
            // is healed lazily on the next touch, exactly like an
            // undiscovered failure (Theorem 2's note). A *linked* dead
            // shadow is likewise a transient two-step chain — a wear-level
            // migration can rotate a shadow PA onto a dead linked block
            // without moving live data (the source was an undiscovered
            // failure, so nothing was buffered and the Figure-3 repair
            // never ran) — collapsed by `switch` on the next touch. Only
            // an *unlinked*, *discovered* dead shadow is a real violation.
            let accessible = self.safe_inverse(da).is_some_and(|p| !self.is_reserved(p));
            let tolerated = self.ptr.contains_key(sda.index())
                || self.undiscovered.contains(sda.index())
                || self.device.silent_failures().contains(&sda);
            assert!(
                !self.switching || !accessible || !self.device.is_dead(sda) || sda == da || tolerated,
                "two-step chain at {da} (PA {:?}, v {v}): shadow {sda} is dead (linked: {}, shadow inverse {:?})",
                self.safe_inverse(da),
                self.ptr.contains_key(sda.index()),
                self.safe_inverse(sda),
            );
        }
        for &v in &self.spares {
            assert!(self.is_reserved(v), "spare {v} outside retired pages");
            assert!(
                !self.inv.contains_key(v.index()),
                "spare {v} is still linked"
            );
        }
        // Theorem 1 (reachability direction): every dead block mapped by a
        // software-accessible PA is linked — except undiscovered failures
        // (Theorem 2): injected blocks not yet touched, blocks recovery
        // could not heal, and silent write failures the device concealed.
        for da in self.device.dead_iter() {
            if self.undiscovered.contains(da.index()) {
                continue;
            }
            if self.device.silent_failures().contains(&da) && !self.ptr.contains_key(da.index()) {
                continue;
            }
            if let Some(p) = self.safe_inverse(da) {
                if !self.is_reserved(p) {
                    assert!(
                        self.ptr.contains_key(da.index()),
                        "software-accessible dead block {da} (PA {p}) unlinked"
                    );
                }
            }
        }
    }

    fn safe_inverse(&self, da: Da) -> Option<Pa> {
        if da.index() < self.wl.total_das() {
            self.wl.inverse(da)
        } else {
            None
        }
    }

    // ----- crash recovery (§III-B's "rebuilt by scanning") --------------

    /// The durable metadata mirror (what a firmware scan of the PCM and
    /// the migration journal would find right now).
    pub fn persisted_meta(&self) -> &PersistedMeta {
        &self.persist
    }

    /// Whether `page`'s retirement reached the durable bitmap — the
    /// commit point the simulator's retirement transaction checks before
    /// deciding to roll the OS side back after a crash.
    pub fn retirement_persisted(&self, page: PageId) -> bool {
        self.persist.retired[page.as_usize()]
    }

    /// Whether an access hit torn metadata it could not repair since the
    /// last recovery.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The software PA whose data currently lives in device block `da`,
    /// if any: the block's own PA when that is software-visible, or — for
    /// a shadow block — its chain head's PA. Used by the simulator to
    /// reconcile silent write failures (the block died claiming success,
    /// so this owner's data is gone).
    pub fn logical_owner(&self, da: Da) -> Option<Pa> {
        let p = self.safe_inverse(da)?;
        if !self.is_reserved(p) {
            return Some(p);
        }
        let head = *self.inv.get(p.index())?;
        if head == da {
            return None; // loop block: holds no data
        }
        let hp = self.safe_inverse(head)?;
        (!self.is_reserved(hp)).then_some(hp)
    }

    /// Replaces the durable metadata wholesale and recovers from it —
    /// the deserialization end of the persistence round trip
    /// ([`PersistedMeta::from_bytes`]).
    pub fn restore_from(&mut self, meta: PersistedMeta) -> RecoveryReport {
        self.persist = meta;
        self.recover()
    }

    /// Rebuilds all volatile state from the durable metadata after a
    /// power cut, repairing whatever the cut tore:
    ///
    /// 1. re-derive the retired-page layout (pointer sections, inverse
    ///    slots) from the persisted bitmap;
    /// 2. re-read every persisted failed-block pointer, discarding torn
    ///    entries (their grant never committed);
    /// 3. detect half-completed shadow switches (two blocks claiming one
    ///    shadow) and complete them;
    /// 4. rebuild the spare-PA pool by scanning the retired pages;
    /// 5. heal unlinked software-accessible dead blocks with spares
    ///    (Theorem 2's undiscovered-failure state — legal, but healed
    ///    eagerly when the pool allows);
    /// 6. replay the journaled migration lines.
    ///
    /// Suspends gracefully (`report.suspended`) when replay needs a spare
    /// that does not exist, and flags `report.degraded` instead of
    /// panicking when a torn state admits no certain repair.
    pub fn recover(&mut self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        self.device.restore_power();
        // Volatile state is gone: the suspension flag, deferred metadata
        // writes, the remap cache, and every in-SRAM table. The migration
        // buffer's lines survive in the journal and are restored below.
        self.suspended = false;
        self.in_write_da = 0;
        self.pending_meta.clear();
        self.degraded = false;
        self.mig_buf.clear();
        if let Some(c) = &mut self.cache {
            *c = RemapCache::with_capacity_bytes(c.capacity() * crate::cache::ENTRY_BYTES);
        }
        // 1. Retired-page layout: a pure function of the persisted bitmap.
        self.retired = self.persist.retired.clone();
        self.ptr_slot = DenseMap::with_capacity(self.geo.num_blocks());
        self.section_pas = DenseSet::with_capacity(self.geo.num_blocks());
        let retired_pages: Vec<PageId> = self
            .retired
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| PageId::new(i as u64))
            .collect();
        for &page in &retired_pages {
            self.index_grant(page);
            report.blocks_scanned += self.geo.blocks_per_page();
        }
        // 2. Links from the persisted failed-block pointers; the inverse
        // table is their mirror image (the paper's §III-B scan).
        self.ptr = DenseMap::with_capacity(self.device.total_blocks());
        self.inv = DenseMap::with_capacity(self.geo.num_blocks());
        let entries: Vec<(u64, Pa)> = self.persist.ptr.iter().map(|(k, &v)| (k, v)).collect();
        let mut collisions: Vec<(Da, Da, Pa)> = Vec::new();
        for (da_idx, v) in entries {
            report.blocks_scanned += 1;
            let da = Da::new(da_idx);
            if !self.device.is_dead(da) || !self.is_reserved(v) {
                // Torn: a pointer whose grant (or whose block's death)
                // never committed. Discard it.
                self.persist.ptr.remove(da_idx);
                report.torn_links_dropped += 1;
                continue;
            }
            self.ptr.insert(da_idx, v);
            report.links_recovered += 1;
            if let Some(prev) = self.inv.insert(v.index(), da) {
                collisions.push((prev, da, v));
            }
        }
        // 3. Each collision is a half-completed switch; complete it.
        for (c1, c2, v_dup) in collisions {
            self.repair_torn_switch(c1, c2, v_dup, &mut report);
        }
        report.inv_rebuilt = self.inv.len() as u64;
        // 4. Spare pool: unclaimed shadow PAs of the retired pages.
        self.spares.clear();
        for &page in &retired_pages {
            for v in self.geo.page_pas(page) {
                let idx = v.index();
                if self.section_pas.contains(idx) || self.inv.contains_key(idx) {
                    continue;
                }
                if self.ptr_slot.contains_key(idx) {
                    self.spares.push_back(v);
                    report.spares_recovered += 1;
                }
            }
        }
        // 5. Heal unlinked software-accessible dead blocks.
        let dead: Vec<Da> = self.device.dead_iter().collect();
        for da in dead {
            if self.ptr.contains_key(da.index()) {
                continue;
            }
            let Some(p) = self.safe_inverse(da) else {
                continue;
            };
            if self.is_reserved(p) {
                continue;
            }
            match self.take_spare() {
                Ok(v) => {
                    self.link(da, v);
                    report.healed_links += 1;
                }
                Err(_) => {
                    // No spare: the block stays in Theorem 2's
                    // undiscovered-failure state and heals on its next
                    // touch (or a later recovery with spares).
                    self.undiscovered.insert(da.index());
                    report.unhealed_dead += 1;
                }
            }
        }
        // 6. Replay the journal. This must precede the chain heal below:
        // a journaled migration line holds the *newest* data for its
        // target, and replaying it through `write_da` already re-links
        // and switches whatever the cut tore on that chain.
        self.mig_buf = self.persist.journal.clone();
        report.migration_replays = self.mig_buf.len() as u64;
        self.run_migrations();
        self.flush_meta();
        // 7. Collapse the two-step chains still left: a linked head whose
        // shadow block is dead but *unlinked* (the shadow's own link, or
        // the completing half of a switch, never committed — and no
        // journal line re-fed the chain). Failed blocks retain their last
        // good contents, so rewriting that tag through the ordinary write
        // path re-links the shadow, completes the switch, and lands the
        // data on a healthy block — the same repair `write_da` performs
        // online. With a dry spare pool the shadow parks as an
        // undiscovered failure instead (`take_spare_or_park`) and heals
        // on its next touch.
        if self.switching && !self.suspended {
            let heads: Vec<u64> = self.ptr.iter().map(|(k, _)| k).collect();
            for da_idx in heads {
                let da = Da::new(da_idx);
                let Some(&v) = self.ptr.get(da_idx) else {
                    continue;
                };
                let sda = self.wl.map(v);
                if sda == da || !self.device.is_dead(sda) || self.ptr.contains_key(sda.index()) {
                    continue;
                }
                // Only software-accessible heads carry data worth saving;
                // a head behind a reserved PA shadows garbage.
                if self.safe_inverse(da).is_none_or(|p| self.is_reserved(p)) {
                    continue;
                }
                let tag = self.device.tag(sda);
                match self.write_da(da, tag, false) {
                    Ok(()) => report.healed_links += 1,
                    Err(_) => report.unhealed_dead += 1,
                }
            }
            self.flush_meta();
        }
        report.suspended = self.suspended;
        report.degraded |= self.degraded;
        self.counters.reboots += 1;
        report
    }

    /// Repairs a half-completed virtual-shadow switch found at recovery:
    /// claimants `c1` and `c2` both point at `v_dup` because the second
    /// pointer write of a [`Self::switch`] never committed. Switch pairs
    /// are always (chain head, its dead shadow), and the dead shadow's
    /// own PA is exactly the orphaned shadow the lost write should have
    /// installed — so the stale claimant is the one sitting behind an
    /// unclaimed reserved PA, and completing the switch re-points it
    /// there (the PA–DA loop the finished switch would have produced).
    fn repair_torn_switch(&mut self, c1: Da, c2: Da, v_dup: Pa, report: &mut RecoveryReport) {
        let orphan_of = |me: &Self, c: Da| -> Option<Pa> {
            let p = me.safe_inverse(c)?;
            (me.is_reserved(p)
                && !me.inv.contains_key(p.index())
                && me.ptr_slot.contains_key(p.index()))
            .then_some(p)
        };
        let (stale, keeper, v_orph) = match (orphan_of(self, c1), orphan_of(self, c2)) {
            (Some(p), None) => (c1, c2, p),
            (None, Some(p)) => (c2, c1, p),
            (Some(p), Some(_)) => {
                // Both claimants sit behind unclaimed reserved PAs: the
                // torn state admits no certain repair. Pick one and flag
                // the uncertainty.
                report.degraded = true;
                (c1, c2, p)
            }
            (None, None) => {
                // No orphan found: drop one claimant's link. Its block
                // re-enters the undiscovered-failure path (Theorem 2) and
                // heals on the next touch.
                self.ptr.remove(c1.index());
                self.persist.ptr.remove(c1.index());
                self.inv.insert(v_dup.index(), c2);
                report.torn_links_dropped += 1;
                report.degraded = true;
                return;
            }
        };
        self.ptr.insert(stale.index(), v_orph);
        self.inv.insert(v_dup.index(), keeper);
        self.inv.insert(v_orph.index(), stale);
        self.commit_ptr(stale, v_orph);
        report.torn_switch_repairs += 1;
    }
}

impl Controller for RevivedController {
    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn read(&mut self, pa: Pa) -> u64 {
        if self.check {
            assert!(
                !self.is_reserved(pa),
                "software read of reserved {pa}: the OS contract (§III-A) says retired pages are never accessed"
            );
        }
        self.req.requests += 1;
        let da = self.wl.map(pa);
        if self.suspended {
            if let Some(&(_, t)) = self.mig_buf.iter().find(|(d, _)| *d == da) {
                // Served from the controller's migration buffer: no PCM
                // access — the paper's rationale for sacrificing writes,
                // not reads, during delayed acquisition.
                return t;
            }
        }
        if !self.device.is_dead(da) {
            self.dev_read(da, true);
            return self.device.tag(da);
        }
        // Walk the chain. With switching on (the paper's design) this
        // takes exactly one step; the no-switching ablation may walk
        // further, paying one pointer read per step.
        let mut cur = da;
        let mut fuel = self.ptr.len() + 2;
        loop {
            if fuel == 0 {
                // Torn metadata formed a pointer cycle: degrade (the read
                // returns unrecoverable content) instead of panicking.
                self.degraded = true;
                self.counters.chain_aborts += 1;
                return 0;
            }
            fuel -= 1;
            match self.resolve_ptr(cur, true) {
                Some(v) => {
                    let next = self.wl.map(v);
                    if self.suspended {
                        if let Some(&(_, t)) = self.mig_buf.iter().find(|(d, _)| *d == next) {
                            return t;
                        }
                    }
                    if !self.device.is_dead(next) {
                        self.dev_read(next, true);
                        return self.device.tag(next);
                    }
                    if next == cur {
                        // Loop block: no data behind it.
                        self.dev_read(next, true);
                        return self.device.tag(next);
                    }
                    debug_assert!(!self.switching, "multi-step chain under switching at {da}");
                    cur = next;
                }
                None => {
                    // Theorem 1 says this cannot happen for software PAs —
                    // except for undiscovered failures (injected, silently
                    // concealed, or unhealed after a crash), whose reads
                    // legitimately return unrecoverable content.
                    let known_gap = self.undiscovered.contains(cur.index())
                        || self.device.silent_failures().contains(&cur);
                    assert!(
                        !self.check || known_gap,
                        "read of unlinked dead block {cur} via software {pa}"
                    );
                    if !known_gap {
                        self.degraded = true;
                    }
                    self.dev_read(cur, true);
                    return 0;
                }
            }
        }
    }

    fn write(&mut self, pa: Pa, tag: u64) -> WriteResult {
        if self.check {
            assert!(
                !self.is_reserved(pa),
                "software write of reserved {pa}: the OS contract (§III-A) says retired pages are never accessed"
            );
        }
        self.req.requests += 1;
        if self.suspended {
            if self.proactive {
                // §III-A alternative (ablation): explicitly ask the OS for
                // a page via a new interrupt instead of sacrificing this
                // write. The controller nominates the lowest live page.
                if let Some(page) = self.pick_page_to_request() {
                    return WriteResult::RequestPages(vec![page]);
                }
            }
            // Delayed space acquisition (§III-A): report this write as a
            // failure — even though it may not be one — to obtain a page.
            self.counters.fake_reports += 1;
            return WriteResult::ReportFailure(pa);
        }
        let da = self.wl.map(pa);
        match self.write_da(da, tag, true) {
            Ok(()) => {
                self.wl.record_write(pa);
                self.run_migrations();
                self.flush_meta();
                // A suspension parks mid-repair state (the migration
                // buffer); invariants are re-checked after the grant.
                // After a power cut the volatile tables legitimately
                // diverge from the frozen durable state, so checking
                // waits for recovery.
                if self.check && !self.suspended && self.device.powered() {
                    self.assert_invariants();
                }
                WriteResult::Ok
            }
            Err(ReviverError::NeedSpare) => {
                self.counters.real_reports += 1;
                WriteResult::ReportFailure(pa)
            }
            // Power loss or torn metadata: the write is dropped, not
            // reported — there is nothing the OS could do about it.
            Err(e) => WriteResult::Dropped(e),
        }
    }

    fn on_page_retired(&mut self, page: PageId) {
        if self.retired[page.as_usize()] {
            return;
        }
        self.device.crash_point(CrashPoint::MidRetire);
        self.retired[page.as_usize()] = true;
        // The bitmap write is the retirement's durable commit point: a
        // grant the power cut interrupted never happened as far as
        // recovery is concerned (the simulator rolls the OS side back to
        // match — see `Simulation`'s retirement transaction).
        if self.device.powered() {
            self.persist.retired[page.as_usize()] = true;
        }
        let shadows = self.index_grant(page);
        self.spares.extend(shadows);
        self.counters.spare_grants += 1;
        if self.suspended {
            self.suspended = false;
            self.run_migrations();
            self.flush_meta();
            if self.check && !self.suspended && self.device.powered() {
                self.assert_invariants();
            }
        }
    }

    fn device(&self) -> &PcmDevice {
        &self.device
    }

    fn wl_active(&self) -> bool {
        true // reviving the scheme is the whole point
    }

    fn suspended(&self) -> bool {
        self.suspended
    }

    fn request_stats(&self) -> RequestStats {
        self.req
    }

    fn reset_request_stats(&mut self) {
        self.req = RequestStats::default();
    }

    fn as_reviver(&self) -> Option<&RevivedController> {
        Some(self)
    }

    fn as_reviver_mut(&mut self) -> Option<&mut RevivedController> {
        Some(self)
    }

    fn device_mut(&mut self) -> &mut PcmDevice {
        &mut self.device
    }

    fn retirement_persisted(&self, page: PageId) -> bool {
        RevivedController::retirement_persisted(self, page)
    }

    fn logical_owner(&self, da: Da) -> Option<Pa> {
        RevivedController::logical_owner(self, da)
    }

    fn simulate_reboot(&mut self) {
        // A reboot is a power cut plus recovery: every volatile table is
        // rebuilt from the durable metadata mirror (§III-B's "rebuilt by
        // scanning the entire PCM").
        self.recover();
    }

    fn recover(&mut self) -> RecoveryReport {
        RevivedController::recover(self)
    }

    fn label(&self) -> String {
        let wl = match self.wl.label().as_str() {
            "Start-Gap" => "SG",
            "Security-Refresh" => "SR",
            other => return format!("{}-{}-WLR", self.device.ecc_label(), other),
        };
        format!("{}-{}-WLR", self.device.ecc_label(), wl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_pcm::Ecp;
    use wlr_wl::{NoWearLeveling, RandomizerKind, SecurityRefresh, StartGap};

    const N: u64 = 256; // 4 pages of 64 blocks

    fn geo() -> Geometry {
        Geometry::builder().num_blocks(N).build().unwrap()
    }

    fn device(endurance: f64, extra: u64, seed: u64) -> PcmDevice {
        PcmDevice::builder(geo())
            .extra_blocks(extra)
            .endurance_mean(endurance)
            .endurance_cov(0.2)
            .seed(seed)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build()
    }

    fn sg(psi: u64, seed: u64) -> Box<dyn WearLeveler> {
        Box::new(
            StartGap::builder(N)
                .gap_interval(psi)
                .randomizer(RandomizerKind::Feistel { seed })
                .build(),
        )
    }

    fn checked(endurance: f64, psi: u64, seed: u64) -> RevivedController {
        RevivedController::builder(device(endurance, 1, seed), sg(psi, seed))
            .check_invariants(true)
            .build()
    }

    /// Minimal OS stand-in for driving the controller directly: tracks
    /// retired pages so tests honor the §III-A contract (software never
    /// touches a retired page — the simulator's page table enforces this
    /// in the full stack).
    struct OsSim {
        retired: std::collections::HashSet<u64>,
    }

    impl OsSim {
        fn new() -> Self {
            OsSim {
                retired: Default::default(),
            }
        }

        /// A software-accessible PA below `n`, or `None` if none is left.
        fn pick_pa(&self, rng: &mut wlr_base::rng::Rng, n: u64) -> Option<Pa> {
            for _ in 0..256 {
                let pa = rng.gen_range(n);
                if !self.retired.contains(&(pa / 64)) {
                    return Some(Pa::new(pa));
                }
            }
            None
        }

        fn accessible(&self, pa: Pa) -> bool {
            !self.retired.contains(&(pa.index() / 64))
        }

        /// Standard exception handling: retire the page and grant it.
        fn retire(&mut self, ctl: &mut RevivedController, rep: Pa) {
            let page = ctl.geometry().page_of(rep);
            self.retired.insert(page.index());
            ctl.on_page_retired(page);
        }

        fn grant(&mut self, ctl: &mut RevivedController, page: PageId) {
            self.retired.insert(page.index());
            ctl.on_page_retired(page);
        }
    }

    #[test]
    fn healthy_operation_is_one_access_per_request() {
        let mut ctl = checked(1e9, 10, 1);
        for i in 0..500u64 {
            assert_eq!(ctl.write(Pa::new(i % N), i), WriteResult::Ok);
        }
        for i in 0..100u64 {
            ctl.read(Pa::new(i));
        }
        let s = ctl.request_stats();
        assert_eq!(s.requests, 600);
        assert_eq!(s.accesses, 600, "no failures -> exactly one access each");
        assert_eq!(ctl.linked_blocks(), 0);
    }

    #[test]
    fn data_round_trips_through_migrations() {
        let mut ctl = checked(1e9, 3, 2);
        // Write distinct tags everywhere, interleaved with migrations.
        for round in 0..4u64 {
            for i in 0..N {
                assert_eq!(ctl.write(Pa::new(i), round * N + i), WriteResult::Ok);
            }
        }
        for i in 0..N {
            assert_eq!(ctl.read(Pa::new(i)), 3 * N + i, "PA {i} corrupted");
        }
    }

    #[test]
    fn first_failure_reports_then_links() {
        let mut ctl = checked(300.0, 1_000_000, 3); // no migrations
        let pa = Pa::new(5);
        let mut reported = false;
        for i in 0..10_000u64 {
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    assert_eq!(rep, pa);
                    ctl.on_page_retired(ctl.geometry().page_of(rep));
                    reported = true;
                    break;
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(reported, "hammering must eventually fail the block");
        assert_eq!(ctl.counters().real_reports, 1);
        assert_eq!(ctl.counters().spare_grants, 1);
        // 64-block page, 4 pointer blocks -> 60 spares.
        assert_eq!(ctl.spare_pas(), 60);
        // The block itself gets linked on the next touch of that DA...
        // which is unreachable now (its page retired); instead verify
        // that subsequent failures elsewhere are hidden without reports.
        let pa2 = Pa::new(200);
        for i in 0..10_000u64 {
            assert_eq!(ctl.write(pa2, i), WriteResult::Ok, "failure {i} not hidden");
            if ctl.linked_blocks() > 0 {
                break;
            }
        }
        assert!(ctl.linked_blocks() > 0, "second failure should link");
        assert_eq!(ctl.counters().real_reports, 1, "no further OS reports");
    }

    #[test]
    fn reads_of_failed_blocks_resolve_through_shadow() {
        let mut ctl = checked(300.0, 1_000_000, 4);
        let pa = Pa::new(130);
        // Pre-grant a page so the failure is hidden immediately.
        ctl.on_page_retired(PageId::new(0));
        let mut last = 0;
        for i in 1..20_000u64 {
            match ctl.write(pa, i) {
                WriteResult::Ok => last = i,
                _ => panic!("failure should be hidden"),
            }
            if ctl.linked_blocks() > 0 {
                break;
            }
        }
        assert!(ctl.linked_blocks() > 0);
        assert_eq!(ctl.read(pa), last, "shadow must serve the read");
        // A failed-block read costs two accesses uncached (pointer+shadow).
        ctl.reset_request_stats();
        ctl.read(pa);
        assert_eq!(ctl.request_stats().accesses, 2);
    }

    #[test]
    fn cache_reduces_failed_block_access_to_one() {
        let dev = device(300.0, 1, 5);
        let mut ctl = RevivedController::builder(dev, sg(1_000_000, 5))
            .check_invariants(true)
            .cache_bytes(1024)
            .build();
        ctl.on_page_retired(PageId::new(0));
        let pa = Pa::new(130);
        for i in 1..20_000u64 {
            ctl.write(pa, i);
            if ctl.linked_blocks() > 0 {
                break;
            }
        }
        assert!(ctl.linked_blocks() > 0);
        ctl.read(pa); // populate cache
        ctl.reset_request_stats();
        ctl.read(pa);
        assert_eq!(
            ctl.request_stats().accesses,
            1,
            "cache hit should hide the pointer read"
        );
    }

    #[test]
    fn chains_stay_one_step_under_sustained_hammering() {
        // Low endurance + migrations: shadows keep dying; chains must stay
        // one-step (checked by invariants after every write).
        let mut ctl = checked(150.0, 7, 6);
        let mut os = OsSim::new();
        os.grant(&mut ctl, PageId::new(3));
        let mut rng = wlr_base::rng::Rng::seed_from(99);
        for i in 0..60_000u64 {
            let Some(pa) = os.pick_pa(&mut rng, N) else {
                break;
            };
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    os.retire(&mut ctl, rep);
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
            if ctl.spare_pas() == 0 && ctl.linked_blocks() > 30 {
                break; // plenty of failure handling exercised
            }
        }
        assert!(ctl.counters().links > 0);
        ctl.assert_invariants();
    }

    #[test]
    fn switching_creates_loops() {
        let mut ctl = checked(150.0, 1_000_000, 7);
        let mut os = OsSim::new();
        os.grant(&mut ctl, PageId::new(0));
        // Hammer one PA: its block dies, then its shadow dies, forcing a
        // switch (Fig 2c) which leaves a loop block behind. If the
        // hammered page itself retires, move to the next accessible PA.
        let mut rng = wlr_base::rng::Rng::seed_from(70);
        let mut pa = Pa::new(100);
        for i in 0..200_000u64 {
            if !os.accessible(pa) {
                pa = os.pick_pa(&mut rng, N).expect("space left");
            }
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    os.retire(&mut ctl, rep);
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
            if ctl.counters().switches > 0 {
                break;
            }
        }
        assert!(ctl.counters().switches > 0, "no switch ever happened");
        assert!(ctl.loop_blocks() > 0, "a switch must leave a loop behind");
        ctl.assert_invariants();
    }

    #[test]
    fn suspension_sacrifices_next_write_and_resumes() {
        // Tiny endurance and fast migrations with NO spare pages: a
        // migration soon hits a failure, suspends, and the next software
        // write is reported (fake failure).
        let mut ctl = checked(100.0, 1, 8);
        let mut os = OsSim::new();
        let mut rng = wlr_base::rng::Rng::seed_from(80);
        let mut fake_seen = false;
        let mut i = 0u64;
        while i < 200_000 {
            i += 1;
            let Some(pa) = os.pick_pa(&mut rng, N) else {
                break;
            };
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    if ctl.suspended() {
                        fake_seen = true;
                    }
                    os.retire(&mut ctl, rep);
                    assert!(
                        !ctl.suspended(),
                        "grant must resume the suspended migration"
                    );
                    if fake_seen {
                        break;
                    }
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(fake_seen, "no suspension-triggered report observed");
        assert!(ctl.counters().suspensions > 0);
        assert!(ctl.counters().fake_reports > 0);
    }

    #[test]
    fn reads_are_served_during_suspension() {
        let mut ctl = checked(100.0, 1, 9);
        let mut os = OsSim::new();
        let mut rng = wlr_base::rng::Rng::seed_from(90);
        let mut value_of: std::collections::HashMap<u64, u64> = Default::default();
        let mut i = 0u64;
        loop {
            i += 1;
            assert!(i < 400_000, "never suspended");
            let Some(pa) = os.pick_pa(&mut rng, N) else {
                break;
            };
            match ctl.write(pa, i) {
                WriteResult::Ok => {
                    value_of.insert(pa.index(), i);
                }
                WriteResult::ReportFailure(_) if ctl.suspended() => break,
                WriteResult::ReportFailure(rep) => {
                    os.retire(&mut ctl, rep);
                    // Data of the retired page is relocated by the OS;
                    // drop those expectations in this mini-harness.
                    let page = ctl.geometry().page_of(rep);
                    value_of.retain(|&p, _| p / 64 != page.index());
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        // While suspended, every previously-written accessible PA must
        // still read its last value (possibly out of the migration buffer).
        for (&p, &v) in value_of.iter().take(64) {
            if os.accessible(Pa::new(p)) {
                assert_eq!(ctl.read(Pa::new(p)), v, "stale read at PA {p}");
            }
        }
    }

    #[test]
    fn works_with_security_refresh_unmodified() {
        let dev = device(200.0, 0, 10);
        let wl = SecurityRefresh::builder(N)
            .region_blocks(64)
            .refresh_interval(5)
            .seed(10)
            .build();
        let mut ctl = RevivedController::builder(dev, Box::new(wl))
            .check_invariants(true)
            .build();
        let mut os = OsSim::new();
        let mut writes = 0u64;
        let mut rng = wlr_base::rng::Rng::seed_from(4);
        let mut model: std::collections::HashMap<u64, u64> = Default::default();
        for i in 0..80_000u64 {
            let Some(pa) = os.pick_pa(&mut rng, N) else {
                break;
            };
            match ctl.write(pa, i) {
                WriteResult::Ok => {
                    model.insert(pa.index(), i);
                    writes += 1;
                }
                WriteResult::ReportFailure(rep) => {
                    let page = ctl.geometry().page_of(rep);
                    // Data in the retired page is relocated by the OS; its
                    // model entries are dropped in this mini-harness.
                    let bpp = ctl.geometry().blocks_per_page();
                    let base = page.index() * bpp;
                    for b in base..base + bpp {
                        model.remove(&b);
                    }
                    os.retire(&mut ctl, rep);
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
            if ctl.linked_blocks() >= 10 {
                break;
            }
        }
        assert!(writes > 1000);
        assert!(ctl.linked_blocks() > 0, "SR failures should be hidden too");
        for (&p, &v) in model.iter() {
            if os.accessible(Pa::new(p)) {
                assert_eq!(ctl.read(Pa::new(p)), v, "PA {p} corrupted under SR");
            }
        }
        assert_eq!(ctl.label(), "ECP6-SR-WLR");
    }

    #[test]
    fn label_for_start_gap() {
        let ctl = checked(1e9, 100, 11);
        assert_eq!(ctl.label(), "ECP6-SG-WLR");
    }

    #[test]
    fn no_wl_also_works_under_framework() {
        // The framework does not require migrations at all.
        let dev = device(300.0, 0, 12);
        let mut ctl = RevivedController::builder(dev, Box::new(NoWearLeveling::new(N)))
            .check_invariants(true)
            .build();
        ctl.on_page_retired(PageId::new(0));
        let pa = Pa::new(70);
        let mut last = 0;
        for i in 1..30_000u64 {
            match ctl.write(pa, i) {
                WriteResult::Ok => last = i,
                _ => panic!("hidden failure expected"),
            }
            if ctl.linked_blocks() > 0 {
                break;
            }
        }
        assert!(ctl.linked_blocks() > 0);
        assert_eq!(ctl.read(pa), last);
    }

    #[test]
    fn duplicate_page_grant_is_idempotent() {
        let mut ctl = checked(1e9, 10, 13);
        ctl.on_page_retired(PageId::new(2));
        let before = ctl.spare_pas();
        ctl.on_page_retired(PageId::new(2));
        assert_eq!(ctl.spare_pas(), before);
        assert_eq!(ctl.counters().spare_grants, 1);
    }

    #[test]
    fn pointer_section_sizing_matches_paper() {
        // 64 blocks/page, 16 pointers/block -> 4 pointer blocks, 60 spares.
        let mut ctl = checked(1e9, 10, 14);
        ctl.on_page_retired(PageId::new(1));
        assert_eq!(ctl.spare_pas(), 60);
    }

    #[test]
    fn inject_dead_is_idempotent_on_dead_blocks() {
        let mut ctl = checked(1e9, 1_000_000, 40); // no migrations
        ctl.on_page_retired(PageId::new(0));
        let pa = Pa::new(100);
        let da = ctl.wear_leveler().map(pa);
        ctl.inject_dead(da);
        ctl.inject_dead(da); // double injection before discovery: no-op
        assert_eq!(ctl.device().dead_blocks(), 1);
        assert_eq!(ctl.write(pa, 7), WriteResult::Ok);
        assert_eq!(ctl.linked_blocks(), 1);
        assert_eq!(ctl.read(pa), 7);
        let spares = ctl.spare_pas();
        // Re-injecting an already-linked dead block must not re-link it
        // or consume another spare.
        ctl.inject_dead(da);
        assert_eq!(ctl.write(pa, 8), WriteResult::Ok);
        assert_eq!(ctl.linked_blocks(), 1, "re-injection must not re-link");
        assert_eq!(
            ctl.spare_pas(),
            spares,
            "re-injection must not cost a spare"
        );
        assert_eq!(ctl.read(pa), 8);
    }

    #[test]
    fn exhausting_last_spare_suspends_migration_without_wedging() {
        // Drain the spare pool by injecting failures faster than pages are
        // granted; a migration must eventually need a spare the pool does
        // not have and *suspend* — not panic, not wedge, not corrupt.
        // Needs more pages than the shared 4-page geometry: the drain and
        // recovery phases below retire several more.
        const N: u64 = 1024; // 16 pages of 64 blocks
        let dev = PcmDevice::builder(Geometry::builder().num_blocks(N).build().unwrap())
            .extra_blocks(1)
            .endurance_mean(1e9)
            .endurance_cov(0.2)
            .seed(41)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = Box::new(
            StartGap::builder(N)
                .gap_interval(4)
                .randomizer(RandomizerKind::Feistel { seed: 41 })
                .build(),
        );
        let mut ctl = RevivedController::builder(dev, wl)
            .check_invariants(true)
            .build();
        let mut os = OsSim::new();
        let mut rng = wlr_base::rng::Rng::stream(41, 1);
        os.grant(&mut ctl, PageId::new(0));
        let mut i = 0u64;
        while !ctl.suspended() {
            i += 1;
            assert!(i < 200_000, "controller wedged instead of suspending");
            if ctl.spare_pas() > 0 && i.is_multiple_of(3) {
                if let Some(pa) = os.pick_pa(&mut rng, N) {
                    let da = ctl.wear_leveler().map(pa);
                    ctl.inject_dead(da);
                }
            }
            let Some(pa) = os.pick_pa(&mut rng, N) else {
                panic!("ran out of software pages before suspending");
            };
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(ctl.suspended());
        assert_eq!(ctl.spare_pas(), 0, "suspension means the pool is dry");
        // Delayed space acquisition: each write while suspended is
        // sacrificed as a report until the parked migration resumes.
        for _ in 0..10 {
            if !ctl.suspended() {
                break;
            }
            let pa = os.pick_pa(&mut rng, N).expect("software pages remain");
            match ctl.write(pa, 999_999) {
                WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
                other => unreachable!("suspended controller must report, got {other:?}"),
            }
        }
        assert!(!ctl.suspended(), "grants must resume the parked migration");
        // And the controller still round-trips data afterwards.
        let mut ok = false;
        for attempt in 0..10u64 {
            let pa = os.pick_pa(&mut rng, N).expect("software pages remain");
            match ctl.write(pa, 1_000_000 + attempt) {
                WriteResult::Ok => {
                    assert_eq!(ctl.read(pa), 1_000_000 + attempt);
                    ok = true;
                    break;
                }
                WriteResult::ReportFailure(rep) => os.retire(&mut ctl, rep),
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert!(ok, "controller never serviced a write after resuming");
    }
}
