//! The scheme registry: one table describing every controller stack.
//!
//! The paper's central claim is that WL-Reviver revives *any* wear-leveling
//! scheme. The registry is where that openness lives in the reproduction:
//! each stack is a [`StackSpec`] — a name, report title, revivable/bare
//! flags, default knobs, and a builder function that assembles the
//! `(WearLeveler, Controller)` pair from a [`StackCtx`] — and the
//! [`SchemeRegistry`] is the single source of truth consumed by
//! [`crate::sim::SimulationBuilder`], every bench bin, `wlr-fleet`,
//! `wlr-mc`, `wlr-serve`, and the test harnesses. Adding a scheme is one
//! `WearLeveler` impl plus one entry in [`SPECS`]; every sweep, golden,
//! crash harness and fleet campaign picks it up by iteration.
//!
//! # Adding a backend
//!
//! 1. Implement [`WearLeveler`] (in `crates/wl`). Algebraic mappings
//!    (Start-Gap registers, Security Refresh keys) and table-mapped ones
//!    (SoftWear's indirection table) are both fine — the framework only
//!    needs `map`/`inverse` and the migration protocol.
//! 2. Add a [`SchemeKind`] variant (it carries per-variant knobs and keeps
//!    configs `Copy`).
//! 3. Append a [`StackSpec`] to [`SPECS`] — usually two: the bare stack
//!    (frozen on the first failure) and the revived one via
//!    [`StackCtx::revive`].
//! 4. Run the registry-completeness suite (`tests/tests/registry.rs`) and
//!    capture goldens (`WLR_CAPTURE_GOLDEN=1`); the new names appear in
//!    `--list-stacks`, `WLR_CRASH_STACKS`, `WLR_FLEET_SCHEMES`, etc.

use crate::controller::Controller;
use crate::freep::FreepController;
use crate::lls::LlsController;
use crate::reviver::RevivedController;
use crate::sim::SchemeKind;
use crate::zombie::ZombieController;
use wlr_base::Geometry;
use wlr_pcm::{ErrorCorrection, FaultPlan, PcmDevice};
use wlr_wl::{
    Adaptive, NoWearLeveling, RandomizerKind, SecurityRefresh, SoftWear, Stacked, StartGap,
    TiledStartGap, WearLeveler,
};

/// Everything a stack builder may consult, pre-resolved by
/// [`crate::sim::SimulationBuilder::build`]: the visible geometry, the
/// scheme/pacing knobs, and the one-shot device ingredients (ECC, fault
/// plan). Builders construct exactly one device via [`StackCtx::device`].
#[derive(Debug)]
pub struct StackCtx {
    /// The exact requested scheme (carries per-variant knobs such as
    /// FREE-p's reserve fraction).
    pub kind: SchemeKind,
    /// Software-visible blocks (total minus any FREE-p pre-reserve).
    pub visible: u64,
    /// Blocks pre-reserved for FREE-p remapping (0 elsewhere).
    pub reserve_blocks: u64,
    /// Blocks per OS page.
    pub bpp: u64,
    /// Start-Gap ψ: writes per gap movement.
    pub gap_interval: u64,
    /// Security Refresh writes per swap.
    pub sr_refresh_interval: u64,
    /// Security Refresh region size override.
    pub sr_region_blocks: Option<u64>,
    /// SoftWear writes per hot↔cold swap (defaults to the Security
    /// Refresh interval — both are in-place swap cadences).
    pub sw_swap_interval: u64,
    /// SoftWear cold-scan window in frames.
    pub sw_scan_window: u64,
    /// Adaptive wrapper: writes per CoV evaluation (None = scheme default,
    /// 4× the visible space).
    pub adaptive_epoch: Option<u64>,
    /// Adaptive wrapper CoV band `(lo, hi)`.
    pub adaptive_cov_band: (f64, f64),
    /// LLS salvage-group count.
    pub lls_groups: u64,
    /// LLS maximum chunk count.
    pub lls_chunks: u64,
    /// Remap-cache size, if any.
    pub cache_bytes: Option<usize>,
    /// Experiment seed.
    pub seed: u64,
    /// Start-Gap randomizer (already defaulted to a seeded Feistel).
    pub sg_randomizer: RandomizerKind,
    /// Tile count for tiled Start-Gap.
    pub sg_tiles: u64,
    /// WL-Reviver: per-request invariant checking.
    pub check_invariants: bool,
    /// WL-Reviver: inverse-pointer width in bytes.
    pub reviver_pointer_bytes: u64,
    /// WL-Reviver: one-step chain switching.
    pub reviver_chain_switching: bool,
    /// WL-Reviver: proactive page acquisition.
    pub reviver_proactive: bool,
    geo: Geometry,
    endurance_mean: f64,
    endurance_cov: f64,
    track_contents: bool,
    ecc: Option<Box<dyn ErrorCorrection>>,
    fault_plan: Option<FaultPlan>,
}

/// Device ingredients handed to [`StackCtx`] exactly once per build.
#[derive(Debug)]
pub struct DeviceParts {
    /// Visible-space geometry.
    pub geo: Geometry,
    /// Mean cell endurance.
    pub endurance_mean: f64,
    /// Cell-lifetime CoV.
    pub endurance_cov: f64,
    /// Whether the device tracks block contents (integrity oracle).
    pub track_contents: bool,
    /// The error-correction scheme (consumed by the single device build).
    pub ecc: Box<dyn ErrorCorrection>,
    /// Optional fault-injection schedule.
    pub fault_plan: Option<FaultPlan>,
}

impl StackCtx {
    /// Assembles a context. Called by
    /// [`crate::sim::SimulationBuilder::build`]; exposed for harnesses
    /// that drive stack construction directly.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: SchemeKind,
        visible: u64,
        reserve_blocks: u64,
        bpp: u64,
        parts: DeviceParts,
    ) -> Self {
        StackCtx {
            kind,
            visible,
            reserve_blocks,
            bpp,
            gap_interval: 100,
            sr_refresh_interval: 100,
            sr_region_blocks: None,
            sw_swap_interval: 100,
            sw_scan_window: 16,
            adaptive_epoch: None,
            adaptive_cov_band: (0.75, 1.5),
            lls_groups: 64,
            lls_chunks: 16,
            cache_bytes: None,
            seed: 0,
            sg_randomizer: RandomizerKind::Feistel { seed: 0 },
            sg_tiles: 16,
            check_invariants: false,
            reviver_pointer_bytes: 4,
            reviver_chain_switching: true,
            reviver_proactive: false,
            geo: parts.geo,
            endurance_mean: parts.endurance_mean,
            endurance_cov: parts.endurance_cov,
            track_contents: parts.track_contents,
            ecc: Some(parts.ecc),
            fault_plan: parts.fault_plan,
        }
    }

    /// Builds the PCM device with `extra_blocks` beyond the visible space
    /// (gap lines, tiles, FREE-p reserve, LLS backup chunks).
    ///
    /// # Panics
    ///
    /// Panics if called more than once: a stack has exactly one device.
    pub fn device(&mut self, extra_blocks: u64) -> PcmDevice {
        let ecc = self.ecc.take().expect("a stack builds exactly one device");
        let mut b = PcmDevice::builder(self.geo)
            .extra_blocks(extra_blocks)
            .endurance_mean(self.endurance_mean)
            .endurance_cov(self.endurance_cov)
            .seed(self.seed)
            .ecc(ecc)
            .track_contents(self.track_contents);
        if let Some(plan) = self.fault_plan.take() {
            b = b.fault_plan(plan);
        }
        b.build()
    }

    /// A Start-Gap leveler over the visible space with the configured
    /// randomizer.
    pub fn start_gap(&self) -> Box<dyn WearLeveler> {
        self.start_gap_with(self.sg_randomizer)
    }

    /// A Start-Gap leveler with an explicit randomizer (LLS uses the
    /// half-restricted one).
    pub fn start_gap_with(&self, kind: RandomizerKind) -> Box<dyn WearLeveler> {
        Box::new(
            StartGap::builder(self.visible)
                .gap_interval(self.gap_interval)
                .randomizer(kind)
                .build(),
        )
    }

    /// A Security Refresh leveler over the visible space.
    pub fn security_refresh(&self, seed: u64) -> Box<dyn WearLeveler> {
        let region = self
            .sr_region_blocks
            .unwrap_or_else(|| self.visible & self.visible.wrapping_neg());
        Box::new(
            SecurityRefresh::builder(self.visible)
                .region_blocks(region)
                .refresh_interval(self.sr_refresh_interval)
                .seed(seed)
                .build(),
        )
    }

    /// A SoftWear leveler (table-mapped page sorting) over the visible
    /// space.
    pub fn soft_wear(&self) -> Box<dyn WearLeveler> {
        Box::new(
            SoftWear::builder(self.visible)
                .swap_interval(self.sw_swap_interval)
                .scan_window(self.sw_scan_window)
                .build(),
        )
    }

    /// A SAWL-style adaptive Start-Gap over the visible space.
    pub fn adaptive_start_gap(&self) -> Box<dyn WearLeveler> {
        let inner = StartGap::builder(self.visible)
            .gap_interval(self.gap_interval)
            .randomizer(self.sg_randomizer)
            .build();
        let mut b =
            Adaptive::builder(inner).cov_band(self.adaptive_cov_band.0, self.adaptive_cov_band.1);
        if let Some(epoch) = self.adaptive_epoch {
            b = b.epoch_writes(epoch);
        }
        Box::new(b.build())
    }

    /// The bare baseline assembly: error correction plus `wl`, frozen on
    /// the first unhidden failure (a zero-reserve FREE-p controller).
    pub fn freeze_on_failure(
        &mut self,
        extra_blocks: u64,
        wl: Box<dyn WearLeveler>,
    ) -> Box<dyn Controller> {
        Box::new(FreepController::builder(self.device(extra_blocks), wl, 0).build())
    }

    /// The WL-Reviver assembly over `wl` with the configured framework
    /// knobs (invariants, pointer width, chain switching, proactive
    /// acquisition, remap cache).
    pub fn revive(&mut self, extra_blocks: u64, wl: Box<dyn WearLeveler>) -> Box<dyn Controller> {
        let check = self.check_invariants;
        let pointer = self.reviver_pointer_bytes;
        let chain = self.reviver_chain_switching;
        let proactive = self.reviver_proactive;
        let cache = self.cache_bytes;
        let mut b = RevivedController::builder(self.device(extra_blocks), wl)
            .check_invariants(check)
            .pointer_bytes(pointer)
            .chain_switching(chain)
            .proactive_acquisition(proactive);
        if let Some(bytes) = cache {
            b = b.cache_bytes(bytes);
        }
        Box::new(b.build())
    }
}

/// One registered controller stack.
#[derive(Debug, Clone, Copy)]
pub struct StackSpec {
    /// Canonical short name, used on every CLI/env surface
    /// (`WLR_CRASH_STACKS`, `WLR_FLEET_SCHEMES`, `--list-stacks`, …).
    pub name: &'static str,
    /// Report/JSON title (the historical `SchemeKind`-style CamelCase
    /// names, kept stable so baselines keep matching).
    pub title: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// Whether the stack runs the WL-Reviver framework (survives failures
    /// and participates in crash/recovery harnesses as a reviver).
    pub revivable: bool,
    /// The bare stack used as this stack's lifetime baseline, if any
    /// (for revived stacks: the same scheme frozen on first failure).
    pub bare: Option<&'static str>,
    /// The `SchemeKind` with this stack's default knobs.
    pub kind: SchemeKind,
    build: fn(&mut StackCtx) -> Box<dyn Controller>,
}

impl StackSpec {
    /// Builds the stack's controller from a prepared context.
    pub fn build_stack(&self, ctx: &mut StackCtx) -> Box<dyn Controller> {
        (self.build)(ctx)
    }
}

fn build_ecc_only(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = Box::new(NoWearLeveling::new(ctx.visible));
    ctx.freeze_on_failure(0, wl)
}

fn build_start_gap_only(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.start_gap();
    ctx.freeze_on_failure(1, wl)
}

fn build_security_refresh_only(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.security_refresh(ctx.seed);
    ctx.freeze_on_failure(0, wl)
}

fn build_soft_wear_only(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.soft_wear();
    ctx.freeze_on_failure(0, wl)
}

fn build_adaptive_start_gap_only(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.adaptive_start_gap();
    ctx.freeze_on_failure(1, wl)
}

fn build_freep(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.start_gap();
    let reserve = ctx.reserve_blocks;
    let mut b = FreepController::builder(ctx.device(1 + reserve), wl, reserve);
    if let Some(bytes) = ctx.cache_bytes {
        b = b.cache_bytes(bytes);
    }
    Box::new(b.build())
}

fn build_lls(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let chunk = ((ctx.visible / 16) / ctx.bpp).max(1) * ctx.bpp;
    let wl = ctx.start_gap_with(RandomizerKind::HalfRestricted { seed: ctx.seed });
    let chunks = ctx.lls_chunks;
    let mut b = LlsController::builder(ctx.device(1 + chunk * chunks), wl)
        .chunk_blocks(chunk)
        .max_chunks(chunks)
        .groups(ctx.lls_groups);
    if let Some(bytes) = ctx.cache_bytes {
        b = b.cache_bytes(bytes);
    }
    Box::new(b.build())
}

fn build_zombie(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.start_gap();
    let mut b = ZombieController::builder(ctx.device(1), wl);
    if let Some(bytes) = ctx.cache_bytes {
        b = b.cache_bytes(bytes);
    }
    Box::new(b.build())
}

fn build_reviver_start_gap(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.start_gap();
    ctx.revive(1, wl)
}

fn build_reviver_security_refresh(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.security_refresh(ctx.seed);
    ctx.revive(0, wl)
}

fn build_reviver_tiled_start_gap(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = TiledStartGap::builder(ctx.visible)
        .tiles(ctx.sg_tiles)
        .gap_interval(ctx.gap_interval)
        .randomizer(ctx.sg_randomizer)
        .build();
    let tiles = ctx.sg_tiles;
    ctx.revive(tiles, Box::new(wl))
}

fn build_reviver_two_level_sr(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let inner_region = (ctx.visible & ctx.visible.wrapping_neg()).min(64);
    let wl = Stacked::two_level_security_refresh(
        ctx.visible,
        inner_region,
        ctx.sr_refresh_interval,
        ctx.sr_refresh_interval * 4,
        ctx.seed,
    );
    ctx.revive(0, Box::new(wl))
}

fn build_reviver_soft_wear(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.soft_wear();
    ctx.revive(0, wl)
}

fn build_reviver_adaptive_start_gap(ctx: &mut StackCtx) -> Box<dyn Controller> {
    let wl = ctx.adaptive_start_gap();
    ctx.revive(1, wl)
}

/// Every registered stack, in canonical sweep order: bare baselines first,
/// then the failure-tolerant baselines, then the revived stacks.
pub const SPECS: &[StackSpec] = &[
    StackSpec {
        name: "ecc",
        title: "EccOnly",
        description: "error correction only; every failure costs a page",
        revivable: false,
        bare: None,
        kind: SchemeKind::EccOnly,
        build: build_ecc_only,
    },
    StackSpec {
        name: "sg",
        title: "StartGap",
        description: "Start-Gap, frozen on the first unhidden failure",
        revivable: false,
        bare: None,
        kind: SchemeKind::StartGapOnly,
        build: build_start_gap_only,
    },
    StackSpec {
        name: "sr",
        title: "SecurityRefresh",
        description: "Security Refresh, frozen on the first unhidden failure",
        revivable: false,
        bare: None,
        kind: SchemeKind::SecurityRefreshOnly,
        build: build_security_refresh_only,
    },
    StackSpec {
        name: "softwear",
        title: "SoftWear",
        description: "SoftWear table-mapped page sorting, frozen on the first failure",
        revivable: false,
        bare: None,
        kind: SchemeKind::SoftWear,
        build: build_soft_wear_only,
    },
    StackSpec {
        name: "adaptive-sg",
        title: "AdaptiveStartGap",
        description: "SAWL-style adaptive Start-Gap, frozen on the first failure",
        revivable: false,
        bare: None,
        kind: SchemeKind::AdaptiveStartGap,
        build: build_adaptive_start_gap_only,
    },
    StackSpec {
        name: "freep",
        title: "Freep",
        description: "FREE-p with a pre-reserved remap region (default 10%)",
        revivable: false,
        bare: Some("sg"),
        kind: SchemeKind::Freep { reserve_frac: 0.1 },
        build: build_freep,
    },
    StackSpec {
        name: "lls",
        title: "Lls",
        description: "the LLS salvage baseline",
        revivable: false,
        bare: Some("sg"),
        kind: SchemeKind::Lls,
        build: build_lls,
    },
    StackSpec {
        name: "zombie",
        title: "Zombie",
        description: "Zombie-adapted baseline: spares from retired pages, WL frozen",
        revivable: false,
        bare: Some("sg"),
        kind: SchemeKind::Zombie,
        build: build_zombie,
    },
    StackSpec {
        name: "reviver-sg",
        title: "ReviverStartGap",
        description: "WL-Reviver over Start-Gap",
        revivable: true,
        bare: Some("sg"),
        kind: SchemeKind::ReviverStartGap,
        build: build_reviver_start_gap,
    },
    StackSpec {
        name: "reviver-sr",
        title: "ReviverSecurityRefresh",
        description: "WL-Reviver over Security Refresh",
        revivable: true,
        bare: Some("sr"),
        kind: SchemeKind::ReviverSecurityRefresh,
        build: build_reviver_security_refresh,
    },
    StackSpec {
        name: "reviver-tiled",
        title: "ReviverTiledStartGap",
        description: "WL-Reviver over region-tiled Start-Gap",
        revivable: true,
        bare: Some("sg"),
        kind: SchemeKind::ReviverTiledStartGap,
        build: build_reviver_tiled_start_gap,
    },
    StackSpec {
        name: "reviver-sr2",
        title: "ReviverTwoLevelSecurityRefresh",
        description: "WL-Reviver over two-level Security Refresh",
        revivable: true,
        bare: Some("sr"),
        kind: SchemeKind::ReviverTwoLevelSecurityRefresh,
        build: build_reviver_two_level_sr,
    },
    StackSpec {
        name: "softwear-wlr",
        title: "ReviverSoftWear",
        description: "WL-Reviver over SoftWear (table-mapped corner of the framework)",
        revivable: true,
        bare: Some("softwear"),
        kind: SchemeKind::ReviverSoftWear,
        build: build_reviver_soft_wear,
    },
    StackSpec {
        name: "adaptive-sg-wlr",
        title: "ReviverAdaptiveStartGap",
        description: "WL-Reviver over SAWL-style adaptive Start-Gap",
        revivable: true,
        bare: Some("adaptive-sg"),
        kind: SchemeKind::ReviverAdaptiveStartGap,
        build: build_reviver_adaptive_start_gap,
    },
];

/// An unknown stack name, carrying the valid names for the error message.
#[derive(Debug, Clone)]
pub struct UnknownStack {
    /// The name that failed to resolve.
    pub name: String,
}

impl core::fmt::Display for UnknownStack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown stack {:?}; valid stacks: {}",
            self.name,
            SchemeRegistry::global()
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownStack {}

/// The registry of every known controller stack. See the module docs.
#[derive(Debug)]
pub struct SchemeRegistry {
    specs: &'static [StackSpec],
}

static GLOBAL: SchemeRegistry = SchemeRegistry { specs: SPECS };

impl SchemeRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static SchemeRegistry {
        &GLOBAL
    }

    /// All stacks in canonical sweep order.
    pub fn iter(&self) -> impl Iterator<Item = &'static StackSpec> {
        self.specs.iter()
    }

    /// All revived (WL-Reviver) stacks.
    pub fn revivable(&self) -> impl Iterator<Item = &'static StackSpec> {
        self.specs.iter().filter(|s| s.revivable)
    }

    /// Looks a stack up by canonical name or report title.
    pub fn get(&self, name: &str) -> Option<&'static StackSpec> {
        self.specs
            .iter()
            .find(|s| s.name == name || s.title == name)
    }

    /// As [`Self::get`], with an error naming every valid stack.
    pub fn resolve(&self, name: &str) -> Result<&'static StackSpec, UnknownStack> {
        self.get(name).ok_or_else(|| UnknownStack {
            name: name.to_string(),
        })
    }

    /// Resolves a comma-separated stack list (whitespace tolerated,
    /// empty segments ignored).
    pub fn resolve_list(&self, csv: &str) -> Result<Vec<&'static StackSpec>, UnknownStack> {
        csv.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| self.resolve(s))
            .collect()
    }

    /// The canonical names, in sweep order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }

    /// The `SchemeKind` registered under `name` (with its default knob
    /// payload) — for binaries that hard-code registry names.
    ///
    /// # Panics
    ///
    /// Panics with the valid-name list if `name` is not registered.
    pub fn kind(&self, name: &str) -> SchemeKind {
        self.resolve(name).unwrap_or_else(|e| panic!("{e}")).kind
    }

    /// The spec registered for `kind` (knob payloads are ignored: the
    /// spec's builder reads them from the [`StackCtx`]).
    ///
    /// # Panics
    ///
    /// Panics if `kind` has no registered spec — a bug by construction,
    /// enforced by the registry-completeness suite.
    pub fn spec_for(&self, kind: SchemeKind) -> &'static StackSpec {
        self.specs
            .iter()
            .find(|s| core::mem::discriminant(&s.kind) == core::mem::discriminant(&kind))
            .unwrap_or_else(|| panic!("SchemeKind {kind:?} is not registered"))
    }
}
