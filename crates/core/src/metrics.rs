//! Time-series metrics for the experiments.
//!
//! Every figure in the paper is a function of the number of software
//! writes issued: block survival rate (Figure 6), user-usable space
//! (Figures 7 and 8), or a scalar derived from the series (Figure 5's
//! writes-to-30%-failure). The simulator records a [`SamplePoint`] every
//! `sample_interval` writes; the bench harness prints the series.

/// One sample of the simulation's observable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Software writes issued so far.
    pub writes: u64,
    /// Fraction of software-visible blocks still alive (Figure 6 y-axis).
    pub survival: f64,
    /// Fraction of the total PCM usable by software: visible space minus
    /// retired pages, over visible space plus controller reserves
    /// (Figures 7 and 8 y-axis).
    pub usable: f64,
    /// Average PCM accesses per software request in the window since the
    /// previous sample (Table II metric).
    pub avg_access_time: f64,
    /// Whether the wear-leveling scheme was still migrating at this point.
    pub wl_active: bool,
}

/// An append-only series of [`SamplePoint`]s.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<SamplePoint>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `point.writes` is not monotonically non-decreasing.
    pub fn push(&mut self, point: SamplePoint) {
        if let Some(last) = self.points.last() {
            assert!(
                point.writes >= last.writes,
                "samples must be recorded in write order"
            );
        }
        self.points.push(point);
    }

    /// The recorded samples.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Linearly interpolated write count at which `survival` first drops
    /// to `target`, or `None` if it never does within the series.
    pub fn writes_at_survival(&self, target: f64) -> Option<u64> {
        self.crossing(target, |p| p.survival)
    }

    /// Linearly interpolated write count at which `usable` first drops to
    /// `target`, or `None`.
    pub fn writes_at_usable(&self, target: f64) -> Option<u64> {
        self.crossing(target, |p| p.usable)
    }

    fn crossing(&self, target: f64, metric: impl Fn(&SamplePoint) -> f64) -> Option<u64> {
        let mut prev: Option<&SamplePoint> = None;
        for p in &self.points {
            let v = metric(p);
            if v <= target {
                return Some(match prev {
                    Some(q) => {
                        let qv = metric(q);
                        if qv <= v {
                            p.writes
                        } else {
                            let frac = (qv - target) / (qv - v);
                            q.writes + ((p.writes - q.writes) as f64 * frac) as u64
                        }
                    }
                    None => p.writes,
                });
            }
            prev = Some(p);
        }
        None
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a SamplePoint;
    type IntoIter = std::slice::Iter<'a, SamplePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(writes: u64, survival: f64, usable: f64) -> SamplePoint {
        SamplePoint {
            writes,
            survival,
            usable,
            avg_access_time: 1.0,
            wl_active: true,
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new();
        s.push(pt(0, 1.0, 1.0));
        s.push(pt(100, 0.9, 0.95));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let writes: Vec<u64> = (&s).into_iter().map(|p| p.writes).collect();
        assert_eq!(writes, vec![0, 100]);
    }

    #[test]
    #[should_panic(expected = "write order")]
    fn rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.push(pt(100, 1.0, 1.0));
        s.push(pt(50, 1.0, 1.0));
    }

    #[test]
    fn crossing_interpolates() {
        let mut s = TimeSeries::new();
        s.push(pt(0, 1.0, 1.0));
        s.push(pt(100, 0.8, 1.0));
        // survival hits 0.9 halfway between samples.
        assert_eq!(s.writes_at_survival(0.9), Some(50));
        assert_eq!(s.writes_at_survival(0.8), Some(100));
        assert_eq!(s.writes_at_survival(0.5), None);
    }

    #[test]
    fn crossing_at_first_sample() {
        let mut s = TimeSeries::new();
        s.push(pt(10, 0.5, 0.5));
        assert_eq!(s.writes_at_survival(0.7), Some(10));
        assert_eq!(s.writes_at_usable(0.7), Some(10));
    }

    #[test]
    fn flat_series_has_no_crossing() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(pt(i * 10, 1.0, 1.0));
        }
        assert_eq!(s.writes_at_survival(0.7), None);
    }
}

/// Wear-distribution quality over a device's visible blocks: how flat the
/// leveling kept the write counts. The paper argues WL-Reviver "neither
/// compromises nor improves a scheme's wear-leveling efficacy" — these
/// statistics let experiments check exactly that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearReport {
    /// Mean writes per block.
    pub mean: f64,
    /// Coefficient of variation of per-block wear (0 = perfectly flat).
    pub cov: f64,
    /// Gini coefficient of per-block wear (0 = perfectly flat, 1 = all
    /// wear on one block).
    pub gini: f64,
    /// Ratio of the maximum block wear to the mean (the "hottest block"
    /// overshoot an attacker tries to maximize).
    pub max_over_mean: f64,
}

impl WearReport {
    /// Computes the report from a wear snapshot (see
    /// [`wlr_pcm::PcmDevice::wear_snapshot`]), typically truncated to the
    /// software-visible prefix.
    ///
    /// # Panics
    ///
    /// Panics if `wear` is empty.
    pub fn from_wear(wear: &[u32]) -> Self {
        assert!(!wear.is_empty(), "wear report of an empty device");
        let n = wear.len() as f64;
        let mean = wear.iter().map(|&w| w as f64).sum::<f64>() / n;
        let var = wear
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let cov = if mean == 0.0 { 0.0 } else { var.sqrt() / mean };
        let max = wear.iter().copied().max().unwrap_or(0) as f64;

        // Gini via the sorted-rank identity:
        // G = (2·Σ i·xᵢ) / (n·Σ xᵢ) − (n+1)/n with xᵢ ascending, i from 1.
        let mut sorted: Vec<u32> = wear.to_vec();
        sorted.sort_unstable();
        let total: f64 = sorted.iter().map(|&w| w as f64).sum();
        let gini = if total == 0.0 {
            0.0
        } else {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &w)| (i as f64 + 1.0) * w as f64)
                .sum();
            (2.0 * weighted) / (n * total) - (n + 1.0) / n
        };
        WearReport {
            mean,
            cov,
            gini,
            max_over_mean: if mean == 0.0 { 0.0 } else { max / mean },
        }
    }
}

// The mergeable wear histogram now lives in `wlr_base::stats` (it is
// shared with the multi-bank front-end's cross-bank aggregation); the
// re-export keeps every historical `wl_reviver::metrics::WearHistogram`
// path working.
pub use wlr_base::stats::WearHistogram;

#[cfg(test)]
mod histogram_tests {
    use super::*;

    #[test]
    fn histogram_cov_matches_exact_wear_report() {
        // Matches the exact WearReport CoV on the same data — the
        // re-exported base histogram and the local report must agree.
        let h = WearHistogram::from_wear(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let report = WearReport::from_wear(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(
            (h.cov() - report.cov).abs() < 1e-12,
            "{} vs {}",
            h.cov(),
            report.cov
        );
    }
}

#[cfg(test)]
mod wear_tests {
    use super::*;

    #[test]
    fn flat_wear_scores_zero() {
        let r = WearReport::from_wear(&[7; 100]);
        assert_eq!(r.mean, 7.0);
        assert!(r.cov.abs() < 1e-12);
        assert!(r.gini.abs() < 1e-9);
        assert!((r.max_over_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentrated_wear_scores_high() {
        let mut wear = vec![0u32; 100];
        wear[0] = 1000;
        let r = WearReport::from_wear(&wear);
        assert!(r.gini > 0.95, "gini {}", r.gini);
        assert!(r.max_over_mean > 90.0);
        assert!(r.cov > 5.0);
    }

    #[test]
    fn gini_of_linear_ramp() {
        // xᵢ = i for i in 1..=n has Gini → 1/3 as n grows.
        let wear: Vec<u32> = (1..=1000).collect();
        let r = WearReport::from_wear(&wear);
        assert!((r.gini - 1.0 / 3.0).abs() < 0.01, "gini {}", r.gini);
    }

    #[test]
    fn untouched_device_is_flat() {
        let r = WearReport::from_wear(&[0; 10]);
        assert_eq!(r.cov, 0.0);
        assert_eq!(r.gini, 0.0);
        assert_eq!(r.max_over_mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty device")]
    fn empty_panics() {
        WearReport::from_wear(&[]);
    }
}
