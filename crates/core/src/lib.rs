//! WL-Reviver: reviving any PCM wear-leveling scheme in the face of block
//! failures — a full reproduction of the DSN 2014 paper.
//!
//! State-of-the-art PCM wear leveling (Start-Gap, Security Refresh) maps
//! physical addresses to device addresses with cheap algebraic bijections
//! and ceases to function the moment a single block fails in its working
//! space. WL-Reviver is a framework that hides failures behind *shadow
//! blocks* reached through *virtual shadow blocks* — reserved physical
//! addresses harvested from OS page retirement — so that any unmodified
//! wear-leveling scheme keeps delivering its leveling service, with no OS
//! support beyond the standard access-error exception.
//!
//! The crate layers:
//!
//! * [`reviver::RevivedController`] — the framework (§III of the paper);
//! * [`freep::FreepController`] — the FREE-p-adapted baseline (Figure 7)
//!   which, at 0% reserve, is also the plain `ECC+WL` baseline that halts
//!   on the first failure (Figures 5 and 6);
//! * [`lls::LlsController`] — the LLS baseline (Figure 8, Table II);
//! * [`zombie::ZombieController`] — the Zombie-adapted baseline (§I-C):
//!   incremental page acquisition like WL-Reviver, but direct DA links
//!   that force wear leveling to freeze;
//! * [`cache::RemapCache`] — the 32 KB remap cache of Table II;
//! * [`sim::Simulation`] — the trace-driven simulation loop binding a
//!   workload (`wlr-trace`), the OS model (`wlr-os`), a controller, and
//!   the PCM device (`wlr-pcm`) together;
//! * [`metrics`] — time-series sampling of survival rate, usable space,
//!   and average access time — the y-axes of the paper's figures.
//!
//! # Quickstart
//!
//! ```
//! use wl_reviver::sim::{Simulation, SchemeKind, StopCondition};
//! use wlr_trace::Benchmark;
//!
//! let mut sim = Simulation::builder()
//!     .num_blocks(1 << 12)
//!     .endurance_mean(2_000.0)
//!     .scheme(SchemeKind::ReviverStartGap)
//!     .workload(Benchmark::Ocean.build(1 << 12, 7))
//!     .seed(7)
//!     .build();
//! let outcome = sim.run(StopCondition::DeadFraction(0.05));
//! assert!(outcome.writes_issued > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod controller;
pub mod error;
pub mod freep;
pub mod lls;
pub mod metrics;
pub mod recovery;
pub mod registry;
pub mod reviver;
pub mod sim;
pub mod zombie;

pub use cache::RemapCache;
pub use controller::{Controller, RequestStats, WriteResult};
pub use error::{BuilderError, ReviverError};
pub use freep::FreepController;
pub use lls::LlsController;
pub use metrics::{WearHistogram, WearReport};
pub use recovery::{PersistedMeta, RecoveryReport, TornMeta};
pub use registry::{SchemeRegistry, StackSpec, UnknownStack};
#[cfg(feature = "trace-events")]
pub use reviver::JsonlSink;
pub use reviver::{
    EventSink, InvariantSink, MetricsSink, NoopSink, RecoveryPhase, RevivalMetrics,
    RevivedController, ReviverCounters, ReviverEvent, TraceRingSink, ViolationKind,
};
pub use sim::{AppRead, BatchStatus, SchemeKind, SimSnapshot, Simulation, StopCondition};
pub use zombie::ZombieController;
