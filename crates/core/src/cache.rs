//! The remap cache used for Table II.
//!
//! Accessing a failed block costs an extra PCM access (reading the pointer
//! stored in the failed block) under WL-Reviver, and two extra accesses
//! (bitmap + backup) under LLS. The LLS paper proposes a small SRAM cache
//! of remap resolutions to hide that cost; the WL-Reviver paper configures
//! a 32 KB cache *for both* schemes in Table II for fairness. This module
//! is that cache: a set-associative, LRU, u64→u64 map sized in bytes.

/// A set-associative LRU cache from `u64` keys to `u64` values.
///
/// WL-Reviver caches *failed DA → virtual shadow PA* (the pointer it would
/// otherwise read from the failed block); the shadow's current DA is then
/// one register-arithmetic mapping away, so a hit costs zero extra PCM
/// accesses. LLS caches *failed DA → backup DA*.
///
/// ```
/// use wl_reviver::cache::RemapCache;
/// let mut c = RemapCache::with_capacity_bytes(1024);
/// assert_eq!(c.get(7), None);
/// c.insert(7, 99);
/// assert_eq!(c.get(7), Some(99));
/// c.invalidate(7);
/// assert_eq!(c.get(7), None);
/// ```
#[derive(Debug, Clone)]
pub struct RemapCache {
    /// `sets × ways` entries; `None` = invalid.
    slots: Vec<Option<Entry>>,
    sets: usize,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    value: u64,
    last_used: u64,
}

/// Bytes accounted per entry (tag + value + metadata), matching the 8-byte
/// granularity the paper's 32 KB figure implies (32 KB → 4096 entries).
pub const ENTRY_BYTES: usize = 8;

impl RemapCache {
    /// A cache of approximately `bytes` capacity (4-way set associative;
    /// sets rounded down to a power of two, minimum one set).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one way set (`4 × ENTRY_BYTES`).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        let ways = 4;
        assert!(
            bytes >= ways * ENTRY_BYTES,
            "cache must hold at least one set ({} B)",
            ways * ENTRY_BYTES
        );
        let entries = bytes / ENTRY_BYTES;
        // Largest power of two not exceeding entries/ways.
        let sets = (1usize << (usize::BITS - 1 - (entries / ways).leading_zeros())).max(1);
        RemapCache {
            slots: vec![None; sets * ways],
            sets,
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        // Multiplicative hash to spread sequential DAs across sets.
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.sets - 1)
    }

    /// Looks `key` up, updating LRU state and hit/miss counters.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        self.tick += 1;
        let base = self.set_of(key) * self.ways;
        for e in self.slots[base..base + self.ways].iter_mut().flatten() {
            if e.key == key {
                e.last_used = self.tick;
                self.hits += 1;
                return Some(e.value);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts or updates `key`, evicting the set's LRU entry if full.
    pub fn insert(&mut self, key: u64, value: u64) {
        self.tick += 1;
        let base = self.set_of(key) * self.ways;
        let set = &mut self.slots[base..base + self.ways];
        // Update in place if present.
        for e in set.iter_mut().flatten() {
            if e.key == key {
                e.value = value;
                e.last_used = self.tick;
                return;
            }
        }
        // Fill an invalid way, or evict the LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, slot) in set.iter().enumerate() {
            match slot {
                None => {
                    victim = i;
                    break;
                }
                Some(e) if e.last_used < oldest => {
                    oldest = e.last_used;
                    victim = i;
                }
                Some(_) => {}
            }
        }
        set[victim] = Some(Entry {
            key,
            value,
            last_used: self.tick,
        });
    }

    /// Drops `key` if cached (used when a pointer is rewritten by a
    /// virtual-shadow switch).
    pub fn invalidate(&mut self, key: u64) {
        let base = self.set_of(key) * self.ways;
        for slot in &mut self.slots[base..base + self.ways] {
            if matches!(slot, Some(e) if e.key == key) {
                *slot = None;
            }
        }
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]` (0 when never queried).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_paper_config() {
        let c = RemapCache::with_capacity_bytes(32 * 1024);
        assert_eq!(c.capacity(), 4096);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut c = RemapCache::with_capacity_bytes(256);
        for k in 0..8u64 {
            c.insert(k, k * 10);
        }
        for k in 0..8u64 {
            assert_eq!(c.get(k), Some(k * 10), "key {k}");
        }
    }

    #[test]
    fn update_in_place() {
        let mut c = RemapCache::with_capacity_bytes(256);
        c.insert(5, 1);
        c.insert(5, 2);
        assert_eq!(c.get(5), Some(2));
    }

    #[test]
    fn lru_evicts_oldest_in_set() {
        // One set of 4 ways.
        let mut c = RemapCache::with_capacity_bytes(32);
        assert_eq!(c.capacity(), 4);
        for k in 0..4u64 {
            c.insert(k, k);
        }
        c.get(0); // refresh key 0
        c.insert(100, 100); // evicts LRU among {1,2,3}
        assert_eq!(c.get(0), Some(0), "recently used key must survive");
        assert_eq!(c.get(100), Some(100));
        let survivors = (1..4).filter(|&k| c.get(k).is_some()).count();
        assert_eq!(survivors, 2, "exactly one of the old keys was evicted");
    }

    #[test]
    fn invalidate_removes() {
        let mut c = RemapCache::with_capacity_bytes(256);
        c.insert(9, 9);
        c.invalidate(9);
        assert_eq!(c.get(9), None);
        // Invalidating a missing key is a no-op.
        c.invalidate(12345);
    }

    #[test]
    fn hit_ratio_tracks() {
        let mut c = RemapCache::with_capacity_bytes(256);
        c.insert(1, 1);
        assert_eq!(c.get(1), Some(1));
        assert_eq!(c.get(2), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fresh_cache_ratio_is_zero() {
        let c = RemapCache::with_capacity_bytes(256);
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn tiny_capacity_panics() {
        RemapCache::with_capacity_bytes(8);
    }

    mod properties {
        use super::*;
        use wlr_base::rng::Rng;

        /// Against a reference map: a cache hit must return the last
        /// inserted value for that key (staleness = correctness bug;
        /// misses are always allowed).
        #[test]
        fn hits_are_never_stale() {
            let mut rng = Rng::stream(0xCAC4, 0);
            for _ in 0..16 {
                let mut cache = RemapCache::with_capacity_bytes(256);
                let mut model = std::collections::HashMap::new();
                for _ in 0..rng.gen_range(400) {
                    let key = rng.gen_range(64);
                    let value = rng.gen_range(1000);
                    if rng.gen_bool(0.5) {
                        cache.insert(key, value);
                        model.insert(key, value);
                    } else if let Some(got) = cache.get(key) {
                        assert_eq!(Some(&got), model.get(&key), "stale hit for {key}");
                    }
                }
            }
        }

        /// Invalidation is immediate and local.
        #[test]
        fn invalidate_is_immediate() {
            let mut rng = Rng::stream(0xCAC4, 1);
            for _ in 0..16 {
                let keys: Vec<u64> = (0..1 + rng.gen_range(49))
                    .map(|_| rng.gen_range(32))
                    .collect();
                let mut cache = RemapCache::with_capacity_bytes(512);
                for &k in &keys {
                    cache.insert(k, k + 1);
                }
                let victim = keys[0];
                cache.invalidate(victim);
                assert_eq!(cache.get(victim), None);
            }
        }
    }

    #[test]
    fn heavy_traffic_stays_consistent() {
        let mut c = RemapCache::with_capacity_bytes(1024);
        for i in 0..10_000u64 {
            c.insert(i % 300, i);
            if let Some(v) = c.get(i % 151) {
                assert_eq!(v % 300 % 151, (i % 151) % 300 % 151);
            }
        }
    }
}
