//! The Zombie baseline (Azevedo et al., ISCA'13), as characterized in
//! §I-C/§II of the WL-Reviver paper.
//!
//! Zombie pairs a failed block in a working page with a spare block taken
//! from a *disabled* (OS-retired) page, recording the spare's device
//! address in the failed block. Space is acquired incrementally — one
//! page per ~spare-supply exhaustion, exactly like WL-Reviver's virtual
//! spare space — but the link is a **DA→DA pointer**: §I-D's third issue
//! applies in full. If wear leveling migrated data, a spare's content
//! would move and the failed block "cannot find its data via its recorded
//! address"; since neither FREE-p nor Zombie record a back pointer,
//! re-linking would be prohibitively expensive. The faithful adaptation
//! is therefore the same as for FREE-p: **wear leveling freezes at the
//! first block failure**, after which Zombie keeps the *pages* alive by
//! hiding subsequent failures behind spares from retired pages.
//!
//! Comparing the three (Figure 6-style):
//!
//! * `EccOnly` — every failure costs a 64-block page;
//! * `Zombie` — a failure costs one spare block; a page is sacrificed
//!   only when the spare pool runs dry (≈1 page per 64 failures), but
//!   leveling is dead, so hot blocks keep failing fast;
//! * `WL-Reviver` — same incremental page cost *and* the scheme keeps
//!   leveling, which is the paper's whole point.

use crate::cache::RemapCache;
use crate::controller::{Controller, RequestStats, WriteResult};
use wlr_base::dense::DenseMap;
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::{PcmDevice, WriteOutcome};
use wlr_wl::{Migration, WearLeveler};

/// Event counters for the Zombie baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZombieCounters {
    /// Failed blocks linked to spare blocks.
    pub links: u64,
    /// Failures reported to the OS (pool empty → page acquisition).
    pub reports: u64,
    /// Pages harvested for spares.
    pub page_grants: u64,
    /// Reads of blocks whose data was lost with the failure.
    pub garbage_reads: u64,
}

/// Builder for [`ZombieController`].
#[derive(Debug)]
pub struct ZombieControllerBuilder {
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    cache_bytes: Option<usize>,
}

impl ZombieControllerBuilder {
    /// Attaches a remap cache.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Constructs the controller.
    ///
    /// # Panics
    ///
    /// Panics if the wear-leveler does not match the geometry.
    pub fn build(self) -> ZombieController {
        let geo = *self.device.geometry();
        assert_eq!(
            self.wl.len(),
            geo.num_blocks(),
            "wear-leveler PA space must match the geometry"
        );
        let total = self.device.total_blocks();
        ZombieController {
            geo,
            device: self.device,
            wl: self.wl,
            spares: Vec::new(),
            links: DenseMap::with_capacity(total),
            frozen: false,
            retired: vec![false; geo.num_pages() as usize],
            cache: self.cache_bytes.map(RemapCache::with_capacity_bytes),
            req: RequestStats::default(),
            counters: ZombieCounters::default(),
        }
    }
}

/// The Zombie-adapted controller (see module docs).
///
/// ```
/// use wlr_base::{Geometry, Pa};
/// use wlr_pcm::{Ecp, PcmDevice};
/// use wlr_wl::NoWearLeveling;
/// use wl_reviver::controller::Controller;
/// use wl_reviver::zombie::ZombieController;
///
/// let geo = Geometry::builder().num_blocks(128).build()?;
/// let device = PcmDevice::builder(geo).build();
/// let ctl = ZombieController::builder(device, Box::new(NoWearLeveling::new(128))).build();
/// assert!(ctl.wl_active());
/// assert_eq!(ctl.free_spares(), 0);
/// # Ok::<(), wlr_base::geometry::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct ZombieController {
    geo: Geometry,
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    /// Spare device blocks from retired pages (fixed DAs — the mapping is
    /// frozen by the time any are used).
    spares: Vec<Da>,
    /// failed DA → spare DA (Zombie's direct pairing pointer).
    links: DenseMap<Da>,
    frozen: bool,
    retired: Vec<bool>,
    cache: Option<RemapCache>,
    req: RequestStats,
    counters: ZombieCounters,
}

impl Clone for ZombieController {
    fn clone(&self) -> Self {
        ZombieController {
            geo: self.geo,
            device: self.device.clone(),
            wl: self.wl.clone_box(),
            spares: self.spares.clone(),
            links: self.links.clone(),
            frozen: self.frozen,
            retired: self.retired.clone(),
            cache: self.cache.clone(),
            req: self.req,
            counters: self.counters,
        }
    }
}

impl ZombieController {
    /// Starts building a Zombie controller over `device` driving `wl`.
    pub fn builder(device: PcmDevice, wl: Box<dyn WearLeveler>) -> ZombieControllerBuilder {
        ZombieControllerBuilder {
            device,
            wl,
            cache_bytes: None,
        }
    }

    /// Event counters.
    pub fn counters(&self) -> ZombieCounters {
        self.counters
    }

    /// Spare blocks currently available.
    pub fn free_spares(&self) -> u64 {
        self.spares.len() as u64
    }

    /// Whether wear leveling has been crippled (true from the first
    /// failure onward — the adaptation's premise).
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    fn resolve_link(&mut self, da: Da, acct: bool) -> Option<Da> {
        if let Some(c) = &mut self.cache {
            if let Some(s) = c.get(da.index()) {
                return Some(Da::new(s));
            }
        }
        let s = self.links.get(da.index()).copied();
        if let Some(s) = s {
            self.device.read(da); // pairing pointer lives in the failed block
            if acct {
                self.req.accesses += 1;
            }
            if let Some(c) = &mut self.cache {
                c.insert(da.index(), s.index());
            }
        }
        s
    }

    fn follow_links(&mut self, da: Da, acct: bool) -> Option<Da> {
        let mut cur = da;
        let mut fuel = self.links.len() + 2;
        while self.device.is_dead(cur) {
            if fuel == 0 {
                return None;
            }
            fuel -= 1;
            cur = self.resolve_link(cur, acct)?;
        }
        Some(cur)
    }

    /// Writes through the link chain; `Err(())` = needs a page from the OS.
    fn write_da(&mut self, da: Da, tag: u64, acct: bool) -> Result<(), ()> {
        let mut target = da;
        if self.device.is_dead(target) {
            match self.follow_links(target, acct) {
                Some(t) => target = t,
                None => {
                    // Dead, unlinked end of chain: link it now if we can.
                    target = self.link_last_dead(target)?;
                }
            }
        }
        let mut fuel = self.links.len() + self.spares.len() + 4;
        loop {
            assert!(fuel > 0, "zombie chain failed to converge at {da}");
            fuel -= 1;
            match self.device.write_tagged(target, tag) {
                WriteOutcome::Ok => {
                    if acct {
                        self.req.accesses += 1;
                    }
                    return Ok(());
                }
                WriteOutcome::AlreadyDead => match self.resolve_link(target, acct) {
                    Some(next) => target = next,
                    None => target = self.link_last_dead(target)?,
                },
                WriteOutcome::NewFailure => {
                    if acct {
                        self.req.accesses += 1;
                    }
                    // First failure anywhere freezes the scheme (module
                    // docs); afterwards spares hide the damage.
                    self.frozen = true;
                    target = self.link_last_dead(target)?;
                }
                // Injected power loss: drop the write.
                WriteOutcome::Lost => return Err(()),
            }
        }
    }

    /// Pairs dead block `dead` with a fresh spare, or asks for a page.
    fn link_last_dead(&mut self, dead: Da) -> Result<Da, ()> {
        self.frozen = true;
        let Some(spare) = self.spares.pop() else {
            return Err(());
        };
        self.links.insert(dead.index(), spare);
        self.device.write(dead); // store the pairing pointer
        if let Some(c) = &mut self.cache {
            c.insert(dead.index(), spare.index());
        }
        self.counters.links += 1;
        Ok(spare)
    }

    fn run_migrations(&mut self) {
        while !self.frozen {
            let Some(m) = self.wl.pending() else { break };
            match m {
                Migration::Copy { src, dst } => {
                    let t = self.read_block(src, false);
                    match self.device.write_tagged(dst, t) {
                        WriteOutcome::Ok => self.wl.complete_migration(),
                        _ => {
                            self.frozen = true;
                            return;
                        }
                    }
                }
                Migration::Swap { a, b } => {
                    let ta = self.read_block(a, false);
                    let tb = self.read_block(b, false);
                    self.wl.complete_migration();
                    let ra = self.device.write_tagged(b, ta);
                    let rb = self.device.write_tagged(a, tb);
                    if ra != WriteOutcome::Ok || rb != WriteOutcome::Ok {
                        self.frozen = true;
                        return;
                    }
                }
            }
        }
    }

    fn read_block(&mut self, da: Da, acct: bool) -> u64 {
        if !self.device.is_dead(da) {
            self.device.read(da);
            if acct {
                self.req.accesses += 1;
            }
            return self.device.tag(da);
        }
        match self.follow_links(da, acct) {
            Some(t) => {
                self.device.read(t);
                if acct {
                    self.req.accesses += 1;
                }
                self.device.tag(t)
            }
            None => {
                self.counters.garbage_reads += 1;
                self.device.read(da);
                if acct {
                    self.req.accesses += 1;
                }
                0
            }
        }
    }
}

impl Controller for ZombieController {
    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn read(&mut self, pa: Pa) -> u64 {
        self.req.requests += 1;
        let da = self.wl.map(pa);
        self.read_block(da, true)
    }

    fn write(&mut self, pa: Pa, tag: u64) -> WriteResult {
        self.req.requests += 1;
        let da = self.wl.map(pa);
        match self.write_da(da, tag, true) {
            Ok(()) => {
                if !self.frozen {
                    self.wl.record_write(pa);
                    self.run_migrations();
                }
                WriteResult::Ok
            }
            Err(()) => {
                self.counters.reports += 1;
                WriteResult::ReportFailure(pa)
            }
        }
    }

    fn on_page_retired(&mut self, page: PageId) {
        if self.retired[page.as_usize()] {
            return;
        }
        self.retired[page.as_usize()] = true;
        // The disabled page's blocks become spares, addressed by the
        // (now frozen) mapping of its PAs.
        let healthy: Vec<Da> = self
            .geo
            .page_pas(page)
            .map(|pa| self.wl.map(pa))
            .filter(|&da| !self.device.is_dead(da) && !self.links.contains_key(da.index()))
            .collect();
        self.spares.extend(healthy);
        self.counters.page_grants += 1;
    }

    fn device(&self) -> &PcmDevice {
        &self.device
    }

    fn device_mut(&mut self) -> &mut PcmDevice {
        &mut self.device
    }

    fn wl_active(&self) -> bool {
        !self.frozen
    }

    fn request_stats(&self) -> RequestStats {
        self.req
    }

    fn reset_request_stats(&mut self) {
        self.req = RequestStats::default();
    }

    fn fork_box(&self) -> Option<Box<dyn Controller>> {
        Some(Box::new(self.clone()))
    }

    fn label(&self) -> String {
        let wl = match self.wl.label().as_str() {
            "Start-Gap" => "SG-",
            "Security-Refresh" => "SR-",
            _ => "",
        };
        format!("{}-{}Zombie", self.device.ecc_label(), wl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_pcm::Ecp;
    use wlr_wl::{RandomizerKind, StartGap};

    const N: u64 = 256;

    fn make(endurance: f64, psi: u64, seed: u64) -> ZombieController {
        let geo = Geometry::builder().num_blocks(N).build().unwrap();
        let device = PcmDevice::builder(geo)
            .extra_blocks(1)
            .endurance_mean(endurance)
            .seed(seed)
            .ecc(Box::new(Ecp::ecp6()))
            .track_contents(true)
            .build();
        let wl = StartGap::builder(N)
            .gap_interval(psi)
            .randomizer(RandomizerKind::Feistel { seed })
            .build();
        ZombieController::builder(device, Box::new(wl)).build()
    }

    #[test]
    fn healthy_round_trip_with_leveling() {
        let mut ctl = make(1e9, 5, 1);
        for i in 0..N {
            assert_eq!(ctl.write(Pa::new(i), i + 1), WriteResult::Ok);
        }
        for i in 0..N {
            assert_eq!(ctl.read(Pa::new(i)), i + 1);
        }
        assert!(ctl.wl_active());
    }

    #[test]
    fn first_failure_freezes_and_reports() {
        let mut ctl = make(300.0, 1_000_000, 2);
        let pa = Pa::new(9);
        let mut reported = None;
        for i in 0..30_000u64 {
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    reported = Some(rep);
                    break;
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        assert_eq!(reported, Some(pa));
        assert!(!ctl.wl_active(), "zombie freezes leveling at first failure");
    }

    #[test]
    fn retired_page_supplies_spares_for_many_failures() {
        let mut ctl = make(250.0, 1_000_000, 3);
        let mut os_retired: Vec<bool> = vec![false; 4];
        let mut reports = 0u64;
        let mut rng = wlr_base::rng::Rng::seed_from(7);
        for i in 0..600_000u64 {
            // Pick an accessible PA.
            let pa = loop {
                let p = Pa::new(rng.gen_range(N));
                if !os_retired[(p.index() / 64) as usize] {
                    break p;
                }
            };
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    reports += 1;
                    let page = ctl.geometry().page_of(rep);
                    os_retired[page.as_usize()] = true;
                    ctl.on_page_retired(page);
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
            if ctl.counters().links > 80 {
                break;
            }
        }
        assert!(
            ctl.counters().links > 80,
            "spares should hide many failures (got {})",
            ctl.counters().links
        );
        assert!(
            reports <= 3,
            "one page should cover dozens of failures, got {reports} reports"
        );
    }

    #[test]
    fn linked_blocks_round_trip_after_freeze() {
        let mut ctl = make(300.0, 1_000_000, 4);
        // Force the first report, grant the page.
        let pa = Pa::new(9);
        let mut i = 0u64;
        loop {
            i += 1;
            assert!(i < 60_000);
            match ctl.write(pa, i) {
                WriteResult::Ok => {}
                WriteResult::ReportFailure(rep) => {
                    ctl.on_page_retired(ctl.geometry().page_of(rep));
                    break;
                }
                other => unreachable!("unexpected write result: {other:?}"),
            }
        }
        // Hammer another PA (outside the retired page) until it fails and
        // gets a spare; its data must keep round-tripping.
        let pa2 = Pa::new(200);
        let mut last = 0;
        for j in 0..60_000u64 {
            match ctl.write(pa2, j) {
                WriteResult::Ok => last = j,
                _ => panic!("spares should hide this failure"),
            }
            if ctl.counters().links > 0 && ctl.read(pa2) == last {
                break;
            }
        }
        assert!(ctl.counters().links > 0);
        assert_eq!(ctl.read(pa2), last);
    }

    #[test]
    fn label() {
        assert_eq!(make(1e9, 5, 5).label(), "ECP6-SG-Zombie");
    }
}
