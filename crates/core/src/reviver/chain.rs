//! The write chain (core of §III-B): failure discovery, one-step
//! switching, loop escape, and the migration machinery with the
//! Theorem-3 repair.

use super::events::ReviverEvent;
use super::RevivedController;
use crate::error::ReviverError;
use wlr_base::{Da, Pa};
use wlr_pcm::{CrashPoint, WriteOutcome};
use wlr_wl::Migration;

impl RevivedController {
    /// Serves a write destined by the current mapping for `da`,
    /// discovering failures, linking, and keeping chains at one step.
    /// Metadata writes triggered inside are deferred (see
    /// [`RevivedController::meta_write`]) to keep chain repair
    /// non-re-entrant.
    pub(super) fn write_da(&mut self, da: Da, tag: u64, acct: bool) -> Result<(), ReviverError> {
        self.in_write_da += 1;
        let r = self.write_da_inner(da, tag, acct);
        self.in_write_da -= 1;
        r
    }

    fn write_da_inner(&mut self, mut da: Da, tag: u64, acct: bool) -> Result<(), ReviverError> {
        if !self.device.is_dead(da) {
            match self.dev_write(da, tag, acct) {
                WriteOutcome::Ok => return Ok(()),
                WriteOutcome::NewFailure => {} // fall through: fresh failure
                WriteOutcome::Lost => return Err(ReviverError::PowerLoss),
                WriteOutcome::AlreadyDead => unreachable!("checked alive"),
            }
        }
        // `da` is dead. Ensure it is linked.
        if !self.links.ptr.contains_key(da.index()) {
            let v = self.take_spare_or_park(da)?;
            self.link(da, v);
        }
        // Follow/repair the chain until the data lands on a healthy block.
        let mut fuel = self.pool.spares.len() + self.links.ptr.len() + 8;
        loop {
            if fuel == 0 {
                // Reachable only through torn metadata: degrade, don't
                // panic — recovery re-derives the chains.
                self.degraded = true;
                self.emit(ReviverEvent::InvariantViolation {
                    da,
                    kind: super::events::ViolationKind::ChainDiverged,
                });
                return Err(ReviverError::ChainDiverged { da: da.index() });
            }
            fuel -= 1;
            let v = match self.resolve_ptr(da, acct) {
                Some(v) => v,
                None => return Err(ReviverError::UnlinkedDead { da: da.index() }),
            };
            let sda = self.wl.map(v);
            if sda == da {
                // `da` is on a PA–DA loop: it has no shadow. Give it a
                // fresh virtual shadow; the old PA returns to the pool.
                let v2 = self.take_spare()?;
                self.relink(da, v2, v);
                continue;
            }
            if !self.device.is_dead(sda) {
                match self.dev_write(sda, tag, acct) {
                    WriteOutcome::Ok => return Ok(()),
                    WriteOutcome::NewFailure => {
                        // Scenario 1 (Fig. 2c): the shadow died serving
                        // this write. Link it and switch virtual shadows
                        // (or, in the no-switching ablation, keep walking
                        // the now-longer chain).
                        let v2 = self.take_spare_or_park(sda)?;
                        self.link(sda, v2);
                        if self.switching {
                            self.switch(da, sda);
                        } else {
                            da = sda;
                        }
                        continue;
                    }
                    WriteOutcome::Lost => return Err(ReviverError::PowerLoss),
                    WriteOutcome::AlreadyDead => unreachable!("checked alive"),
                }
            }
            // The shadow is already dead: a two-step chain has formed.
            if !self.links.ptr.contains_key(sda.index()) {
                let v2 = self.take_spare_or_park(sda)?;
                self.link(sda, v2);
            }
            if self.switching {
                self.switch(da, sda);
            } else {
                da = sda;
            }
        }
    }

    // ----- migrations ---------------------------------------------------

    /// Whether the block `src` (about to be migrated out of) holds live
    /// data under the *current* (pre-migration) mapping. See the comment
    /// at the call site in [`RevivedController::run_migrations`].
    pub(super) fn src_data_is_live(&self, src: Da) -> bool {
        let Some(p) = self.safe_inverse(src) else {
            return false; // unmapped buffer block
        };
        if !self.is_reserved(p) {
            return true; // software data
        }
        match self.links.inv.get(p.index()) {
            // Linked virtual shadow: the block is its head's shadow and
            // holds the head's data — unless the head *is* this block
            // (a PA–DA loop), which holds nothing.
            Some(&d0) => d0 != src,
            // Unlinked reserved PA: a spare (garbage) or a pointer-section
            // block (live metadata).
            None => self.pool.section_pas.contains(p.index()),
        }
    }

    /// Reads the data a migration must move out of `src`, walking the
    /// chain if `src` is failed (one step under switching; possibly more
    /// in the no-switching ablation). Returns the data and whether the
    /// walk ended at a healthy block — chains ending in a PA–DA loop or
    /// an unlinked dead block hold no live data.
    pub(super) fn migration_read(&mut self, src: Da) -> (u64, bool) {
        if !self.device.is_dead(src) {
            self.dev_read(src, false);
            return (self.device.tag(src), true);
        }
        let mut cur = src;
        let mut fuel = self.links.ptr.len() + 2;
        loop {
            if fuel == 0 {
                self.emit(ReviverEvent::GarbageRead { da: cur });
                return (self.device.tag(cur), false);
            }
            fuel -= 1;
            match self.links.ptr.get(cur.index()).copied() {
                Some(v) => {
                    self.dev_read(cur, false); // pointer read
                    let next = self.wl.map(v);
                    if next == cur {
                        // Loop block: nothing behind it.
                        self.emit(ReviverEvent::GarbageRead { da: cur });
                        return (self.device.tag(cur), false);
                    }
                    if !self.device.is_dead(next) {
                        self.dev_read(next, false);
                        return (self.device.tag(next), true);
                    }
                    cur = next;
                }
                None => {
                    self.emit(ReviverEvent::GarbageRead { da: cur });
                    self.dev_read(cur, false);
                    return (self.device.tag(cur), false);
                }
            }
        }
    }

    /// Mirrors a migration-buffer push into the battery-backed journal
    /// (no device write: the journal is controller NVM, not PCM).
    pub(super) fn journal_push(&mut self, target: Da, tag: u64) {
        if self.device.powered() {
            self.persist.journal.push_back((target, tag));
        }
    }

    /// Mirrors a migration-buffer pop (the line's data committed).
    pub(super) fn journal_pop(&mut self) {
        if self.device.powered() {
            self.persist.journal.pop_front();
        }
    }

    /// Performs all pending migrations, suspending (and parking data in
    /// the migration buffer) if a spare PA is needed and none exists.
    ///
    /// Power-gated: the wear-leveler's mapping registers are persistent,
    /// so no migration may start (and no mapping may advance) once the
    /// device has lost power — post-cut execution must not perturb
    /// durable state.
    pub(super) fn run_migrations(&mut self) {
        while !self.suspended && self.device.powered() {
            if self.mig_buf.is_empty() {
                let Some(m) = self.wl.pending() else { break };
                if self.check {
                    if let Migration::Copy { dst, .. } = m {
                        // Theorem 3: the scheme only copies into its
                        // (unmapped) buffer block, never onto live data —
                        // in particular never onto a PA–DA loop.
                        assert!(
                            self.wl.inverse(dst).is_none(),
                            "scheme migrated into mapped block {dst}"
                        );
                    }
                }
                // `(source block, post-migration target)` for each moved PA.
                let moves: [Option<(Da, Da)>; 2] = match m {
                    Migration::Copy { src, dst } => [Some((src, dst)), None],
                    Migration::Swap { a, b } => [Some((a, b)), Some((b, a))],
                };
                for (src, target) in moves.into_iter().flatten() {
                    let (tag, ended_live) = self.migration_read(src);
                    // Only *live* data is rewritten at the target. A
                    // reserved PA's block holds live data only when the PA
                    // is a linked virtual shadow of a *non-loop* block
                    // (the chain head's data) or a pointer-section block
                    // (metadata). Unlinked spares and loop-block shadows
                    // carry garbage — and writing garbage is worse than
                    // wasted wear: if this very migration makes the other
                    // moved PA's chain resolve into `target`, the stale
                    // write would clobber freshly-placed live data (the
                    // aliasing hazard dissected in the tests).
                    if ended_live && self.src_data_is_live(src) {
                        self.mig_buf.push_back((target, tag));
                        self.journal_push(target, tag);
                    }
                }
                // Advance the mapping; the writes below then resolve
                // chains under the post-migration mapping, and reads
                // during any suspension are served from the buffer.
                self.wl.complete_migration();
                if self.device.crash_point(CrashPoint::MidMigration) {
                    self.emit(ReviverEvent::PowerCut {
                        at: CrashPoint::MidMigration,
                    });
                }
            }
            while let Some(&(target, tag)) = self.mig_buf.front() {
                match self.write_da(target, tag, false) {
                    Ok(()) => {
                        self.mig_buf.pop_front();
                        self.journal_pop();
                        self.flush_meta();
                        self.fix_chain_after_migration(target);
                    }
                    Err(ReviverError::NeedSpare) => {
                        self.suspended = true;
                        self.emit(ReviverEvent::MigrationSuspended);
                        return;
                    }
                    // Power cut (or torn chain): stop here. The journaled
                    // lines are replayed by recovery.
                    Err(_) => return,
                }
            }
        }
    }

    /// The Figure 3 repair: after a migration, if the PA now mapping to
    /// `target` is a linked virtual shadow and `target` is failed, a
    /// two-step chain has formed — switch the chain head's virtual shadow.
    pub(super) fn fix_chain_after_migration(&mut self, target: Da) {
        if !self.switching {
            return; // ablation: chains are allowed to grow
        }
        let Some(p) = self.wl.inverse(target) else {
            return;
        };
        if !self.is_reserved(p) {
            return;
        }
        let Some(&d0) = self.links.inv.get(p.index()) else {
            return;
        };
        // Locating the chain head requires reading the inverse pointer.
        self.meta_read(p);
        if d0 == target || !self.device.is_dead(target) {
            return;
        }
        if !self.links.ptr.contains_key(target.index()) {
            // `target` died *silently* (the device reported Ok, so
            // `write_da` never saw a failure and never linked it). Its
            // death is still undiscovered: leave the two-step chain in
            // place — the chain walk links and switches it on the write
            // that first finds the shadow dead.
            return;
        }
        self.switch(d0, target);
    }

    pub(super) fn safe_inverse(&self, da: Da) -> Option<Pa> {
        if da.index() < self.wl.total_das() {
            self.wl.inverse(da)
        } else {
            None
        }
    }
}
