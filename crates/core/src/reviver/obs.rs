//! Live metrics over the event spine: [`MetricsSink`] folds
//! [`ReviverEvent`]s into lock-free [`wlr_base::stats::registry`]
//! counters as they happen.
//!
//! [`ReviverCounters`] already *is* a fold over the event stream, but it
//! is plain data owned by the controller — nothing outside the bank
//! thread can read it until the run ends. [`RevivalMetrics`] is the same
//! fold landed in `Arc`'d atomic [`Counter`] handles, so an HTTP scrape
//! thread can read revival activity live while pinned workers keep
//! writing, with no lock and no hot-path change (each event costs one
//! relaxed atomic add, and events are already off the per-write fast
//! path).
//!
//! The event-derived fields mirror [`ReviverCounters::apply`]
//! field-for-field; the golden-equivalence test
//! (`tests/tests/metrics.rs`) pins the two folds together on all nine
//! stacks via [`MetricsSink::snapshot_counters`]. On top of the shared
//! fields, the sink counts what the offline counters ignore: recovery
//! phase progress and invariant violations, which the daemon wants on
//! its dashboard even though batch experiments do not.

use super::events::{EventSink, ReviverEvent};
use super::{RevivedController, ReviverCounters};
use wlr_base::stats::registry::{Counter, MetricsRegistry};

/// The revival counter handles, registered against a shared
/// [`MetricsRegistry`]. Cloning shares the underlying atomics, so one
/// bundle can be split between a [`MetricsSink`] per bank while the
/// registry renders the combined totals.
#[derive(Debug, Clone)]
pub struct RevivalMetrics {
    /// Failed blocks linked to virtual shadows (`links`).
    pub links: Counter,
    /// Virtual-shadow switches (`switches`).
    pub switches: Counter,
    /// Migrations suspended for lack of spares (`suspensions`).
    pub suspensions: Counter,
    /// Writes sacrificed as possibly-fake reports (`fake_reports`).
    pub fake_reports: Counter,
    /// Genuine failure reports (`real_reports`).
    pub real_reports: Counter,
    /// Pages harvested for spare PAs (`spare_grants`).
    pub spare_grants: Counter,
    /// Inverse-pointer writes skipped (`meta_skips`).
    pub meta_skips: Counter,
    /// Migration reads of dataless blocks (`garbage_reads`).
    pub garbage_reads: Counter,
    /// Power cycles survived (`reboots`).
    pub reboots: Counter,
    /// Chain walks aborted for lack of fuel (`chain_aborts`).
    pub chain_aborts: Counter,
    /// Recovery phases completed (not in [`ReviverCounters`]).
    pub recovery_steps: Counter,
    /// Items processed across recovery phases.
    pub recovery_items: Counter,
    /// Dead blocks healed by recovery.
    pub recovery_healed: Counter,
    /// Dead blocks recovery left parked for lack of spares.
    pub recovery_unhealed: Counter,
    /// Structural invariant violations observed (degraded mode).
    pub invariant_violations: Counter,
}

impl RevivalMetrics {
    /// Registers the revival counter family (prefix `wlr_revival_`, plus
    /// `wlr_recovery_` for the recovery extras) on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, help);
        RevivalMetrics {
            links: c(
                "wlr_revival_links_total",
                "failed blocks linked to virtual shadows",
            ),
            switches: c(
                "wlr_revival_switches_total",
                "virtual-shadow switches restoring one-step chains",
            ),
            suspensions: c(
                "wlr_revival_suspensions_total",
                "migrations suspended for lack of spare PAs",
            ),
            fake_reports: c(
                "wlr_revival_fake_reports_total",
                "software writes sacrificed as (possibly fake) failure reports",
            ),
            real_reports: c(
                "wlr_revival_real_reports_total",
                "genuine failure reports raised to the OS",
            ),
            spare_grants: c(
                "wlr_revival_spare_grants_total",
                "pages harvested for spare PAs",
            ),
            meta_skips: c(
                "wlr_revival_meta_skips_total",
                "inverse-pointer writes skipped for lack of resources",
            ),
            garbage_reads: c(
                "wlr_revival_garbage_reads_total",
                "migration reads of blocks holding no live data",
            ),
            reboots: c(
                "wlr_revival_reboots_total",
                "power cycles survived (recoveries completed)",
            ),
            chain_aborts: c(
                "wlr_revival_chain_aborts_total",
                "chain walks aborted for lack of fuel",
            ),
            recovery_steps: c("wlr_recovery_steps_total", "recovery phases completed"),
            recovery_items: c(
                "wlr_recovery_items_total",
                "items processed across recovery phases",
            ),
            recovery_healed: c(
                "wlr_recovery_healed_total",
                "dead blocks healed with fresh links during recovery",
            ),
            recovery_unhealed: c(
                "wlr_recovery_unhealed_total",
                "dead blocks recovery left parked for lack of spares",
            ),
            invariant_violations: c(
                "wlr_invariant_violations_total",
                "structural invariant violations observed",
            ),
        }
    }

    /// Unregistered handles (tests and overhead probes that never
    /// scrape).
    pub fn detached() -> Self {
        RevivalMetrics {
            links: Counter::new(),
            switches: Counter::new(),
            suspensions: Counter::new(),
            fake_reports: Counter::new(),
            real_reports: Counter::new(),
            spare_grants: Counter::new(),
            meta_skips: Counter::new(),
            garbage_reads: Counter::new(),
            reboots: Counter::new(),
            chain_aborts: Counter::new(),
            recovery_steps: Counter::new(),
            recovery_items: Counter::new(),
            recovery_healed: Counter::new(),
            recovery_unhealed: Counter::new(),
            invariant_violations: Counter::new(),
        }
    }

    /// Reads the event-derived fields back as a [`ReviverCounters`], for
    /// comparison against the controller's own inline fold.
    ///
    /// `reboot_lost_migrations` is not event-derived (the controller
    /// increments it outside [`ReviverCounters::apply`]) and reads as 0.
    pub fn snapshot_counters(&self) -> ReviverCounters {
        ReviverCounters {
            links: self.links.get(),
            switches: self.switches.get(),
            suspensions: self.suspensions.get(),
            fake_reports: self.fake_reports.get(),
            real_reports: self.real_reports.get(),
            spare_grants: self.spare_grants.get(),
            meta_skips: self.meta_skips.get(),
            garbage_reads: self.garbage_reads.get(),
            reboots: self.reboots.get(),
            reboot_lost_migrations: 0,
            chain_aborts: self.chain_aborts.get(),
        }
    }
}

/// An [`EventSink`] publishing revival activity into a
/// [`RevivalMetrics`] bundle: the [`ReviverCounters::apply`] fold landed
/// in shared atomics, plus recovery/invariant visibility.
#[derive(Debug)]
pub struct MetricsSink {
    metrics: RevivalMetrics,
}

impl MetricsSink {
    /// A sink feeding `metrics` (clone the bundle to share it between
    /// banks).
    pub fn new(metrics: RevivalMetrics) -> Self {
        MetricsSink { metrics }
    }

    /// The handles this sink feeds.
    pub fn metrics(&self) -> &RevivalMetrics {
        &self.metrics
    }

    /// The event-derived counters accumulated so far (see
    /// [`RevivalMetrics::snapshot_counters`]).
    pub fn snapshot_counters(&self) -> ReviverCounters {
        self.metrics.snapshot_counters()
    }
}

impl EventSink for MetricsSink {
    fn on_event(&mut self, _ctl: &RevivedController, ev: &ReviverEvent) {
        let m = &self.metrics;
        // Mirrors ReviverCounters::apply exactly for the shared fields —
        // the golden-equivalence test holds the two folds together.
        match ev {
            ReviverEvent::LinkCreated { .. } => m.links.inc(),
            ReviverEvent::ChainSwitched { .. } => m.switches.inc(),
            ReviverEvent::MigrationSuspended => m.suspensions.inc(),
            ReviverEvent::WriteSacrificed { .. } => m.fake_reports.inc(),
            ReviverEvent::FailureReported { .. } => m.real_reports.inc(),
            ReviverEvent::PageRetired { .. } => m.spare_grants.inc(),
            ReviverEvent::MetaSkipped { skipped } => m.meta_skips.add(*skipped),
            ReviverEvent::GarbageRead { .. } => m.garbage_reads.inc(),
            ReviverEvent::ChainAborted { .. } => m.chain_aborts.inc(),
            ReviverEvent::RecoveryCompleted { healed, unhealed } => {
                m.reboots.inc();
                m.recovery_healed.add(*healed);
                m.recovery_unhealed.add(*unhealed);
            }
            ReviverEvent::RecoveryStep { items, .. } => {
                m.recovery_steps.inc();
                m.recovery_items.add(*items);
            }
            ReviverEvent::InvariantViolation { .. } => m.invariant_violations.inc(),
            ReviverEvent::Relinked { .. }
            | ReviverEvent::LoopFormed { .. }
            | ReviverEvent::SpareAcquired { .. }
            | ReviverEvent::SpareParked { .. }
            | ReviverEvent::MigrationResumed
            | ReviverEvent::PowerCut { .. }
            | ReviverEvent::Quiesced => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlr_base::{Da, Geometry, Pa};
    use wlr_pcm::{Ecp, PcmDevice};
    use wlr_wl::{RandomizerKind, StartGap, WearLeveler};

    fn ctl() -> RevivedController {
        const N: u64 = 256;
        let dev = PcmDevice::builder(Geometry::builder().num_blocks(N).build().unwrap())
            .extra_blocks(1)
            .endurance_mean(1e6)
            .ecc(Box::new(Ecp::ecp6()))
            .build();
        let wl: Box<dyn WearLeveler> = Box::new(
            StartGap::builder(N)
                .gap_interval(1_000)
                .randomizer(RandomizerKind::Feistel { seed: 1 })
                .build(),
        );
        RevivedController::builder(dev, wl).build()
    }

    /// Every event-derived field moves in lockstep with the inline fold.
    #[test]
    fn sink_fold_matches_reviver_counters() {
        let events = [
            ReviverEvent::LinkCreated {
                da: Da::new(1),
                shadow: Pa::new(2),
            },
            ReviverEvent::ChainSwitched {
                head: Da::new(1),
                dead_shadow: Da::new(3),
            },
            ReviverEvent::MigrationSuspended,
            ReviverEvent::WriteSacrificed { pa: Pa::new(4) },
            ReviverEvent::FailureReported { pa: Pa::new(5) },
            ReviverEvent::PageRetired {
                page: wlr_base::PageId::new(0),
                shadows: 60,
            },
            ReviverEvent::MetaSkipped { skipped: 3 },
            ReviverEvent::GarbageRead { da: Da::new(6) },
            ReviverEvent::ChainAborted { da: Da::new(7) },
            ReviverEvent::RecoveryStep {
                phase: super::super::RecoveryPhase::Links,
                items: 4,
            },
            ReviverEvent::RecoveryCompleted {
                healed: 2,
                unhealed: 1,
            },
            ReviverEvent::MigrationResumed,
            ReviverEvent::Quiesced,
        ];
        let controller = ctl();
        let mut expected = ReviverCounters::default();
        let mut sink = MetricsSink::new(RevivalMetrics::detached());
        for ev in &events {
            expected.apply(ev);
            sink.on_event(&controller, ev);
        }
        assert_eq!(sink.snapshot_counters(), expected);
        assert_eq!(sink.metrics().recovery_steps.get(), 1);
        assert_eq!(sink.metrics().recovery_items.get(), 4);
        assert_eq!(sink.metrics().recovery_healed.get(), 2);
        assert_eq!(sink.metrics().recovery_unhealed.get(), 1);
    }

    #[test]
    fn registered_handles_render() {
        let reg = MetricsRegistry::new();
        let metrics = RevivalMetrics::register(&reg);
        metrics.links.add(5);
        metrics.reboots.inc();
        let text = reg.render();
        assert!(text.contains("wlr_revival_links_total 5"));
        assert!(text.contains("wlr_revival_reboots_total 1"));
        assert!(text.contains("# TYPE wlr_recovery_steps_total counter"));
    }
}
