//! The failed-DA→PA link table (§III-B) and its pointer metadata.
//!
//! A failed block stores a pointer to its *virtual shadow* — a reserved
//! PA — plus a status bit; the table here is the in-SRAM image of those
//! stored pointers, its inverse (Figure 4's inverse pointers), and the
//! optional remap cache that hides the pointer-read cost. The linking
//! primitives ([`RevivedController::link`], `relink`, `switch`) keep the
//! durable mirror in sync through [`RevivedController::commit_ptr`] and
//! emit [`ReviverEvent`]s at every transition.

use super::events::ReviverEvent;
use super::RevivedController;
use crate::cache::RemapCache;
use wlr_base::dense::DenseMap;
use wlr_base::{Da, Pa};
use wlr_pcm::{CrashPoint, WriteOutcome};

/// The failed-DA→virtual-shadow link table with its inverse image and
/// the remap cache over pointer resolutions.
#[derive(Debug, Clone)]
pub(super) struct LinkTable {
    /// failed DA → its virtual shadow PA (stored *in* the failed block on
    /// real hardware, plus a status bit).
    pub(super) ptr: DenseMap<Pa>,
    /// virtual shadow PA → failed DA (the inverse pointers of Figure 4).
    pub(super) inv: DenseMap<Da>,
    /// The remap cache over failed-DA→shadow-PA resolutions, if any.
    pub(super) cache: Option<RemapCache>,
}

impl RevivedController {
    /// Writes failed block `da`'s stored pointer, mirroring `v` into the
    /// persisted metadata iff the device write committed (a write the
    /// fault injector dropped leaves the durable pointer at its old
    /// value — the torn states recovery must untangle).
    pub(super) fn commit_ptr(&mut self, da: Da, v: Pa) {
        if self.device.write(da) != WriteOutcome::Lost {
            self.persist.ptr.insert(da.index(), v);
        }
    }

    /// Links failed block `da` to virtual shadow `v`.
    pub(super) fn link(&mut self, da: Da, v: Pa) {
        debug_assert!(self.device.is_dead(da), "only failed blocks are linked");
        self.pool.undiscovered.remove(da.index());
        self.links.ptr.insert(da.index(), v);
        self.links.inv.insert(v.index(), da);
        if let Some(c) = &mut self.links.cache {
            c.insert(da.index(), v.index());
        }
        // The pointer is written into the failed block itself (§III-B);
        // the block is dead so the write stores metadata, not data.
        if self.device.crash_point(CrashPoint::MidLink) {
            self.emit(ReviverEvent::PowerCut {
                at: CrashPoint::MidLink,
            });
        }
        self.commit_ptr(da, v);
        self.meta_write(v);
        self.emit(ReviverEvent::LinkCreated { da, shadow: v });
    }

    /// Replaces `da`'s virtual shadow `v_old` with a fresh one, returning
    /// the old PA to the spare pool (degenerate self-loop escape).
    pub(super) fn relink(&mut self, da: Da, v_new: Pa, v_old: Pa) {
        self.links.ptr.insert(da.index(), v_new);
        self.links.inv.remove(v_old.index());
        self.links.inv.insert(v_new.index(), da);
        self.pool.spares.push_back(v_old);
        if let Some(c) = &mut self.links.cache {
            c.insert(da.index(), v_new.index());
        }
        self.commit_ptr(da, v_new);
        self.meta_write(v_new);
        self.meta_write(v_old);
        self.emit(ReviverEvent::Relinked {
            da,
            shadow: v_new,
            freed: v_old,
        });
    }

    /// Switches the virtual shadows of two failed blocks (Figures 2(d)
    /// and 3(b)), restoring one-step chains and leaving one block on a
    /// PA–DA loop. The two pointer rewrites are not atomic: a power cut
    /// between them persists `d0`'s new pointer but not `d1`'s, leaving
    /// both blocks claiming the same shadow — the torn-switch state
    /// [`RevivedController::recover`] detects and repairs.
    pub(super) fn switch(&mut self, d0: Da, d1: Da) {
        let v0 = self.links.ptr[d0.index()];
        let v1 = self.links.ptr[d1.index()];
        self.links.ptr.insert(d0.index(), v1);
        self.links.ptr.insert(d1.index(), v0);
        self.links.inv.insert(v1.index(), d0);
        self.links.inv.insert(v0.index(), d1);
        if let Some(c) = &mut self.links.cache {
            c.insert(d0.index(), v1.index());
            c.insert(d1.index(), v0.index());
        }
        // Rewrite both stored pointers and both inverse pointers.
        self.commit_ptr(d0, v1);
        if self.device.crash_point(CrashPoint::MidSwitch) {
            self.emit(ReviverEvent::PowerCut {
                at: CrashPoint::MidSwitch,
            });
        }
        self.commit_ptr(d1, v0);
        self.meta_write(v0);
        self.meta_write(v1);
        self.emit(ReviverEvent::ChainSwitched {
            head: d0,
            dead_shadow: d1,
        });
        // One of the two now sits on a PA–DA loop (pure mapping check —
        // no device access).
        if self.wl.map(v1) == d0 {
            self.emit(ReviverEvent::LoopFormed { da: d0 });
        }
        if self.wl.map(v0) == d1 {
            self.emit(ReviverEvent::LoopFormed { da: d1 });
        }
    }

    /// Resolves the virtual shadow pointer of failed block `da`, through
    /// the cache when configured. A miss costs one PCM read (the pointer
    /// lives in the failed block).
    pub(super) fn resolve_ptr(&mut self, da: Da, acct: bool) -> Option<Pa> {
        if let Some(c) = &mut self.links.cache {
            if let Some(v) = c.get(da.index()) {
                return Some(Pa::new(v));
            }
        }
        let v = self.links.ptr.get(da.index()).copied();
        if let Some(v) = v {
            self.dev_read(da, acct); // pointer read
            if let Some(c) = &mut self.links.cache {
                c.insert(da.index(), v.index());
            }
        }
        v
    }

    // ----- inverse-pointer metadata (Figure 4) ------------------------

    /// Best-effort write of the inverse pointer for reserved PA `v` into
    /// its pointer-section block.
    ///
    /// Pointer-section blocks are ordinary PCM blocks: writing them can
    /// discover failures that need the full linking/repair machinery. But
    /// several reserved PAs share one section block, so a metadata write
    /// issued *while a chain repair is already in progress* could walk the
    /// very chain being repaired (re-entrancy). Metadata writes are
    /// therefore deferred onto a queue while any
    /// [`RevivedController::write_da`] frame is active and flushed at top
    /// level ([`RevivedController::flush_meta`]) — the hardware analogue
    /// being that pointer updates are posted writes. Exhaustion only
    /// bumps a counter: the paper notes inverse pointers are rebuildable
    /// by scanning.
    pub(super) fn meta_write(&mut self, v: Pa) {
        if self.in_write_da > 0 {
            self.pending_meta.push(v);
        } else {
            self.do_meta_write(v);
        }
    }

    pub(super) fn do_meta_write(&mut self, v: Pa) {
        let Some(slot) = self.pool.ptr_slot.get(v.index()).copied() else {
            // `v` predates any grant (possible only in hand-built tests).
            self.emit(ReviverEvent::MetaSkipped { skipped: 1 });
            return;
        };
        let da = self.wl.map(slot);
        if self.write_da(da, 0, false).is_err() {
            self.emit(ReviverEvent::MetaSkipped { skipped: 1 });
        }
    }

    /// Drains deferred metadata writes. Called wherever no chain repair is
    /// in flight. Each flush round may enqueue more (its own links), but
    /// every link consumes a spare, so the loop terminates.
    pub(super) fn flush_meta(&mut self) {
        // Each flushed item can enqueue more (links consume spares,
        // repairs enqueue rewrites), so budget generously — and when the
        // budget runs out, give up on the remainder instead of failing:
        // inverse pointers are rebuildable by scanning (paper §III-B).
        let mut fuel =
            self.pending_meta.len() + 4 * (self.pool.spares.len() + self.links.ptr.len()) + 256;
        while let Some(v) = self.pending_meta.pop() {
            if fuel == 0 {
                let skipped = self.pending_meta.len() as u64 + 1;
                self.pending_meta.clear();
                self.emit(ReviverEvent::MetaSkipped { skipped });
                return;
            }
            fuel -= 1;
            self.do_meta_write(v);
        }
    }

    /// Reads the inverse-pointer block covering reserved PA `v`
    /// (accounting only; the simulator's `inv` map is authoritative).
    pub(super) fn meta_read(&mut self, v: Pa) {
        if let Some(slot) = self.pool.ptr_slot.get(v.index()).copied() {
            let da = self.wl.map(slot);
            self.device.read(da);
        }
    }
}
