//! The [`Controller`] front-end: software reads/writes, OS grant
//! handling, and the trait plumbing the simulator drives.

use super::events::{ReviverEvent, ViolationKind};
use super::RevivedController;
use crate::controller::{Controller, RequestStats, WriteResult};
use crate::error::ReviverError;
use crate::recovery::RecoveryReport;
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::{CrashPoint, PcmDevice};

impl Controller for RevivedController {
    fn geometry(&self) -> &Geometry {
        &self.geo
    }

    fn read(&mut self, pa: Pa) -> u64 {
        if self.check {
            assert!(
                !self.is_reserved(pa),
                "software read of reserved {pa}: the OS contract (§III-A) says retired pages are never accessed"
            );
        }
        self.req.requests += 1;
        let da = self.wl.map(pa);
        if self.suspended {
            if let Some(&(_, t)) = self.mig_buf.iter().find(|(d, _)| *d == da) {
                // Served from the controller's migration buffer: no PCM
                // access — the paper's rationale for sacrificing writes,
                // not reads, during delayed acquisition.
                return t;
            }
        }
        if !self.device.is_dead(da) {
            self.dev_read(da, true);
            return self.device.tag(da);
        }
        // Walk the chain. With switching on (the paper's design) this
        // takes exactly one step; the no-switching ablation may walk
        // further, paying one pointer read per step.
        let mut cur = da;
        let mut fuel = self.links.ptr.len() + 2;
        loop {
            if fuel == 0 {
                // Torn metadata formed a pointer cycle: degrade (the read
                // returns unrecoverable content) instead of panicking.
                self.degraded = true;
                self.emit(ReviverEvent::ChainAborted { da: cur });
                return 0;
            }
            fuel -= 1;
            match self.resolve_ptr(cur, true) {
                Some(v) => {
                    let next = self.wl.map(v);
                    if self.suspended {
                        if let Some(&(_, t)) = self.mig_buf.iter().find(|(d, _)| *d == next) {
                            return t;
                        }
                    }
                    if !self.device.is_dead(next) {
                        self.dev_read(next, true);
                        return self.device.tag(next);
                    }
                    if next == cur {
                        // Loop block: no data behind it.
                        self.dev_read(next, true);
                        return self.device.tag(next);
                    }
                    debug_assert!(!self.switching, "multi-step chain under switching at {da}");
                    cur = next;
                }
                None => {
                    // Theorem 1 says this cannot happen for software PAs —
                    // except for undiscovered failures (injected, silently
                    // concealed, or unhealed after a crash), whose reads
                    // legitimately return unrecoverable content.
                    let known_gap = self.pool.undiscovered.contains(cur.index())
                        || self.device.silent_failures().contains(&cur);
                    assert!(
                        !self.check || known_gap,
                        "read of unlinked dead block {cur} via software {pa}"
                    );
                    if !known_gap {
                        self.degraded = true;
                        self.emit(ReviverEvent::InvariantViolation {
                            da: cur,
                            kind: ViolationKind::UnlinkedDeadRead,
                        });
                    }
                    self.dev_read(cur, true);
                    return 0;
                }
            }
        }
    }

    fn write(&mut self, pa: Pa, tag: u64) -> WriteResult {
        if self.check {
            assert!(
                !self.is_reserved(pa),
                "software write of reserved {pa}: the OS contract (§III-A) says retired pages are never accessed"
            );
        }
        self.req.requests += 1;
        if self.suspended {
            if self.proactive {
                // §III-A alternative (ablation): explicitly ask the OS for
                // a page via a new interrupt instead of sacrificing this
                // write. The controller nominates the lowest live page.
                if let Some(page) = self.pick_page_to_request() {
                    return WriteResult::RequestPages(vec![page]);
                }
            }
            // Delayed space acquisition (§III-A): report this write as a
            // failure — even though it may not be one — to obtain a page.
            self.emit(ReviverEvent::WriteSacrificed { pa });
            return WriteResult::ReportFailure(pa);
        }
        let da = self.wl.map(pa);
        // Steady-state fast path: when nothing rare is in flight (no
        // invariant checking, no deferred metadata, no parked migration
        // buffer) and both the device and the scheme take their fast
        // exits, the write is provably equivalent to the full protocol
        // below: `write_da` would return `Ok` from its first
        // `dev_write`, `run_migrations` and `flush_meta` would be
        // no-ops, and the only event the full path would emit is
        // `Quiesced` — a counters no-op that sinks see only when one
        // subscribes via `wants_quiesced`. Every other event rides a
        // rare transition (failure, migration, metadata flush) that
        // diverts off this path before it could fire, so sinks that
        // don't subscribe to quiescent points lose nothing here.
        if !self.check
            && !self.quiesced_subscribed
            && self.pending_meta.is_empty()
            && self.mig_buf.is_empty()
            && self.device.write_fast(da, tag)
        {
            self.req.accesses += 1;
            if self.wl.record_write_fast(pa) {
                return WriteResult::Ok;
            }
            // Rare: this recording arms a migration — finish with the
            // full post-write protocol (the device write already landed).
            self.wl.record_write(pa);
            self.run_migrations();
            self.flush_meta();
            if !self.suspended && self.device.powered() {
                self.emit(ReviverEvent::Quiesced);
            }
            return WriteResult::Ok;
        }
        match self.write_da(da, tag, true) {
            Ok(()) => {
                self.wl.record_write(pa);
                self.run_migrations();
                self.flush_meta();
                // A suspension parks mid-repair state (the migration
                // buffer); invariants are re-checked after the grant.
                // After a power cut the volatile tables legitimately
                // diverge from the frozen durable state, so checking
                // waits for recovery.
                if self.check && !self.suspended && self.device.powered() {
                    self.assert_invariants();
                }
                if !self.suspended && self.device.powered() {
                    self.emit(ReviverEvent::Quiesced);
                }
                WriteResult::Ok
            }
            Err(ReviverError::NeedSpare) => {
                self.emit(ReviverEvent::FailureReported { pa });
                WriteResult::ReportFailure(pa)
            }
            // Power loss or torn metadata: the write is dropped, not
            // reported — there is nothing the OS could do about it.
            Err(e) => WriteResult::Dropped(e),
        }
    }

    fn on_page_retired(&mut self, page: PageId) {
        if self.pool.retired[page.as_usize()] {
            return;
        }
        if self.device.crash_point(CrashPoint::MidRetire) {
            self.emit(ReviverEvent::PowerCut {
                at: CrashPoint::MidRetire,
            });
        }
        self.pool.retired[page.as_usize()] = true;
        // The bitmap write is the retirement's durable commit point: a
        // grant the power cut interrupted never happened as far as
        // recovery is concerned (the simulator rolls the OS side back to
        // match — see `Simulation`'s retirement transaction).
        if self.device.powered() {
            self.persist.retired[page.as_usize()] = true;
        }
        let shadows = self.index_grant(page);
        let granted = shadows.len() as u64;
        self.pool.spares.extend(shadows);
        self.emit(ReviverEvent::PageRetired {
            page,
            shadows: granted,
        });
        if self.suspended {
            self.suspended = false;
            self.emit(ReviverEvent::MigrationResumed);
            self.run_migrations();
            self.flush_meta();
            if self.check && !self.suspended && self.device.powered() {
                self.assert_invariants();
            }
        }
        if !self.suspended && self.device.powered() {
            self.emit(ReviverEvent::Quiesced);
        }
    }

    fn device(&self) -> &PcmDevice {
        &self.device
    }

    fn wl_active(&self) -> bool {
        true // reviving the scheme is the whole point
    }

    fn suspended(&self) -> bool {
        self.suspended
    }

    fn request_stats(&self) -> RequestStats {
        self.req
    }

    fn reset_request_stats(&mut self) {
        self.req = RequestStats::default();
    }

    fn as_reviver(&self) -> Option<&RevivedController> {
        Some(self)
    }

    fn fork_box(&self) -> Option<Box<dyn Controller>> {
        Some(Box::new(self.clone()))
    }

    fn as_reviver_mut(&mut self) -> Option<&mut RevivedController> {
        Some(self)
    }

    fn device_mut(&mut self) -> &mut PcmDevice {
        &mut self.device
    }

    fn retirement_persisted(&self, page: PageId) -> bool {
        RevivedController::retirement_persisted(self, page)
    }

    fn logical_owner(&self, da: Da) -> Option<Pa> {
        RevivedController::logical_owner(self, da)
    }

    fn simulate_reboot(&mut self) {
        // A reboot is a power cut plus recovery: every volatile table is
        // rebuilt from the durable metadata mirror (§III-B's "rebuilt by
        // scanning the entire PCM").
        self.recover();
    }

    fn recover(&mut self) -> RecoveryReport {
        RevivedController::recover(self)
    }

    fn label(&self) -> String {
        let wl = match self.wl.label().as_str() {
            "Start-Gap" => "SG",
            "Security-Refresh" => "SR",
            other => return format!("{}-{}-WLR", self.device.ecc_label(), other),
        };
        format!("{}-{}-WLR", self.device.ecc_label(), wl)
    }
}
