//! The typed event spine: every state transition the revival framework
//! performs is emitted as a [`ReviverEvent`] into a stack of
//! [`EventSink`]s.
//!
//! The controller itself consumes its own events — [`ReviverCounters`]
//! is folded inline on every emission — and any number of additional
//! sinks can be stacked on top: the incremental invariant checker
//! ([`super::InvariantSink`]), the bounded post-mortem ring buffer
//! ([`TraceRingSink`]), or the JSONL file tracer (`JsonlSink`, behind
//! the `trace-events` cargo feature). With no sinks attached, emission
//! costs one match arm per event (the counter fold) and an empty-vec
//! check — the hot path stays event-emission-free of allocations and
//! device accesses by construction.

use super::RevivedController;
use wlr_base::{Da, Pa, PageId};
use wlr_pcm::CrashPoint;

/// One state transition of the revival framework (paper §III).
///
/// Events are plain data: emitting one performs no device access and no
/// RNG draw, so an attached sink can never perturb a run's observable
/// behavior (the golden-equivalence suite pins this down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReviverEvent {
    /// A failed block was linked to a virtual shadow PA (§III-B).
    LinkCreated {
        /// The failed device address.
        da: Da,
        /// The virtual shadow it now points at.
        shadow: Pa,
    },
    /// A loop block received a fresh virtual shadow; the old PA returned
    /// to the spare pool.
    Relinked {
        /// The failed device address.
        da: Da,
        /// Its new virtual shadow.
        shadow: Pa,
        /// The PA freed back into the pool.
        freed: Pa,
    },
    /// Two failed blocks switched virtual shadows to restore one-step
    /// chains (Figures 2(d) and 3(b)).
    ChainSwitched {
        /// The chain head whose shadow had died.
        head: Da,
        /// The dead shadow block it switched with.
        dead_shadow: Da,
    },
    /// A switch left this block on a PA–DA loop (no shadow, provably
    /// unreachable — Theorem 1).
    LoopFormed {
        /// The looped device address.
        da: Da,
    },
    /// A spare PA left the pool to serve as a virtual shadow.
    SpareAcquired {
        /// The acquired reserved PA.
        shadow: Pa,
    },
    /// The pool was dry; the dead block parked in Theorem 2's
    /// undiscovered-failure state instead of linking.
    SpareParked {
        /// The dead block left unlinked.
        dead: Da,
    },
    /// The OS retired a page and its shadow PAs entered the pool
    /// (§III-A space acquisition).
    PageRetired {
        /// The retired page.
        page: PageId,
        /// Spare shadow PAs harvested from it.
        shadows: u64,
    },
    /// A migration needed a spare that did not exist; migration is
    /// suspended and its data parked in the controller buffer.
    MigrationSuspended,
    /// A page grant resumed the suspended migration.
    MigrationResumed,
    /// Delayed space acquisition sacrificed this software write as a
    /// (possibly fake) failure report (§III-A).
    WriteSacrificed {
        /// The software PA whose write was sacrificed.
        pa: Pa,
    },
    /// A genuine failure report: the write's own failure handling ran
    /// out of spares.
    FailureReported {
        /// The software PA reported to the OS.
        pa: Pa,
    },
    /// Inverse-pointer writes were skipped for lack of resources
    /// (rebuildable by a scan, per §III-B).
    MetaSkipped {
        /// How many pointer writes were skipped.
        skipped: u64,
    },
    /// A migration read a block holding no live data.
    GarbageRead {
        /// The device address read.
        da: Da,
    },
    /// A chain walk aborted for lack of fuel (torn metadata produced a
    /// cycle); the access degraded instead of panicking.
    ChainAborted {
        /// The device address where the walk gave up.
        da: Da,
    },
    /// The fault injector cut power at an instrumented crash point.
    PowerCut {
        /// Which crash point fired.
        at: CrashPoint,
    },
    /// One phase of [`RevivedController::recover`] completed.
    RecoveryStep {
        /// The recovery phase.
        phase: RecoveryPhase,
        /// Items the phase processed (links rebuilt, spares found, …).
        items: u64,
    },
    /// Recovery finished rebuilding the volatile state.
    RecoveryCompleted {
        /// Dead blocks healed with fresh links.
        healed: u64,
        /// Dead blocks left parked for lack of spares.
        unhealed: u64,
    },
    /// An access found a structural invariant broken (degraded mode).
    InvariantViolation {
        /// The device address involved.
        da: Da,
        /// What was broken.
        kind: ViolationKind,
    },
    /// The controller reached a quiescent point: no chain repair in
    /// flight, not suspended, power on. Incremental checkers validate
    /// their accumulated deltas here.
    Quiesced,
}

/// The phases of [`RevivedController::recover`], in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Re-deriving the retired-page layout from the persisted bitmap.
    Layout,
    /// Rebuilding the link tables from persisted failed-block pointers.
    Links,
    /// Completing half-finished virtual-shadow switches.
    TornSwitches,
    /// Rebuilding the spare-PA pool by scanning retired pages.
    SparePool,
    /// Healing unlinked software-accessible dead blocks.
    Heal,
    /// Replaying the battery-backed migration journal.
    JournalReplay,
    /// Collapsing two-step chains left by uncommitted links.
    ChainCollapse,
}

/// What an [`ReviverEvent::InvariantViolation`] found broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A chain repair failed to converge within its fuel budget.
    ChainDiverged,
    /// A software-reachable dead block carried no link outside the
    /// tolerated undiscovered-failure states.
    UnlinkedDeadRead,
}

/// A consumer of [`ReviverEvent`]s.
///
/// Sinks are stacked on the controller ([`RevivedController::add_sink`]
/// or [`super::RevivedControllerBuilder::sink`]) and called in order at
/// every emission, with a read-only view of the controller for context.
/// A sink must never access the device: events are observability, not
/// behavior.
pub trait EventSink: std::fmt::Debug + Send {
    /// Observes one event. `ctl` is the emitting controller *after* the
    /// transition the event describes.
    fn on_event(&mut self, ctl: &RevivedController, ev: &ReviverEvent);

    /// Whether this sink subscribes to [`ReviverEvent::Quiesced`]
    /// markers. They fire once per serviced write — by far the
    /// highest-volume event — so the controller skips the sink fan-out
    /// for them entirely unless a stacked sink opts in. A sink that
    /// ignores the marker must not cost a dynamic dispatch per write.
    fn wants_quiesced(&self) -> bool {
        false
    }

    /// Upcast for [`RevivedController::sink`] downcasting.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for [`RevivedController::sink_mut`] downcasting.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The zero-cost default sink: observes everything, records nothing.
/// Exists so harnesses can prove that merely *dispatching* events is
/// behavior-neutral (golden-equivalence satellite).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn on_event(&mut self, _ctl: &RevivedController, _ev: &ReviverEvent) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Event counters exposed for the experiments and ablations.
///
/// The counters are a pure fold over the event stream
/// ([`ReviverCounters::apply`]): the controller folds them inline on
/// every emission, and the same fold is available as an [`EventSink`] so
/// a recorded stream can be replayed into a fresh instance and compared
/// (the event-replay property test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReviverCounters {
    /// Failed blocks linked to virtual shadow blocks.
    pub links: u64,
    /// Virtual-shadow switches performed to restore one-step chains.
    pub switches: u64,
    /// Migrations suspended for lack of spare PAs.
    pub suspensions: u64,
    /// Software writes sacrificed as (possibly fake) failure reports.
    pub fake_reports: u64,
    /// Genuine failure reports raised because a software write's own
    /// failure handling ran out of spares.
    pub real_reports: u64,
    /// Pages harvested for spare PAs.
    pub spare_grants: u64,
    /// Inverse-pointer writes skipped for lack of resources (rebuildable
    /// by a scan, per the paper).
    pub meta_skips: u64,
    /// Migration reads of blocks holding no live data.
    pub garbage_reads: u64,
    /// Simulated power cycles survived.
    pub reboots: u64,
    /// In-flight migration lines lost to power cycles. With the
    /// battery-backed migration journal this stays 0 — buffered lines are
    /// replayed by recovery, not lost — but the counter is kept for
    /// journal-ablation experiments.
    pub reboot_lost_migrations: u64,
    /// Chain walks aborted for lack of fuel (torn metadata produced a
    /// cycle); the access degraded instead of panicking.
    pub chain_aborts: u64,
}

impl ReviverCounters {
    /// Folds one event into the counters. This is the *only* place
    /// counters change: the controller calls it on every emission, so
    /// replaying a recorded stream through a fresh instance reconstructs
    /// the controller's counters exactly.
    pub fn apply(&mut self, ev: &ReviverEvent) {
        match ev {
            ReviverEvent::LinkCreated { .. } => self.links += 1,
            ReviverEvent::ChainSwitched { .. } => self.switches += 1,
            ReviverEvent::MigrationSuspended => self.suspensions += 1,
            ReviverEvent::WriteSacrificed { .. } => self.fake_reports += 1,
            ReviverEvent::FailureReported { .. } => self.real_reports += 1,
            ReviverEvent::PageRetired { .. } => self.spare_grants += 1,
            ReviverEvent::MetaSkipped { skipped } => self.meta_skips += skipped,
            ReviverEvent::GarbageRead { .. } => self.garbage_reads += 1,
            ReviverEvent::ChainAborted { .. } => self.chain_aborts += 1,
            ReviverEvent::RecoveryCompleted { .. } => self.reboots += 1,
            ReviverEvent::Relinked { .. }
            | ReviverEvent::LoopFormed { .. }
            | ReviverEvent::SpareAcquired { .. }
            | ReviverEvent::SpareParked { .. }
            | ReviverEvent::MigrationResumed
            | ReviverEvent::PowerCut { .. }
            | ReviverEvent::RecoveryStep { .. }
            | ReviverEvent::InvariantViolation { .. }
            | ReviverEvent::Quiesced => {}
        }
    }

    /// Adds another instance's counts into this one (multi-bank merges).
    pub fn absorb(&mut self, other: &ReviverCounters) {
        self.links += other.links;
        self.switches += other.switches;
        self.suspensions += other.suspensions;
        self.fake_reports += other.fake_reports;
        self.real_reports += other.real_reports;
        self.spare_grants += other.spare_grants;
        self.meta_skips += other.meta_skips;
        self.garbage_reads += other.garbage_reads;
        self.reboots += other.reboots;
        self.reboot_lost_migrations += other.reboot_lost_migrations;
        self.chain_aborts += other.chain_aborts;
    }
}

impl EventSink for ReviverCounters {
    fn on_event(&mut self, _ctl: &RevivedController, ev: &ReviverEvent) {
        self.apply(ev);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A bounded ring buffer of the most recent events, for post-mortem
/// dumps after a power cut or an invariant violation.
///
/// [`ReviverEvent::Quiesced`] markers are not recorded — they fire once
/// per successful request and would flush the interesting transitions
/// out of a bounded window.
#[derive(Debug)]
pub struct TraceRingSink {
    cap: usize,
    seq: u64,
    buf: std::collections::VecDeque<(u64, ReviverEvent)>,
}

impl TraceRingSink {
    /// A ring holding the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceRingSink {
            cap,
            seq: 0,
            buf: std::collections::VecDeque::with_capacity(cap),
        }
    }

    /// Events currently held, oldest first, with their sequence numbers.
    pub fn events(&self) -> impl Iterator<Item = (u64, ReviverEvent)> + '_ {
        self.buf.iter().copied()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed (including those the ring already evicted).
    pub fn seen(&self) -> u64 {
        self.seq
    }

    /// Renders the retained window as JSON lines, oldest first.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for &(seq, ev) in &self.buf {
            out.push_str(&event_json(seq, &ev));
            out.push('\n');
        }
        out
    }
}

impl EventSink for TraceRingSink {
    fn on_event(&mut self, _ctl: &RevivedController, ev: &ReviverEvent) {
        if matches!(ev, ReviverEvent::Quiesced) {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((self.seq, *ev));
        self.seq += 1;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Renders one event as a single JSON object line (hand-rolled: the
/// workspace carries no serialization dependency).
pub fn event_json(seq: u64, ev: &ReviverEvent) -> String {
    let body = match ev {
        ReviverEvent::LinkCreated { da, shadow } => {
            format!(
                "\"event\":\"LinkCreated\",\"da\":{},\"shadow\":{}",
                da.index(),
                shadow.index()
            )
        }
        ReviverEvent::Relinked { da, shadow, freed } => format!(
            "\"event\":\"Relinked\",\"da\":{},\"shadow\":{},\"freed\":{}",
            da.index(),
            shadow.index(),
            freed.index()
        ),
        ReviverEvent::ChainSwitched { head, dead_shadow } => format!(
            "\"event\":\"ChainSwitched\",\"head\":{},\"dead_shadow\":{}",
            head.index(),
            dead_shadow.index()
        ),
        ReviverEvent::LoopFormed { da } => {
            format!("\"event\":\"LoopFormed\",\"da\":{}", da.index())
        }
        ReviverEvent::SpareAcquired { shadow } => {
            format!("\"event\":\"SpareAcquired\",\"shadow\":{}", shadow.index())
        }
        ReviverEvent::SpareParked { dead } => {
            format!("\"event\":\"SpareParked\",\"dead\":{}", dead.index())
        }
        ReviverEvent::PageRetired { page, shadows } => format!(
            "\"event\":\"PageRetired\",\"page\":{},\"shadows\":{shadows}",
            page.index()
        ),
        ReviverEvent::MigrationSuspended => "\"event\":\"MigrationSuspended\"".to_string(),
        ReviverEvent::MigrationResumed => "\"event\":\"MigrationResumed\"".to_string(),
        ReviverEvent::WriteSacrificed { pa } => {
            format!("\"event\":\"WriteSacrificed\",\"pa\":{}", pa.index())
        }
        ReviverEvent::FailureReported { pa } => {
            format!("\"event\":\"FailureReported\",\"pa\":{}", pa.index())
        }
        ReviverEvent::MetaSkipped { skipped } => {
            format!("\"event\":\"MetaSkipped\",\"skipped\":{skipped}")
        }
        ReviverEvent::GarbageRead { da } => {
            format!("\"event\":\"GarbageRead\",\"da\":{}", da.index())
        }
        ReviverEvent::ChainAborted { da } => {
            format!("\"event\":\"ChainAborted\",\"da\":{}", da.index())
        }
        ReviverEvent::PowerCut { at } => format!("\"event\":\"PowerCut\",\"at\":\"{at:?}\""),
        ReviverEvent::RecoveryStep { phase, items } => {
            format!("\"event\":\"RecoveryStep\",\"phase\":\"{phase:?}\",\"items\":{items}")
        }
        ReviverEvent::RecoveryCompleted { healed, unhealed } => {
            format!("\"event\":\"RecoveryCompleted\",\"healed\":{healed},\"unhealed\":{unhealed}")
        }
        ReviverEvent::InvariantViolation { da, kind } => format!(
            "\"event\":\"InvariantViolation\",\"da\":{},\"kind\":\"{kind:?}\"",
            da.index()
        ),
        ReviverEvent::Quiesced => "\"event\":\"Quiesced\"".to_string(),
    };
    format!("{{\"seq\":{seq},{body}}}")
}

/// Appends every event as one JSON line to a file — the heavyweight
/// tracing backend, compiled in only with the `trace-events` feature and
/// switched on per run via the `WLR_TRACE_EVENTS` environment variable
/// (the path to write).
#[cfg(feature = "trace-events")]
#[derive(Debug)]
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
    seq: u64,
}

#[cfg(feature = "trace-events")]
impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
            seq: 0,
        })
    }
}

#[cfg(feature = "trace-events")]
impl EventSink for JsonlSink {
    fn on_event(&mut self, _ctl: &RevivedController, ev: &ReviverEvent) {
        use std::io::Write;
        let _ = writeln!(self.out, "{}", event_json(self.seq, ev));
        self.seq += 1;
    }

    // The JSONL stream is a complete record, quiescent points included.
    fn wants_quiesced(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_matches_fields() {
        let mut c = ReviverCounters::default();
        c.apply(&ReviverEvent::LinkCreated {
            da: Da::new(3),
            shadow: Pa::new(9),
        });
        c.apply(&ReviverEvent::ChainSwitched {
            head: Da::new(3),
            dead_shadow: Da::new(5),
        });
        c.apply(&ReviverEvent::MetaSkipped { skipped: 4 });
        c.apply(&ReviverEvent::Quiesced);
        assert_eq!(c.links, 1);
        assert_eq!(c.switches, 1);
        assert_eq!(c.meta_skips, 4);
        assert_eq!(c.fake_reports, 0);
    }

    #[test]
    fn absorb_sums_fieldwise() {
        let mut a = ReviverCounters {
            links: 2,
            reboots: 1,
            ..Default::default()
        };
        let b = ReviverCounters {
            links: 3,
            chain_aborts: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.links, 5);
        assert_eq!(a.reboots, 1);
        assert_eq!(a.chain_aborts, 7);
    }

    #[test]
    fn ring_keeps_the_newest_window() {
        let mut ring = TraceRingSink::new(2);
        // Feed events without a controller: exercise the buffer directly.
        let evs = [
            ReviverEvent::MigrationSuspended,
            ReviverEvent::MigrationResumed,
            ReviverEvent::Quiesced, // not recorded
            ReviverEvent::LoopFormed { da: Da::new(1) },
        ];
        for ev in &evs {
            // Mirror on_event's logic sans controller context.
            if matches!(ev, ReviverEvent::Quiesced) {
                continue;
            }
            if ring.buf.len() == ring.cap {
                ring.buf.pop_front();
            }
            ring.buf.push_back((ring.seq, *ev));
            ring.seq += 1;
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.seen(), 3);
        let kept: Vec<ReviverEvent> = ring.events().map(|(_, e)| e).collect();
        assert_eq!(
            kept,
            vec![
                ReviverEvent::MigrationResumed,
                ReviverEvent::LoopFormed { da: Da::new(1) }
            ]
        );
        let dump = ring.dump();
        assert!(dump.contains("\"event\":\"LoopFormed\",\"da\":1"));
    }

    #[test]
    fn event_json_is_one_object_per_line() {
        let j = event_json(
            7,
            &ReviverEvent::PageRetired {
                page: PageId::new(2),
                shadows: 60,
            },
        );
        assert_eq!(
            j,
            "{\"seq\":7,\"event\":\"PageRetired\",\"page\":2,\"shadows\":60}"
        );
        let j = event_json(
            0,
            &ReviverEvent::PowerCut {
                at: CrashPoint::MidSwitch,
            },
        );
        assert!(j.contains("\"at\":\"MidSwitch\""));
    }
}
