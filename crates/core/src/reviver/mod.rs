//! The WL-Reviver framework (paper §III).
//!
//! [`RevivedController`] interposes between an unmodified wear-leveling
//! scheme and the PCM device so that the scheme keeps operating after
//! block failures:
//!
//! * **Linking** (§III-B): a failed block stores a pointer to a *virtual
//!   shadow block* — a reserved PA — and the scheme's own PA→DA mapping
//!   resolves that PA to the current *shadow block*. Data migration moves
//!   the shadow; the failed-DA→PA link never needs rewriting.
//! * **Space acquisition** (§III-A): reserved PAs come from OS pages
//!   retired through the standard access-error exception. The framework
//!   holds the unlinked PAs in registers (modeled as a queue) and only
//!   reports a failure to the OS when the pool is empty.
//! * **Delayed acquisition**: if a *migration* needs a spare and none is
//!   available, the migration is suspended (its data parked in the
//!   controller's migration buffer) and the next *software write* is
//!   reported to the OS as a failure — possibly a fake one — to obtain a
//!   page. Reads keep being served (from the buffer if necessary), which
//!   is why the paper sacrifices writes rather than reads.
//! * **One-step chains** (§III-B, Figures 2–3): whenever a two-step chain
//!   forms — a shadow dies while serving a write, or a migration lands a
//!   virtual shadow's mapping on another failed block — the framework
//!   switches the two failed blocks' virtual shadows, leaving one of them
//!   on a PA–DA *loop* (no shadow, provably unreachable).
//! * **Inverse pointers** (Figure 4): the last PAs of each retired page
//!   index blocks storing virtual-shadow→failed-block pointers, needed to
//!   find the chain head during the Figure 3 switch. Their reads/writes
//!   are charged to the device like any other access.
//!
//! Theorems 1–3 of the paper are encoded as runtime invariants
//! ([`RevivedControllerBuilder::check_invariants`] mode and the
//! incremental [`InvariantSink`]) and exercised by this module's tests
//! and the cross-crate integration suite.
//!
//! # Module layout
//!
//! The controller is a thin orchestrator over focused submodules, wired
//! together by the typed event spine of [`events`]:
//!
//! * [`events`] — [`ReviverEvent`], the [`EventSink`] trait and the
//!   stock sinks (counters, ring buffer, JSONL tracer);
//! * `link_table` — the failed-DA→PA link table, inverse pointers and
//!   the pointer-metadata write machinery;
//! * `spare_pool` — reactive spare acquisition, parking, and the
//!   retired-page layout;
//! * `chain` — the write chain: failure discovery, one-step switching,
//!   migrations and the Theorem-3 repair;
//! * `invariants` — Theorems 1–3 as a full-scan assertion and as the
//!   incremental per-event [`InvariantSink`];
//! * `recover` — crash recovery from the durable metadata mirror;
//! * `frontend` — the [`crate::Controller`] trait implementation (the
//!   request-facing surface).

pub mod events;
pub mod obs;

mod chain;
mod frontend;
mod invariants;
mod link_table;
mod recover;
mod spare_pool;
#[cfg(test)]
mod tests;

#[cfg(feature = "trace-events")]
pub use events::JsonlSink;
pub use events::{
    EventSink, NoopSink, RecoveryPhase, ReviverCounters, ReviverEvent, TraceRingSink, ViolationKind,
};
pub use invariants::InvariantSink;
pub use obs::{MetricsSink, RevivalMetrics};

use crate::cache::RemapCache;
use crate::controller::RequestStats;
use crate::error::BuilderError;
use crate::recovery::PersistedMeta;
use link_table::LinkTable;
use spare_pool::SparePool;
use std::collections::VecDeque;
use wlr_base::{Da, Geometry, Pa, PageId};
use wlr_pcm::{PcmDevice, WriteOutcome};
use wlr_wl::WearLeveler;

/// Builder for [`RevivedController`].
#[derive(Debug)]
pub struct RevivedControllerBuilder {
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    cache_bytes: Option<usize>,
    check_invariants: bool,
    pointer_bytes: u64,
    chain_switching: bool,
    proactive_acquisition: bool,
    sinks: Vec<Box<dyn EventSink>>,
}

impl RevivedControllerBuilder {
    /// Attaches a remap cache of `bytes` capacity (Table II uses 32 KB).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Enables Theorem 1–3 invariant assertions after every request
    /// (testing aid; expensive on large devices).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Pointer width used to size the inverse-pointer section (default 4,
    /// the paper's 32-bit pointers: 16 per 64 B block).
    pub fn pointer_bytes(mut self, bytes: u64) -> Self {
        self.pointer_bytes = bytes;
        self
    }

    /// Disables the one-step-chain switching of §III-B (ablation): chains
    /// are allowed to grow and every access walks them to the end. Data
    /// remains correct; access time degrades — which is the design point
    /// the paper's Figures 2–3 machinery exists to avoid.
    pub fn chain_switching(mut self, on: bool) -> Self {
        self.chain_switching = on;
        self
    }

    /// Switches to the §III-A alternative the paper rejects: when a
    /// migration needs spare space, *proactively* request a page from the
    /// OS (a new interrupt type) instead of suspending and sacrificing
    /// the next software write as a (possibly fake) failure report.
    pub fn proactive_acquisition(mut self, on: bool) -> Self {
        self.proactive_acquisition = on;
        self
    }

    /// Stacks an [`EventSink`] onto the controller's event spine; may be
    /// called repeatedly, sinks observe events in attachment order.
    pub fn sink(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Constructs the controller, validating the knob combination.
    ///
    /// # Errors
    ///
    /// Rejects degenerate configurations with a typed [`BuilderError`]:
    /// a zero pointer width, a remap cache smaller than one cache set,
    /// a wear-leveler whose PA space disagrees with the geometry, or a
    /// device lacking the scheme's buffer blocks.
    pub fn try_build(self) -> Result<RevivedController, BuilderError> {
        let geo = *self.device.geometry();
        if self.pointer_bytes == 0 {
            return Err(BuilderError::PointerBytesZero);
        }
        if let Some(bytes) = self.cache_bytes {
            let min = 4 * crate::cache::ENTRY_BYTES;
            if bytes < min {
                return Err(BuilderError::CacheTooSmall { bytes, min });
            }
        }
        if self.wl.len() != geo.num_blocks() {
            return Err(BuilderError::PaSpaceMismatch {
                wl: self.wl.len(),
                geometry: geo.num_blocks(),
            });
        }
        if self.device.total_blocks() < self.wl.total_das() {
            return Err(BuilderError::MissingBufferBlocks {
                device: self.device.total_blocks(),
                required: self.wl.total_das(),
            });
        }
        let ppb = (geo.block_bytes() / self.pointer_bytes).max(1);
        // Dense tables: failed-DA keys are bounded by the device size,
        // PA keys by the visible space — both known here.
        let total = self.device.total_blocks();
        Ok(RevivedController {
            geo,
            device: self.device,
            wl: self.wl,
            links: LinkTable {
                ptr: wlr_base::dense::DenseMap::with_capacity(total),
                inv: wlr_base::dense::DenseMap::with_capacity(geo.num_blocks()),
                cache: self.cache_bytes.map(RemapCache::with_capacity_bytes),
            },
            pool: SparePool {
                spares: VecDeque::new(),
                ptr_slot: wlr_base::dense::DenseMap::with_capacity(geo.num_blocks()),
                section_pas: wlr_base::dense::DenseSet::with_capacity(geo.num_blocks()),
                retired: vec![false; geo.num_pages() as usize],
                undiscovered: wlr_base::dense::DenseSet::with_capacity(total),
            },
            suspended: false,
            mig_buf: VecDeque::new(),
            req: RequestStats::default(),
            counters: ReviverCounters::default(),
            check: self.check_invariants,
            ptrs_per_block: ppb,
            switching: self.chain_switching,
            proactive: self.proactive_acquisition,
            in_write_da: 0,
            pending_meta: Vec::new(),
            persist: PersistedMeta::new(total, geo.num_pages()),
            degraded: false,
            quiesced_subscribed: self.sinks.iter().any(|s| s.wants_quiesced()),
            sinks: self.sinks,
        })
    }

    /// Constructs the controller.
    ///
    /// # Panics
    ///
    /// Panics on the configurations [`Self::try_build`] rejects.
    pub fn build(self) -> RevivedController {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A memory controller running any [`WearLeveler`] under the WL-Reviver
/// framework: failures are hidden behind shadow blocks and the scheme's
/// migrations continue unmodified.
///
/// See the crate-level example for end-to-end use with the simulator; the
/// controller can also be driven directly:
///
/// ```
/// use wlr_base::{Geometry, Pa, PageId};
/// use wlr_pcm::{Ecp, PcmDevice};
/// use wlr_wl::{RandomizerKind, StartGap};
/// use wl_reviver::controller::{Controller, WriteResult};
/// use wl_reviver::reviver::RevivedController;
///
/// let geo = Geometry::builder().num_blocks(128).build()?;
/// let device = PcmDevice::builder(geo)
///     .extra_blocks(1) // Start-Gap's gap line
///     .endurance_mean(500.0)
///     .ecc(Box::new(Ecp::ecp6()))
///     .track_contents(true)
///     .build();
/// let wl = StartGap::builder(128)
///     .gap_interval(10)
///     .randomizer(RandomizerKind::Feistel { seed: 1 })
///     .build();
/// let mut ctl = RevivedController::builder(device, Box::new(wl)).build();
///
/// // Hammer one address until the controller must involve the OS.
/// let mut reported = None;
/// for i in 0..100_000u64 {
///     match ctl.write(Pa::new(7), i) {
///         WriteResult::Ok => {}
///         WriteResult::ReportFailure(pa) => { reported = Some(pa); break; }
///         other => unreachable!("unexpected write result: {other:?}"),
///     }
/// }
/// // Play the OS: retire the page, granting the framework its PAs.
/// let pa = reported.expect("a failure eventually surfaces");
/// ctl.on_page_retired(geo.page_of(pa));
/// assert!(ctl.spare_pas() > 0);
/// # Ok::<(), wlr_base::geometry::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct RevivedController {
    geo: Geometry,
    device: PcmDevice,
    wl: Box<dyn WearLeveler>,
    /// The failed-DA→PA link table with its inverse image and cache.
    links: LinkTable,
    /// Spare acquisition state and the retired-page layout.
    pool: SparePool,
    suspended: bool,
    /// Outstanding migration writes `(post-mapping target, data)`; data
    /// lives in controller registers while a migration is suspended.
    mig_buf: VecDeque<(Da, u64)>,
    req: RequestStats,
    counters: ReviverCounters,
    check: bool,
    ptrs_per_block: u64,
    /// One-step-chain switching enabled (§III-B; off only for ablation).
    switching: bool,
    /// Proactive page acquisition (§III-A alternative; ablation only).
    proactive: bool,
    /// Number of active chain-repair frames (metadata writes defer while
    /// this is nonzero).
    in_write_da: u32,
    /// Deferred inverse-pointer writes awaiting a quiescent flush point.
    pending_meta: Vec<Pa>,
    /// The durable metadata mirror: what the PCM (and the battery-backed
    /// migration journal) actually hold. Updated only when the
    /// corresponding device write commits; the sole source of truth for
    /// [`Self::recover`].
    persist: PersistedMeta,
    /// Set when an access hit torn metadata it could not repair (fuel
    /// exhaustion, unlinked dead read outside check mode).
    degraded: bool,
    /// The stacked event sinks; empty by default (zero-cost emission).
    sinks: Vec<Box<dyn EventSink>>,
    /// Whether any stacked sink subscribed to per-write `Quiesced`
    /// markers ([`EventSink::wants_quiesced`]); cached so the per-write
    /// emission can skip the fan-out without a dynamic dispatch.
    quiesced_subscribed: bool,
}

impl Clone for RevivedController {
    /// Deep copy of the full revived-controller state for simulation
    /// snapshots. Event sinks are deliberately *not* carried over — they
    /// are per-run observers (trace rings, metric exporters), not part of
    /// the simulated machine — so the copy starts with an empty sink
    /// stack and zero-cost emission. The folded [`ReviverCounters`] *are*
    /// copied: they are observable state.
    fn clone(&self) -> Self {
        RevivedController {
            geo: self.geo,
            device: self.device.clone(),
            wl: self.wl.clone_box(),
            links: self.links.clone(),
            pool: self.pool.clone(),
            suspended: self.suspended,
            mig_buf: self.mig_buf.clone(),
            req: self.req,
            counters: self.counters,
            check: self.check,
            ptrs_per_block: self.ptrs_per_block,
            switching: self.switching,
            proactive: self.proactive,
            in_write_da: self.in_write_da,
            pending_meta: self.pending_meta.clone(),
            persist: self.persist.clone(),
            degraded: self.degraded,
            sinks: Vec::new(),
            quiesced_subscribed: false,
        }
    }
}

impl RevivedController {
    /// Starts building a revived controller over `device` driving `wl`.
    pub fn builder(device: PcmDevice, wl: Box<dyn WearLeveler>) -> RevivedControllerBuilder {
        RevivedControllerBuilder {
            device,
            wl,
            cache_bytes: None,
            check_invariants: false,
            pointer_bytes: 4,
            chain_switching: true,
            proactive_acquisition: false,
            sinks: Vec::new(),
        }
    }

    // ----- the event spine --------------------------------------------

    /// Emits one event: folds it into the counters and dispatches it to
    /// every stacked sink. Emission performs no device access and no RNG
    /// draw, so sinks can never perturb a run's observable behavior.
    pub(super) fn emit(&mut self, ev: ReviverEvent) {
        self.counters.apply(&ev);
        if self.sinks.is_empty()
            || (!self.quiesced_subscribed && matches!(ev, ReviverEvent::Quiesced))
        {
            // `Quiesced` fires once per serviced write; unless a sink
            // opted in, skip the fan-out — a metrics or tracing sink
            // must not cost a dynamic dispatch on the per-write path.
            return;
        }
        // Detach the sink stack so each sink can receive `&self` as a
        // read-only context while being called mutably itself.
        let mut sinks = std::mem::take(&mut self.sinks);
        for s in sinks.iter_mut() {
            s.on_event(self, &ev);
        }
        self.sinks = sinks;
    }

    /// Stacks an event sink at runtime (observes subsequent events only).
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.quiesced_subscribed |= sink.wants_quiesced();
        self.sinks.push(sink);
    }

    /// The stacked event sinks, in attachment order.
    pub fn sinks(&self) -> &[Box<dyn EventSink>] {
        &self.sinks
    }

    /// The first stacked sink of concrete type `T`, if any.
    pub fn sink<T: EventSink + 'static>(&self) -> Option<&T> {
        self.sinks
            .iter()
            .find_map(|s| s.as_any().downcast_ref::<T>())
    }

    /// Mutable access to the first stacked sink of concrete type `T`.
    pub fn sink_mut<T: EventSink + 'static>(&mut self) -> Option<&mut T> {
        self.sinks
            .iter_mut()
            .find_map(|s| s.as_any_mut().downcast_mut::<T>())
    }

    // ----- inspection --------------------------------------------------

    /// Event counters.
    pub fn counters(&self) -> ReviverCounters {
        self.counters
    }

    /// Unlinked spare PAs currently available.
    pub fn spare_pas(&self) -> u64 {
        self.pool.spares.len() as u64
    }

    /// Number of failed blocks currently linked to virtual shadows.
    pub fn linked_blocks(&self) -> u64 {
        self.links.ptr.len() as u64
    }

    /// Number of linked blocks currently on PA–DA loops (no shadow).
    pub fn loop_blocks(&self) -> u64 {
        self.links
            .ptr
            .iter()
            .filter(|&(da, &v)| self.wl.map(v).index() == da)
            .count() as u64
    }

    /// Diagnostic view of a failed block's chain: its virtual shadow PA,
    /// the shadow block it currently resolves to, and whether that shadow
    /// is itself dead. `None` if `da` is not linked.
    pub fn chain_info(&self, da: Da) -> Option<(Pa, Da, bool)> {
        let v = *self.links.ptr.get(da.index())?;
        let sda = self.wl.map(v);
        Some((v, sda, self.device.is_dead(sda)))
    }

    /// The virtual shadow PA of failed block `da`, if linked. Pure table
    /// lookup — no device access, safe from event sinks.
    pub fn shadow_of(&self, da: Da) -> Option<Pa> {
        self.links.ptr.get(da.index()).copied()
    }

    /// The failed block whose virtual shadow is `v`, if any (the inverse
    /// pointer of Figure 4). Pure table lookup.
    pub fn linked_head_of(&self, v: Pa) -> Option<Da> {
        self.links.inv.get(v.index()).copied()
    }

    /// Whether `pa` lies in a retired page (reserved space).
    pub fn is_reserved_pa(&self, pa: Pa) -> bool {
        self.is_reserved(pa)
    }

    /// Whether `da` is parked in Theorem 2's undiscovered-failure state.
    pub fn is_undiscovered(&self, da: Da) -> bool {
        self.pool.undiscovered.contains(da.index())
    }

    /// Whether §III-B one-step-chain switching is enabled (true outside
    /// the chain-growth ablation).
    pub fn switching_enabled(&self) -> bool {
        self.switching
    }

    /// Length of every linked block's chain (steps to a healthy block or
    /// a loop), for the chain-switching ablation's statistics.
    pub fn chain_lengths(&self) -> Vec<u32> {
        self.links
            .ptr
            .keys()
            .map(|d| {
                let mut cur = Da::new(d);
                let mut steps = 0u32;
                while let Some(&v) = self.links.ptr.get(cur.index()) {
                    let next = self.wl.map(v);
                    steps += 1;
                    if next == cur || !self.device.is_dead(next) {
                        break;
                    }
                    cur = next;
                    if steps > self.links.ptr.len() as u32 + 1 {
                        break;
                    }
                }
                steps
            })
            .collect()
    }

    /// Cache hit ratio, if a remap cache is configured.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        self.links.cache.as_ref().map(|c| c.hit_ratio())
    }

    /// Read access to the wear-leveler (for inspection and tooling).
    pub fn wear_leveler(&self) -> &dyn WearLeveler {
        self.wl.as_ref()
    }

    /// Force-fails device block `da` without wearing it — the setup knob
    /// for fixed-failure-ratio measurements (Table II). The failure is
    /// "undiscovered": the framework links it on the next touch, exactly
    /// like an organic failure detected at write time.
    pub fn inject_dead(&mut self, da: Da) {
        self.device.inject_dead(da);
        // Idempotent: re-injecting a block that is already linked (or
        // already recorded as undiscovered) changes nothing.
        if !self.links.ptr.contains_key(da.index()) {
            self.pool.undiscovered.insert(da.index());
        }
    }

    // ----- device helpers ---------------------------------------------

    #[inline]
    pub(super) fn dev_read(&mut self, da: Da, acct: bool) {
        self.device.read(da);
        if acct {
            self.req.accesses += 1;
        }
    }

    #[inline]
    pub(super) fn dev_write(&mut self, da: Da, tag: u64, acct: bool) -> WriteOutcome {
        let out = self.device.write_tagged(da, tag);
        if acct {
            self.req.accesses += 1;
        }
        out
    }

    #[inline]
    pub(super) fn is_reserved(&self, pa: Pa) -> bool {
        self.pool.retired[self.geo.page_of(pa).as_usize()]
    }

    /// The lowest-indexed page not yet retired (proactive-acquisition
    /// ablation's nomination), or `None` when everything is retired.
    pub(super) fn pick_page_to_request(&self) -> Option<PageId> {
        self.pool
            .retired
            .iter()
            .position(|&r| !r)
            .map(|i| PageId::new(i as u64))
    }
}
