//! Crash recovery (§III-B's "rebuilt by scanning"): the durable-metadata
//! accessors, the seven-phase [`RevivedController::recover`] scan, and
//! the torn-switch repair.

use super::events::{RecoveryPhase, ReviverEvent};
use super::RevivedController;
use crate::cache::RemapCache;
use crate::recovery::{PersistedMeta, RecoveryReport};
use wlr_base::dense::{DenseMap, DenseSet};
use wlr_base::{Da, Pa, PageId};

impl RevivedController {
    /// The durable metadata mirror (what a firmware scan of the PCM and
    /// the migration journal would find right now).
    pub fn persisted_meta(&self) -> &PersistedMeta {
        &self.persist
    }

    /// Whether `page`'s retirement reached the durable bitmap — the
    /// commit point the simulator's retirement transaction checks before
    /// deciding to roll the OS side back after a crash.
    pub fn retirement_persisted(&self, page: PageId) -> bool {
        self.persist.retired[page.as_usize()]
    }

    /// Whether an access hit torn metadata it could not repair since the
    /// last recovery.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The software PA whose data currently lives in device block `da`,
    /// if any: the block's own PA when that is software-visible, or — for
    /// a shadow block — its chain head's PA. Used by the simulator to
    /// reconcile silent write failures (the block died claiming success,
    /// so this owner's data is gone).
    pub fn logical_owner(&self, da: Da) -> Option<Pa> {
        let p = self.safe_inverse(da)?;
        if !self.is_reserved(p) {
            return Some(p);
        }
        let head = *self.links.inv.get(p.index())?;
        if head == da {
            return None; // loop block: holds no data
        }
        let hp = self.safe_inverse(head)?;
        (!self.is_reserved(hp)).then_some(hp)
    }

    /// Replaces the durable metadata wholesale and recovers from it —
    /// the deserialization end of the persistence round trip
    /// ([`PersistedMeta::from_bytes`]).
    pub fn restore_from(&mut self, meta: PersistedMeta) -> RecoveryReport {
        self.persist = meta;
        self.recover()
    }

    /// Rebuilds all volatile state from the durable metadata after a
    /// power cut, repairing whatever the cut tore:
    ///
    /// 1. re-derive the retired-page layout (pointer sections, inverse
    ///    slots) from the persisted bitmap;
    /// 2. re-read every persisted failed-block pointer, discarding torn
    ///    entries (their grant never committed);
    /// 3. detect half-completed shadow switches (two blocks claiming one
    ///    shadow) and complete them;
    /// 4. rebuild the spare-PA pool by scanning the retired pages;
    /// 5. heal unlinked software-accessible dead blocks with spares
    ///    (Theorem 2's undiscovered-failure state — legal, but healed
    ///    eagerly when the pool allows);
    /// 6. replay the journaled migration lines.
    ///
    /// Suspends gracefully (`report.suspended`) when replay needs a spare
    /// that does not exist, and flags `report.degraded` instead of
    /// panicking when a torn state admits no certain repair.
    ///
    /// Each phase emits a [`ReviverEvent::RecoveryStep`], the links and
    /// switches restored along the way emit their ordinary events, and
    /// the whole pass ends in [`ReviverEvent::RecoveryCompleted`] — so
    /// attached sinks observe recovery through the same spine as normal
    /// operation.
    pub fn recover(&mut self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        self.device.restore_power();
        // Volatile state is gone: the suspension flag, deferred metadata
        // writes, the remap cache, and every in-SRAM table. The migration
        // buffer's lines survive in the journal and are restored below.
        self.suspended = false;
        self.in_write_da = 0;
        self.pending_meta.clear();
        self.degraded = false;
        self.mig_buf.clear();
        if let Some(c) = &mut self.links.cache {
            *c = RemapCache::with_capacity_bytes(c.capacity() * crate::cache::ENTRY_BYTES);
        }
        // 1. Retired-page layout: a pure function of the persisted bitmap.
        self.pool.retired = self.persist.retired.clone();
        self.pool.ptr_slot = DenseMap::with_capacity(self.geo.num_blocks());
        self.pool.section_pas = DenseSet::with_capacity(self.geo.num_blocks());
        let retired_pages: Vec<PageId> = self
            .pool
            .retired
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| PageId::new(i as u64))
            .collect();
        for &page in &retired_pages {
            self.index_grant(page);
            report.blocks_scanned += self.geo.blocks_per_page();
        }
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::Layout,
            items: retired_pages.len() as u64,
        });
        // 2. Links from the persisted failed-block pointers; the inverse
        // table is their mirror image (the paper's §III-B scan).
        self.links.ptr = DenseMap::with_capacity(self.device.total_blocks());
        self.links.inv = DenseMap::with_capacity(self.geo.num_blocks());
        let entries: Vec<(u64, Pa)> = self.persist.ptr.iter().map(|(k, &v)| (k, v)).collect();
        let mut collisions: Vec<(Da, Da, Pa)> = Vec::new();
        for (da_idx, v) in entries {
            report.blocks_scanned += 1;
            let da = Da::new(da_idx);
            if !self.device.is_dead(da) || !self.is_reserved(v) {
                // Torn: a pointer whose grant (or whose block's death)
                // never committed. Discard it.
                self.persist.ptr.remove(da_idx);
                report.torn_links_dropped += 1;
                continue;
            }
            self.links.ptr.insert(da_idx, v);
            report.links_recovered += 1;
            if let Some(prev) = self.links.inv.insert(v.index(), da) {
                collisions.push((prev, da, v));
            }
        }
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::Links,
            items: report.links_recovered,
        });
        // 3. Each collision is a half-completed switch; complete it.
        for (c1, c2, v_dup) in collisions {
            self.repair_torn_switch(c1, c2, v_dup, &mut report);
        }
        report.inv_rebuilt = self.links.inv.len() as u64;
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::TornSwitches,
            items: report.torn_switch_repairs,
        });
        // 4. Spare pool: unclaimed shadow PAs of the retired pages.
        self.pool.spares.clear();
        for &page in &retired_pages {
            for v in self.geo.page_pas(page) {
                let idx = v.index();
                if self.pool.section_pas.contains(idx) || self.links.inv.contains_key(idx) {
                    continue;
                }
                if self.pool.ptr_slot.contains_key(idx) {
                    self.pool.spares.push_back(v);
                    report.spares_recovered += 1;
                }
            }
        }
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::SparePool,
            items: report.spares_recovered,
        });
        // 5. Heal unlinked software-accessible dead blocks.
        let dead: Vec<Da> = self.device.dead_iter().collect();
        for da in dead {
            if self.links.ptr.contains_key(da.index()) {
                continue;
            }
            let Some(p) = self.safe_inverse(da) else {
                continue;
            };
            if self.is_reserved(p) {
                continue;
            }
            match self.take_spare() {
                Ok(v) => {
                    self.link(da, v);
                    report.healed_links += 1;
                }
                Err(_) => {
                    // No spare: the block stays in Theorem 2's
                    // undiscovered-failure state and heals on its next
                    // touch (or a later recovery with spares).
                    self.pool.undiscovered.insert(da.index());
                    report.unhealed_dead += 1;
                }
            }
        }
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::Heal,
            items: report.healed_links,
        });
        // 6. Replay the journal. This must precede the chain heal below:
        // a journaled migration line holds the *newest* data for its
        // target, and replaying it through `write_da` already re-links
        // and switches whatever the cut tore on that chain.
        self.mig_buf = self.persist.journal.clone();
        report.migration_replays = self.mig_buf.len() as u64;
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::JournalReplay,
            items: report.migration_replays,
        });
        self.run_migrations();
        self.flush_meta();
        // 7. Collapse the two-step chains still left: a linked head whose
        // shadow block is dead but *unlinked* (the shadow's own link, or
        // the completing half of a switch, never committed — and no
        // journal line re-fed the chain). Failed blocks retain their last
        // good contents, so rewriting that tag through the ordinary write
        // path re-links the shadow, completes the switch, and lands the
        // data on a healthy block — the same repair `write_da` performs
        // online. With a dry spare pool the shadow parks as an
        // undiscovered failure instead (`take_spare_or_park`) and heals
        // on its next touch.
        let mut collapsed = 0u64;
        if self.switching && !self.suspended {
            let heads: Vec<u64> = self.links.ptr.iter().map(|(k, _)| k).collect();
            for da_idx in heads {
                let da = Da::new(da_idx);
                let Some(&v) = self.links.ptr.get(da_idx) else {
                    continue;
                };
                let sda = self.wl.map(v);
                if sda == da
                    || !self.device.is_dead(sda)
                    || self.links.ptr.contains_key(sda.index())
                {
                    continue;
                }
                // Only software-accessible heads carry data worth saving;
                // a head behind a reserved PA shadows garbage.
                if self.safe_inverse(da).is_none_or(|p| self.is_reserved(p)) {
                    continue;
                }
                let tag = self.device.tag(sda);
                match self.write_da(da, tag, false) {
                    Ok(()) => {
                        report.healed_links += 1;
                        collapsed += 1;
                    }
                    Err(_) => report.unhealed_dead += 1,
                }
            }
            self.flush_meta();
        }
        self.emit(ReviverEvent::RecoveryStep {
            phase: RecoveryPhase::ChainCollapse,
            items: collapsed,
        });
        report.suspended = self.suspended;
        report.degraded |= self.degraded;
        self.emit(ReviverEvent::RecoveryCompleted {
            healed: report.healed_links,
            unhealed: report.unhealed_dead,
        });
        if !self.suspended && self.device.powered() {
            self.emit(ReviverEvent::Quiesced);
        }
        report
    }

    /// Repairs a half-completed virtual-shadow switch found at recovery:
    /// claimants `c1` and `c2` both point at `v_dup` because the second
    /// pointer write of a [`Self::switch`] never committed. Switch pairs
    /// are always (chain head, its dead shadow), and the dead shadow's
    /// own PA is exactly the orphaned shadow the lost write should have
    /// installed — so the stale claimant is the one sitting behind an
    /// unclaimed reserved PA, and completing the switch re-points it
    /// there (the PA–DA loop the finished switch would have produced).
    fn repair_torn_switch(&mut self, c1: Da, c2: Da, v_dup: Pa, report: &mut RecoveryReport) {
        let orphan_of = |me: &Self, c: Da| -> Option<Pa> {
            let p = me.safe_inverse(c)?;
            (me.is_reserved(p)
                && !me.links.inv.contains_key(p.index())
                && me.pool.ptr_slot.contains_key(p.index()))
            .then_some(p)
        };
        let (stale, keeper, v_orph) = match (orphan_of(self, c1), orphan_of(self, c2)) {
            (Some(p), None) => (c1, c2, p),
            (None, Some(p)) => (c2, c1, p),
            (Some(p), Some(_)) => {
                // Both claimants sit behind unclaimed reserved PAs: the
                // torn state admits no certain repair. Pick one and flag
                // the uncertainty.
                report.degraded = true;
                (c1, c2, p)
            }
            (None, None) => {
                // No orphan found: drop one claimant's link. Its block
                // re-enters the undiscovered-failure path (Theorem 2) and
                // heals on the next touch.
                self.links.ptr.remove(c1.index());
                self.persist.ptr.remove(c1.index());
                self.links.inv.insert(v_dup.index(), c2);
                report.torn_links_dropped += 1;
                report.degraded = true;
                return;
            }
        };
        self.links.ptr.insert(stale.index(), v_orph);
        self.links.inv.insert(v_dup.index(), keeper);
        self.links.inv.insert(v_orph.index(), stale);
        self.commit_ptr(stale, v_orph);
        report.torn_switch_repairs += 1;
    }
}
